//! Randomized stress tests over the whole stack: arbitrary interleavings
//! of logins, session hits, logouts, and DB traffic must never violate the
//! §2 isolation invariant, leak memory after session teardown, or wedge
//! the kernel.
//!
//! The overflow and flood stresses are [`asbestos_loadgen`] scenarios:
//! the declarative structs in `loadgen::scenarios` own the phases and
//! assertions, and the engine (`run_scenario`) owns deployment, open-loop
//! pacing, polling, and drain. The same scenarios run at measurement size
//! in `benches/loadgen.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asbestos::kernel::Kernel;
use asbestos::okws::logic::{EchoStore, Profile};
use asbestos::okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};
use asbestos_loadgen::{run_scenario, LaneOverflowChurn, SustainedFlood};

const USERS: usize = 12;

/// Shard count under test: the CI matrix sets `ASBESTOS_TEST_SHARDS`
/// (1 and 4); locally this defaults to the single-shard configuration.
fn test_shards() -> usize {
    std::env::var("ASBESTOS_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// netd lane count under test: the CI matrix sets `ASBESTOS_NETD_LANES`
/// (1 and 4); locally this defaults to the paper's single netd.
fn test_lanes() -> usize {
    std::env::var("ASBESTOS_NETD_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn deploy_laned(seed: u64, shards: usize, lanes: usize) -> (Kernel, Okws, OkwsClient) {
    let mut config = OkwsConfig::new(80).sharded(shards).lanes(lanes);
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    config
        .services
        .push(ServiceSpec::new("profile", || Box::new(Profile)));
    config.worker_tables.push(Profile::TABLE_DDL.to_string());
    for i in 0..USERS {
        config.users.push((format!("u{i}"), format!("p{i}")));
    }
    let (kernel, okws) = Okws::deploy(seed, config);
    let client = OkwsClient::new(&okws);
    (kernel, okws, client)
}

fn deploy_sharded(seed: u64, shards: usize) -> (Kernel, Okws, OkwsClient) {
    deploy_laned(seed, shards, test_lanes())
}

fn deploy(seed: u64) -> (Kernel, Okws, OkwsClient) {
    deploy_laned(seed, test_shards(), test_lanes())
}

#[test]
fn random_workload_preserves_isolation() {
    let mut rng = StdRng::seed_from_u64(0xA5BE5705);
    let (mut kernel, _okws, mut client) = deploy(600);

    // Ground truth of what each user last stored, per storage kind.
    let mut session_truth: Vec<Option<String>> = vec![None; USERS];
    let mut db_truth: Vec<Option<String>> = vec![None; USERS];

    for step in 0..400 {
        let user = rng.gen_range(0..USERS);
        let uname = format!("u{user}");
        let pw = format!("p{user}");
        match rng.gen_range(0..6) {
            // Store new session data.
            0 | 1 => {
                let data = format!("sess-{user}-{step}");
                let (status, body) = client
                    .request_sync(&mut kernel, "store", &uname, &pw, &[("data", &data)])
                    .expect("store responds");
                assert_eq!(status, 200);
                // The reply is the *previous* state and must be ours.
                if let Some(prev) = &session_truth[user] {
                    assert!(
                        body.starts_with(prev.as_bytes()),
                        "step {step}: user {user} saw {:?}, expected {prev:?}",
                        String::from_utf8_lossy(&body[..24.min(body.len())])
                    );
                } else {
                    assert!(body.is_empty());
                }
                session_truth[user] = Some(data);
            }
            // Read session data back.
            2 => {
                let (_, body) = client
                    .request_sync(&mut kernel, "store", &uname, &pw, &[])
                    .expect("store responds");
                match &session_truth[user] {
                    Some(prev) => assert!(body.starts_with(prev.as_bytes())),
                    None => assert!(body.is_empty()),
                }
            }
            // Write a DB row.
            3 => {
                let bio = format!("db-{user}-{step}");
                let (_, body) = client
                    .request_sync(&mut kernel, "profile", &uname, &pw, &[("set", &bio)])
                    .expect("profile responds");
                assert_eq!(body, b"stored");
                db_truth[user] = Some(bio);
            }
            // Read DB rows: only own rows, and the latest must be present.
            4 => {
                let (_, body) = client
                    .request_sync(&mut kernel, "profile", &uname, &pw, &[("get", &uname)])
                    .expect("profile responds");
                let text = String::from_utf8_lossy(&body);
                for (other, truth) in db_truth.iter().enumerate() {
                    if other != user {
                        if let Some(t) = truth {
                            assert!(
                                !text.contains(t.as_str()),
                                "step {step}: user {user} saw user {other}'s row"
                            );
                        }
                    }
                }
                if let Some(t) = &db_truth[user] {
                    assert!(text.contains(t.as_str()), "step {step}: missing own row");
                }
            }
            // Logout: session state must vanish.
            _ => {
                let (_, body) = client
                    .request_sync(&mut kernel, "store", &uname, &pw, &[("logout", "1")])
                    .expect("logout responds");
                assert_eq!(body, b"goodbye");
                session_truth[user] = None;
            }
        }
    }
    // The kernel never wedged and nothing is left queued.
    assert_eq!(kernel.queue_len(), 0);
}

#[test]
fn logout_churn_does_not_leak_memory() {
    let (mut kernel, _okws, mut client) = deploy(601);
    // Build every session once, then log everyone out: baseline.
    for i in 0..USERS {
        client
            .request_sync(
                &mut kernel,
                "store",
                &format!("u{i}"),
                &format!("p{i}"),
                &[("data", "x")],
            )
            .unwrap();
    }
    for i in 0..USERS {
        client
            .request_sync(
                &mut kernel,
                "store",
                &format!("u{i}"),
                &format!("p{i}"),
                &[("logout", "1")],
            )
            .unwrap();
    }
    let baseline = kernel.kmem_report().user_frame_bytes;

    // Churn sessions repeatedly; user frames must return to baseline each
    // time everything is logged out (event-process pages are freed).
    for round in 0..5 {
        for i in 0..USERS {
            client
                .request_sync(
                    &mut kernel,
                    "store",
                    &format!("u{i}"),
                    &format!("p{i}"),
                    &[("data", "y")],
                )
                .unwrap();
        }
        for i in 0..USERS {
            client
                .request_sync(
                    &mut kernel,
                    "store",
                    &format!("u{i}"),
                    &format!("p{i}"),
                    &[("logout", "1")],
                )
                .unwrap();
        }
        let now = kernel.kernel_user_frames();
        assert_eq!(now, baseline, "user frames leaked by round {round}");
    }
}

trait FrameProbe {
    fn kernel_user_frames(&self) -> usize;
}

impl FrameProbe for Kernel {
    fn kernel_user_frames(&self) -> usize {
        self.kmem_report().user_frame_bytes
    }
}

/// The full OKWS stack — netd, demux, idd, dbproxy, workers — spread
/// over four parallel kernel shards must enforce exactly the same §2
/// isolation the single-shard deployment does: the router carries every
/// netd ↔ demux ↔ worker ↔ db hop between shards, and label evaluation
/// still happens on each destination's own shard.
#[test]
fn sharded_okws_preserves_isolation() {
    let (mut kernel, _okws, mut client) = deploy_sharded(602, 4);
    assert_eq!(kernel.num_shards(), 4);

    // Alice and Bob store private data; each sees only their own.
    let (status, _) = client
        .request_sync(
            &mut kernel,
            "store",
            "u0",
            "p0",
            &[("data", "alice-secret")],
        )
        .expect("store responds");
    assert_eq!(status, 200);
    client
        .request_sync(&mut kernel, "profile", "u0", "p0", &[("set", "alice-bio")])
        .expect("profile responds");

    // Bob reads his own profile listing: alice's row must be invisible.
    let (_, body) = client
        .request_sync(&mut kernel, "profile", "u1", "p1", &[("get", "u0")])
        .expect("profile responds");
    assert!(
        !String::from_utf8_lossy(&body).contains("alice-bio"),
        "cross-user DB row leaked through the sharded kernel"
    );

    // Alice still sees her session and row.
    let (_, body) = client
        .request_sync(&mut kernel, "store", "u0", "p0", &[])
        .expect("store responds");
    assert!(body.starts_with(b"alice-secret"));
    let (_, body) = client
        .request_sync(&mut kernel, "profile", "u0", "p0", &[("get", "u0")])
        .expect("profile responds");
    assert!(String::from_utf8_lossy(&body).contains("alice-bio"));

    assert_eq!(kernel.queue_len(), 0);
    assert!(
        kernel.stats().dropped_label_check > 0,
        "the cross-user read must have been stopped by a label drop"
    );
}

/// 4 shards × 4 netd lanes under hostile conditions, as a declarative
/// scenario: warm burst, mid-stream client disconnects, a connection
/// burst into a 2-deep port bound (lane → demux notifications overflow
/// and take the `PortQueueFull` drop path), and recovery once the bound
/// is lifted. The scenario's own `check` asserts no deadlock, accounted
/// drops, lane spread, and ordinary service afterwards.
#[test]
fn lane_queue_overflow_and_midstream_closes_do_not_wedge() {
    run_scenario(&mut LaneOverflowChurn::new(USERS, 12, 4, 4), 603);
}

/// Sustained flood with overload control armed: 4 shards × 4 netd lanes,
/// one attacker pouring connections at 10× the victim's rate into a
/// deployment whose edge has been made deliberately touchy (a tiny shed
/// threshold). The scenario's `check` asserts the victim's verdicts are
/// unchanged by the flood (every request 200), the edge visibly deferred
/// or shed, and the deployment returned to a steady state.
#[test]
fn sustained_flood_sheds_gracefully_and_recovers() {
    run_scenario(
        &mut SustainedFlood {
            requests: 110,
            flood_factor: 10,
            shards: 4,
            lanes: 4,
        },
        604,
    );
}
