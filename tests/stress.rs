//! Randomized stress tests over the whole stack: arbitrary interleavings
//! of logins, session hits, logouts, and DB traffic must never violate the
//! §2 isolation invariant, leak memory after session teardown, or wedge
//! the kernel.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asbestos::kernel::Kernel;
use asbestos::okws::logic::{EchoStore, Profile};
use asbestos::okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};

const USERS: usize = 12;

/// Shard count under test: the CI matrix sets `ASBESTOS_TEST_SHARDS`
/// (1 and 4); locally this defaults to the single-shard configuration.
fn test_shards() -> usize {
    std::env::var("ASBESTOS_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// netd lane count under test: the CI matrix sets `ASBESTOS_NETD_LANES`
/// (1 and 4); locally this defaults to the paper's single netd.
fn test_lanes() -> usize {
    std::env::var("ASBESTOS_NETD_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn deploy_laned(seed: u64, shards: usize, lanes: usize) -> (Kernel, Okws, OkwsClient) {
    let mut config = OkwsConfig::new(80).sharded(shards).lanes(lanes);
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    config
        .services
        .push(ServiceSpec::new("profile", || Box::new(Profile)));
    config.worker_tables.push(Profile::TABLE_DDL.to_string());
    for i in 0..USERS {
        config.users.push((format!("u{i}"), format!("p{i}")));
    }
    let (kernel, okws) = Okws::deploy(seed, config);
    let client = OkwsClient::new(&okws);
    (kernel, okws, client)
}

fn deploy_sharded(seed: u64, shards: usize) -> (Kernel, Okws, OkwsClient) {
    deploy_laned(seed, shards, test_lanes())
}

fn deploy(seed: u64) -> (Kernel, Okws, OkwsClient) {
    deploy_laned(seed, test_shards(), test_lanes())
}

#[test]
fn random_workload_preserves_isolation() {
    let mut rng = StdRng::seed_from_u64(0xA5BE5705);
    let (mut kernel, _okws, mut client) = deploy(600);

    // Ground truth of what each user last stored, per storage kind.
    let mut session_truth: Vec<Option<String>> = vec![None; USERS];
    let mut db_truth: Vec<Option<String>> = vec![None; USERS];

    for step in 0..400 {
        let user = rng.gen_range(0..USERS);
        let uname = format!("u{user}");
        let pw = format!("p{user}");
        match rng.gen_range(0..6) {
            // Store new session data.
            0 | 1 => {
                let data = format!("sess-{user}-{step}");
                let (status, body) = client
                    .request_sync(&mut kernel, "store", &uname, &pw, &[("data", &data)])
                    .expect("store responds");
                assert_eq!(status, 200);
                // The reply is the *previous* state and must be ours.
                if let Some(prev) = &session_truth[user] {
                    assert!(
                        body.starts_with(prev.as_bytes()),
                        "step {step}: user {user} saw {:?}, expected {prev:?}",
                        String::from_utf8_lossy(&body[..24.min(body.len())])
                    );
                } else {
                    assert!(body.is_empty());
                }
                session_truth[user] = Some(data);
            }
            // Read session data back.
            2 => {
                let (_, body) = client
                    .request_sync(&mut kernel, "store", &uname, &pw, &[])
                    .expect("store responds");
                match &session_truth[user] {
                    Some(prev) => assert!(body.starts_with(prev.as_bytes())),
                    None => assert!(body.is_empty()),
                }
            }
            // Write a DB row.
            3 => {
                let bio = format!("db-{user}-{step}");
                let (_, body) = client
                    .request_sync(&mut kernel, "profile", &uname, &pw, &[("set", &bio)])
                    .expect("profile responds");
                assert_eq!(body, b"stored");
                db_truth[user] = Some(bio);
            }
            // Read DB rows: only own rows, and the latest must be present.
            4 => {
                let (_, body) = client
                    .request_sync(&mut kernel, "profile", &uname, &pw, &[("get", &uname)])
                    .expect("profile responds");
                let text = String::from_utf8_lossy(&body);
                for (other, truth) in db_truth.iter().enumerate() {
                    if other != user {
                        if let Some(t) = truth {
                            assert!(
                                !text.contains(t.as_str()),
                                "step {step}: user {user} saw user {other}'s row"
                            );
                        }
                    }
                }
                if let Some(t) = &db_truth[user] {
                    assert!(text.contains(t.as_str()), "step {step}: missing own row");
                }
            }
            // Logout: session state must vanish.
            _ => {
                let (_, body) = client
                    .request_sync(&mut kernel, "store", &uname, &pw, &[("logout", "1")])
                    .expect("logout responds");
                assert_eq!(body, b"goodbye");
                session_truth[user] = None;
            }
        }
    }
    // The kernel never wedged and nothing is left queued.
    assert_eq!(kernel.queue_len(), 0);
}

#[test]
fn logout_churn_does_not_leak_memory() {
    let (mut kernel, _okws, mut client) = deploy(601);
    // Build every session once, then log everyone out: baseline.
    for i in 0..USERS {
        client
            .request_sync(
                &mut kernel,
                "store",
                &format!("u{i}"),
                &format!("p{i}"),
                &[("data", "x")],
            )
            .unwrap();
    }
    for i in 0..USERS {
        client
            .request_sync(
                &mut kernel,
                "store",
                &format!("u{i}"),
                &format!("p{i}"),
                &[("logout", "1")],
            )
            .unwrap();
    }
    let baseline = kernel.kmem_report().user_frame_bytes;

    // Churn sessions repeatedly; user frames must return to baseline each
    // time everything is logged out (event-process pages are freed).
    for round in 0..5 {
        for i in 0..USERS {
            client
                .request_sync(
                    &mut kernel,
                    "store",
                    &format!("u{i}"),
                    &format!("p{i}"),
                    &[("data", "y")],
                )
                .unwrap();
        }
        for i in 0..USERS {
            client
                .request_sync(
                    &mut kernel,
                    "store",
                    &format!("u{i}"),
                    &format!("p{i}"),
                    &[("logout", "1")],
                )
                .unwrap();
        }
        let now = kernel.kernel_user_frames();
        assert_eq!(now, baseline, "user frames leaked by round {round}");
    }
}

trait FrameProbe {
    fn kernel_user_frames(&self) -> usize;
}

impl FrameProbe for Kernel {
    fn kernel_user_frames(&self) -> usize {
        self.kmem_report().user_frame_bytes
    }
}

/// The full OKWS stack — netd, demux, idd, dbproxy, workers — spread
/// over four parallel kernel shards must enforce exactly the same §2
/// isolation the single-shard deployment does: the router carries every
/// netd ↔ demux ↔ worker ↔ db hop between shards, and label evaluation
/// still happens on each destination's own shard.
#[test]
fn sharded_okws_preserves_isolation() {
    let (mut kernel, _okws, mut client) = deploy_sharded(602, 4);
    assert_eq!(kernel.num_shards(), 4);

    // Alice and Bob store private data; each sees only their own.
    let (status, _) = client
        .request_sync(
            &mut kernel,
            "store",
            "u0",
            "p0",
            &[("data", "alice-secret")],
        )
        .expect("store responds");
    assert_eq!(status, 200);
    client
        .request_sync(&mut kernel, "profile", "u0", "p0", &[("set", "alice-bio")])
        .expect("profile responds");

    // Bob reads his own profile listing: alice's row must be invisible.
    let (_, body) = client
        .request_sync(&mut kernel, "profile", "u1", "p1", &[("get", "u0")])
        .expect("profile responds");
    assert!(
        !String::from_utf8_lossy(&body).contains("alice-bio"),
        "cross-user DB row leaked through the sharded kernel"
    );

    // Alice still sees her session and row.
    let (_, body) = client
        .request_sync(&mut kernel, "store", "u0", "p0", &[])
        .expect("store responds");
    assert!(body.starts_with(b"alice-secret"));
    let (_, body) = client
        .request_sync(&mut kernel, "profile", "u0", "p0", &[("get", "u0")])
        .expect("profile responds");
    assert!(String::from_utf8_lossy(&body).contains("alice-bio"));

    assert_eq!(kernel.queue_len(), 0);
    assert!(
        kernel.stats().dropped_label_check > 0,
        "the cross-user read must have been stopped by a label drop"
    );
}

/// 4 shards × 4 netd lanes under hostile conditions: a burst of
/// connections with a tiny per-port queue bound (so lane → demux
/// notifications overflow and take the `PortQueueFull` drop path) and
/// mid-stream client closes (so workers write into dead connections).
/// The deployment must never deadlock the worker pool, must account the
/// overflow drops, and must serve ordinary traffic again once the bound
/// is lifted.
#[test]
fn lane_queue_overflow_and_midstream_closes_do_not_wedge() {
    let (mut kernel, okws, mut client) = deploy_laned(603, 4, 4);
    assert_eq!(kernel.num_shards(), 4);

    // Phase 1: a clean burst proves the 4×4 deployment serves traffic and
    // the RSS demux actually spreads it.
    for i in 0..USERS {
        let (status, _) = client
            .request_sync(
                &mut kernel,
                "store",
                &format!("u{i}"),
                &format!("p{i}"),
                &[("data", "warm")],
            )
            .expect("warm request responds");
        assert_eq!(status, 200);
    }
    let spread = client.driver.lane_accepts().to_vec();
    assert_eq!(spread.len(), 4);
    assert!(
        spread.iter().filter(|&&n| n > 0).count() >= 2,
        "RSS demux used one lane for every connection: {spread:?}"
    );

    // Phase 2: mid-stream closes. Issue requests but kill the client side
    // of half of them before running the kernel: the demux and workers
    // process connections whose substrate is already dead, and their
    // writes are discarded by the closed connection, not wedged.
    let mut doomed = Vec::new();
    for i in 0..USERS {
        let idx = client.request(
            &mut kernel,
            "store",
            &format!("u{i}"),
            &format!("p{i}"),
            &[("data", "doomed")],
        );
        if i % 2 == 0 {
            let conn = client.driver.request(idx).conn;
            okws.netd.net.lock().unwrap().close(conn);
            doomed.push(conn);
        }
    }
    kernel.run();
    client.driver.poll(&kernel);
    for conn in doomed {
        okws.netd.net.lock().unwrap().reap(conn);
    }
    assert_eq!(kernel.queue_len(), 0, "mid-stream closes left work queued");

    // Phase 3: clamp the per-port bound so the connection burst overflows
    // the demux's notify port (every lane funnels NewConn announcements
    // into one port). The overflow must drop, not deadlock.
    let drops_before = kernel.stats().dropped_port_queue_full;
    kernel.set_port_queue_limit(2);
    for i in 0..USERS {
        client.request(
            &mut kernel,
            "store",
            &format!("u{i}"),
            &format!("p{i}"),
            &[("data", "burst")],
        );
    }
    kernel.run();
    client.driver.poll(&kernel);
    let drops = kernel.stats().dropped_port_queue_full - drops_before;
    assert!(
        drops > 0,
        "a {USERS}-connection burst against a 2-deep port bound must overflow"
    );
    assert_eq!(kernel.queue_len(), 0, "overflow left the kernel wedged");

    // Phase 4: lift the bound; the deployment serves again on every lane.
    kernel.set_port_queue_limit(asbestos::kernel::DEFAULT_PORT_QUEUE_LIMIT);
    for i in 0..USERS {
        let (status, body) = client
            .request_sync(
                &mut kernel,
                "store",
                &format!("u{i}"),
                &format!("p{i}"),
                &[("data", "recovered")],
            )
            .expect("post-overflow request responds");
        assert_eq!(status, 200, "user {i} did not recover after the overflow");
        let _ = body;
    }
    assert_eq!(kernel.queue_len(), 0);
}

/// One synchronous victim request that survives edge shedding: issue,
/// run, and re-open the connection whenever netd refused it, until the
/// response lands. Returns the HTTP status.
fn request_surviving_sheds(
    kernel: &mut Kernel,
    client: &mut OkwsClient,
    user: &str,
    pw: &str,
    extra: &[(&str, &str)],
) -> u16 {
    let idx = client.request(kernel, "store", user, pw, extra);
    for _ in 0..64 {
        // Bounded: a backpressure livelock should fail fast, not hang CI.
        kernel.run_limited(1_000_000);
        client.driver.poll(kernel);
        if let Some((status, _)) = client.parse_response(idx) {
            return status;
        }
        assert!(
            client.driver.retry_shed(kernel) > 0,
            "request neither completed nor was shed — wedged"
        );
    }
    panic!("request did not complete within 64 shed-retry rounds");
}

/// Sustained flood with overload control armed: 4 shards × 4 netd lanes,
/// one attacker pouring connections at 10× the victim's rate into a
/// deployment whose edge has been made deliberately touchy (a tiny shed
/// threshold). The victim's observable verdicts — every request answered
/// 200, same as an unloaded run — must be unchanged by the flood; the
/// edge must visibly defer or shed (that is the graceful degradation);
/// and once the flood ends the deployment must return to a steady state
/// with nothing queued and shedding over.
#[test]
fn sustained_flood_sheds_gracefully_and_recovers() {
    let victim_rounds = 6;
    let flood_factor = 10; // attacker connections per victim request

    let mut config = OkwsConfig::new(80).sharded(4).lanes(4).with_backpressure();
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    for i in 0..USERS {
        config.users.push((format!("u{i}"), format!("p{i}")));
    }
    let (mut kernel, okws, mut client) = {
        let (kernel, okws) = Okws::deploy(604, config);
        let client = OkwsClient::new(&okws);
        (kernel, okws, client)
    };

    // Unloaded baseline: the victim's verdict trace without any flood.
    let baseline: Vec<u16> = (0..victim_rounds)
        .map(|_| request_surviving_sheds(&mut kernel, &mut client, "u0", "p0", &[("data", "v")]))
        .collect();
    assert_eq!(baseline, vec![200; victim_rounds]);

    // Make the edge touchy, then flood: before each victim request the
    // attacker opens 10× as many connections as the victim will.
    kernel.set_shed_threshold(2);
    for round in 0..victim_rounds {
        for _ in 0..flood_factor {
            client.request(&mut kernel, "store", "u1", "p1", &[("data", "flood")]);
        }
        let status =
            request_surviving_sheds(&mut kernel, &mut client, "u0", "p0", &[("data", "v")]);
        assert_eq!(
            status, 200,
            "flood changed the victim's verdict (round {round})"
        );
    }

    // The degradation must have been real and graceful: the edge deferred
    // or shed accepts instead of letting queues grow without bound.
    let (mut deferred, mut shed) = (0u64, 0u64);
    for lane in &okws.netd.lanes {
        let netd = kernel
            .service_as::<asbestos::net::Netd>(lane.pid)
            .expect("netd lane is downcastable");
        deferred += netd.accepts_deferred();
        shed += netd.accepts_shed();
    }
    assert!(
        deferred + shed > 0,
        "a {flood_factor}x flood against a shed threshold of 2 never touched the edge"
    );

    // Recovery: flood over, threshold relaxed; every outstanding attacker
    // request drains (retrying any that were shed) and the kernel reaches
    // a steady state with nothing parked.
    kernel.set_shed_threshold(usize::MAX);
    for _ in 0..64 {
        kernel.run();
        client.driver.poll(&kernel);
        if client.driver.completed() == client.driver.requests().len() {
            break;
        }
        client.driver.retry_shed(&mut kernel);
    }
    assert_eq!(
        client.driver.completed(),
        client.driver.requests().len(),
        "flood traffic never drained after recovery"
    );
    assert_eq!(kernel.queue_len(), 0, "recovery left work parked");

    // Steady state: fresh traffic is served first try again.
    let status = request_surviving_sheds(&mut kernel, &mut client, "u0", "p0", &[("data", "post")]);
    assert_eq!(status, 200);
}
