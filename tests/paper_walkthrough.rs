//! Workspace-level integration tests: cross-crate walkthroughs of the
//! paper's flagship scenarios, driven through the `asbestos` facade.

use asbestos::db::SqlValue;
use asbestos::kernel::util::service_with_start;
use asbestos::kernel::{Category, Kernel, Label, Level, Value};
use asbestos::okws::logic::{EchoStore, ParamLength, Profile};
use asbestos::okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};

/// The complete Figure 5 walkthrough with every §7 component live, checked
/// step by step through god-mode observation.
#[test]
fn figure5_message_flow() {
    let mut kernel = Kernel::new(501);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    config.users.push(("u".into(), "pw".into()));
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    // Step 1–9: one full request.
    let (status, _) = client
        .request_sync(&mut kernel, "store", "u", "pw", &[("data", "hello")])
        .expect("request completes");
    assert_eq!(status, 200);

    // The worker's event process exists and carries u's taint at 3 while
    // holding uG at ⋆ (granted by ok-demux in step 6).
    let worker = kernel.find_process("worker-store").unwrap();
    let eps = kernel.live_eps(worker);
    assert_eq!(eps.len(), 1);
    let ep = kernel.event_process(eps[0]);
    let tainted: Vec<Level> = ep.send_label.iter().map(|(_, l)| l).collect();
    assert!(tainted.contains(&Level::L3), "uT 3 contamination present");
    assert!(tainted.contains(&Level::Star), "uW/uG ⋆ grants present");

    // The base worker process is clean: the *event process* was
    // contaminated, not the process (§6.1).
    let base = kernel.process(worker);
    assert!(
        base.send_label.iter().all(|(_, l)| l == Level::Star),
        "base labels hold only its own port stars"
    );

    // netd holds the user's taint at ⋆ and accepts it at 3 (step 5).
    let netd = kernel.find_process("netd").unwrap();
    assert_eq!(kernel.process(netd).recv_label.entry_count(), 1);

    // idd cached the uT/uG pair (step 4) — visible as two ⋆ entries beyond
    // its two service ports.
    let idd = kernel.find_process("idd").unwrap();
    assert!(kernel.process(idd).send_label.entry_count() >= 4);
}

/// §2's application goal, stated as a test: "a process acting for one user
/// cannot gain inappropriate access to other users' data", even when every
/// worker is malicious, across both storage paths (sessions and database).
#[test]
fn application_goal_user_isolation() {
    let mut kernel = Kernel::new(502);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    config
        .services
        .push(ServiceSpec::new("profile", || Box::new(Profile)));
    config.worker_tables.push(Profile::TABLE_DDL.to_string());
    for (u, p) in [("alice", "a"), ("bob", "b"), ("carol", "c")] {
        config.users.push((u.into(), p.into()));
    }
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    // Everyone stores a secret in both places.
    for (u, p) in [("alice", "a"), ("bob", "b"), ("carol", "c")] {
        client
            .request_sync(
                &mut kernel,
                "store",
                u,
                p,
                &[("data", &format!("{u}-session-secret"))],
            )
            .unwrap();
        client
            .request_sync(
                &mut kernel,
                "profile",
                u,
                p,
                &[("set", &format!("{u}-db-secret"))],
            )
            .unwrap();
    }

    // Everyone sees exactly their own data.
    for (u, p) in [("alice", "a"), ("bob", "b"), ("carol", "c")] {
        let (_, body) = client
            .request_sync(&mut kernel, "store", u, p, &[])
            .unwrap();
        assert!(body.starts_with(format!("{u}-session-secret").as_bytes()));
        for (other, _) in [("alice", "a"), ("bob", "b"), ("carol", "c")] {
            let (_, body) = client
                .request_sync(&mut kernel, "profile", u, p, &[("get", other)])
                .unwrap();
            if other == u {
                assert!(body.starts_with(format!("{u}:{u}-db-secret").as_bytes()));
            } else {
                assert_eq!(body, b"", "{u} must not see {other}'s rows");
            }
        }
    }
}

/// The full stack keeps running correctly after a service worker is
/// forcibly killed (failure injection): other services are unaffected and
/// the dead service degrades to silent drops, never misdelivery.
#[test]
fn worker_crash_containment() {
    let mut kernel = Kernel::new(503);
    let mut config = OkwsConfig::new(80);
    config
        .services
        .push(ServiceSpec::new("bench", || Box::new(ParamLength)));
    config
        .services
        .push(ServiceSpec::new("store", || Box::new(EchoStore::new())));
    config.users.push(("u".into(), "pw".into()));
    let okws = Okws::start(&mut kernel, config);
    let mut client = OkwsClient::new(&okws);

    client
        .request_sync(&mut kernel, "store", "u", "pw", &[("data", "x")])
        .unwrap();
    let store_pid = kernel.find_process("worker-store").unwrap();
    kernel.kill_process(store_pid);

    // The other service still works.
    let (status, body) = client
        .request_sync(&mut kernel, "bench", "u", "pw", &[("len", "5")])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, b"xxxxx");

    // Requests to the dead service never complete (dropped, not crossed).
    let idx = client.request(&mut kernel, "store", "u", "pw", &[]);
    kernel.run();
    client.driver.poll(&kernel);
    assert!(client.parse_response(idx).is_none());
}

/// End-to-end determinism: identical seeds produce identical virtual time,
/// stats, and memory — the property every figure in §9 relies on.
#[test]
fn simulation_is_deterministic() {
    let run = |seed: u64| {
        let mut kernel = Kernel::new(seed);
        let mut config = OkwsConfig::new(80);
        config
            .services
            .push(ServiceSpec::new("bench", || Box::new(ParamLength)));
        for i in 0..5 {
            config.users.push((format!("u{i}"), format!("p{i}")));
        }
        let okws = Okws::start(&mut kernel, config);
        let mut client = OkwsClient::new(&okws);
        for i in 0..5 {
            client
                .request_sync(
                    &mut kernel,
                    "bench",
                    &format!("u{i}"),
                    &format!("p{i}"),
                    &[],
                )
                .unwrap();
        }
        (
            kernel.now(),
            kernel.stats(),
            kernel.kmem_report().total_bytes(),
        )
    };
    assert_eq!(run(99), run(99));
    let (cycles_a, _, _) = run(99);
    let (cycles_b, _, _) = run(100);
    // Different seeds change handle values but not the workload shape;
    // virtual time must still match (costs don't depend on handle values).
    assert_eq!(cycles_a, cycles_b);
}

/// The database substrate honors label policy end to end when driven
/// directly (without OKWS): a second view of §7.5 from the facade.
#[test]
fn database_direct_usage() {
    let mut db = asbestos::db::Database::new();
    db.run("CREATE TABLE kv (k, v)").unwrap();
    db.run_with_params(
        "INSERT INTO kv VALUES (?, ?)",
        &[SqlValue::Text("lang".into()), SqlValue::Text("rust".into())],
    )
    .unwrap();
    let result = db
        .run_with_params(
            "SELECT v FROM kv WHERE k = ?",
            &[SqlValue::Text("lang".into())],
        )
        .unwrap();
    assert_eq!(result.rows, vec![vec![SqlValue::Text("rust".into())]]);
}

/// Labels compose across crates: a tainted OKWS event process cannot write
/// into the labeled file server either (transitive policy enforcement, §2:
/// "they should be unable to launder data through non-compromised services
/// and applications").
#[test]
fn no_laundering_through_file_server() {
    let mut kernel = Kernel::new(504);
    let fs = asbestos::fs::spawn_fs(&mut kernel);

    // A "compromised worker" stand-in: tainted with a user compartment it
    // does not control, holding a reference to the file server.
    kernel.spawn(
        "tainted-worker",
        Category::Okws,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("tw.port", Value::Handle(p));
                let t = sys.new_handle();
                // Drop privilege, keep taint: a worker that has *seen* user
                // data but does not control the compartment.
                sys.self_contaminate(&Label::from_pairs(Level::Star, &[(t, Level::L3)]));
            },
            |sys, _msg| {
                let fs_port = sys.env("fs.port").unwrap().as_handle().unwrap();
                sys.send(
                    fs_port,
                    asbestos::fs::FsMsg::Write {
                        name: "public-board".into(),
                        data: b"laundered secret".to_vec().into(),
                        reply: None,
                    }
                    .to_value(),
                )
                .unwrap();
            },
        ),
    );
    kernel.run();
    kernel.inject(
        fs.port,
        asbestos::fs::FsMsg::Create {
            name: "public-board".into(),
            user: String::new(),
        }
        .to_value(),
    );
    kernel.run();

    let tw = kernel.global_env("tw.port").unwrap().as_handle().unwrap();
    let drops = kernel.stats().dropped_label_check;
    kernel.inject(tw, Value::Str("go".into()));
    kernel.run();
    // The write to the (public!) file was dropped at the file server's
    // door: FS_R = {2} does not accept the worker's taint, so the tainted
    // worker cannot even reach a public sink through the server.
    assert_eq!(kernel.stats().dropped_label_check, drops + 1);
}
