//! Full-stack reboot tests: §7.5's "label-based security policy that
//! persists across system reboots", exercised through the complete OKWS
//! deployment — netd, ok-demux, idd, workers, ok-dbproxy over a durable
//! store — torn down and re-assembled with [`Okws::reboot`].
//!
//! The boot-epoch protocol under test: a reboot recovers the database
//! (rows plus their hidden ownership column) but *nothing* per-boot —
//! idd mints fresh `uT`/`uG` handles on first login (§5.1: handles are
//! unique since boot), grants ok-dbproxy `⋆` on each, and the proxy's
//! persisted uid map re-binds the fresh handles to the recovered rows.

use asbestos_kernel::Kernel;
use asbestos_okws::logic::Profile;
use asbestos_okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};
use asbestos_store::MemDev;

/// A profile deployment config over `dev`; `with_users` controls whether
/// accounts are (re-)provisioned — reboots pass `false`, proving the
/// credential store itself persisted.
fn profile_config(dev: &MemDev, with_users: bool) -> OkwsConfig {
    let mut config = OkwsConfig::new(80).durable(Box::new(dev.clone()));
    config
        .services
        .push(ServiceSpec::new("profile", || Box::new(Profile)));
    config.worker_tables.push(Profile::TABLE_DDL.to_string());
    if with_users {
        config.users.push(("alice".into(), "pw-a".into()));
        config.users.push(("bob".into(), "pw-b".into()));
    }
    config
}

/// `uT`/`uG`-style handles idd holds at ⋆ (its per-user grants).
fn idd_star_handles(kernel: &Kernel) -> Vec<u64> {
    Okws::idd_star_handles(kernel)
}

#[test]
fn reboot_rebinds_users_and_preserves_isolation() {
    let dev = MemDev::new();

    // Boot 1: provision accounts, store one private bio per user.
    let (mut k1, okws1) = Okws::deploy(501, profile_config(&dev, true));
    assert_eq!(k1.boot_epoch(), 1, "first durable boot");
    let mut client = OkwsClient::new(&okws1);
    let (status, body) = client
        .request_sync(
            &mut k1,
            "profile",
            "alice",
            "pw-a",
            &[("set", "alice-private")],
        )
        .unwrap();
    assert_eq!((status, body.as_slice()), (200, &b"stored"[..]));
    let (_, body) = client
        .request_sync(&mut k1, "profile", "bob", "pw-b", &[("set", "bob-private")])
        .unwrap();
    assert_eq!(body, b"stored");
    // idd holds ⋆ for everything it minted this boot: its ports plus the
    // two per-user handle pairs.
    let boot1_handles = idd_star_handles(&k1);
    assert!(boot1_handles.len() >= 4, "at least uT ⋆ + uG ⋆ per user");
    okws1.shutdown(&mut k1);
    drop(k1);

    // Boot 2: NO users in the config — credentials, tables, and rows all
    // come back from the store.
    let (mut k2, okws2) = Okws::reboot(501, profile_config(&dev, false));
    assert_eq!(k2.boot_epoch(), 2, "epoch advanced across the reboot");
    let mut client = OkwsClient::new(&okws2);

    // Before any session exists: a wrong password fails against the
    // *recovered* credential table — persistence is not an open door.
    // (Must run before alice's real login: a cached session would serve
    // subsequent requests without re-authenticating, §7.3.)
    let (status, _) = client
        .request_sync(&mut k2, "profile", "alice", "wrong", &[("get", "alice")])
        .unwrap();
    assert_eq!(status, 403);

    // Alice logs in with her persisted password and sees her row.
    let (status, body) = client
        .request_sync(&mut k2, "profile", "alice", "pw-a", &[("get", "alice")])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, b"alice:alice-private\n");

    // Bob cannot see alice's recovered row: the proxy re-taints it with
    // alice's *fresh* uT and the kernel drops it at bob's event process.
    let drops_before = k2.stats().dropped_label_check;
    let (status, body) = client
        .request_sync(&mut k2, "profile", "bob", "pw-b", &[("get", "alice")])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        body, b"",
        "alice's recovered data must stay invisible to bob"
    );
    assert!(
        k2.stats().dropped_label_check > drops_before,
        "the cross-user read was dropped by Figure 4, not by worker code"
    );

    // Bob still owns his own recovered row.
    let (_, body) = client
        .request_sync(&mut k2, "profile", "bob", "pw-b", &[("get", "bob")])
        .unwrap();
    assert_eq!(body, b"bob:bob-private\n");

    // §5.1 across reboots: every handle idd holds this boot — ports and
    // the freshly-minted uT/uG pairs alike — is a value boot 1 never saw.
    let boot2_handles = idd_star_handles(&k2);
    assert!(boot2_handles.len() >= 4);
    assert!(
        boot2_handles.iter().all(|h| !boot1_handles.contains(h)),
        "no boot-1 handle may be re-minted in boot 2"
    );
}

#[test]
fn crash_reboot_keeps_every_acknowledged_write() {
    let dev = MemDev::new();
    let (mut k1, okws1) = Okws::deploy(502, profile_config(&dev, true));
    let mut client = OkwsClient::new(&okws1);
    let (_, body) = client
        .request_sync(&mut k1, "profile", "alice", "pw-a", &[("set", "survives")])
        .unwrap();
    assert_eq!(body, b"stored", "the write was acknowledged");
    // Crash: no shutdown, no teardown — and the device loses everything
    // that was never synced.
    drop(okws1);
    drop(k1);
    dev.crash(0);

    let (mut k2, okws2) = Okws::reboot(502, profile_config(&dev, false));
    let mut client = OkwsClient::new(&okws2);
    let (status, body) = client
        .request_sync(&mut k2, "profile", "alice", "pw-a", &[("get", "alice")])
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        body, b"alice:survives\n",
        "an acknowledged write must survive a crash (redo-logged before the ack)"
    );
}

/// Figure 4 golden-trace equivalence: a recovered deployment must render
/// exactly the verdicts a fresh deployment with the same data renders.
/// Handle *values* differ per boot, but the verdict structure — what
/// delivers, what the label checks drop — must be identical.
#[test]
fn recovered_deployment_matches_fresh_boot_verdicts() {
    // Both worlds end in the same logical state: bios set for both
    // users, sessions warm. World F(resh) built it live this boot; world
    // R(ecovered) crossed a shutdown/reboot in between.
    let run_script = |kernel: &mut Kernel, client: &mut OkwsClient| -> (u64, u64, u64) {
        let before = kernel.stats();
        let script = [
            ("alice", "pw-a", "alice", "alice:private-a\n"),
            ("bob", "pw-b", "alice", ""),
            ("alice", "pw-a", "bob", ""),
            ("bob", "pw-b", "bob", "bob:private-b\n"),
        ];
        for (user, pw, target, expect) in script {
            let (status, body) = client
                .request_sync(kernel, "profile", user, pw, &[("get", target)])
                .unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, expect.as_bytes(), "{user} get {target}");
        }
        let after = kernel.stats();
        (
            after.delivered - before.delivered,
            after.dropped_label_check - before.dropped_label_check,
            after.eps_created - before.eps_created,
        )
    };
    let seed = 503;

    // World F: everything in one boot.
    let dev_f = MemDev::new();
    let (mut kf, okws_f) = Okws::deploy(seed, profile_config(&dev_f, true));
    let mut client_f = OkwsClient::new(&okws_f);
    for (u, p, bio) in [("alice", "pw-a", "private-a"), ("bob", "pw-b", "private-b")] {
        client_f
            .request_sync(&mut kf, "profile", u, p, &[("set", bio)])
            .unwrap();
    }
    let fresh = run_script(&mut kf, &mut client_f);

    // World R: same writes, then shutdown, reboot, re-login warmup (the
    // sessions the fresh world already had), then the identical script.
    let dev_r = MemDev::new();
    let (mut k1, okws1) = Okws::deploy(seed, profile_config(&dev_r, true));
    let mut client1 = OkwsClient::new(&okws1);
    for (u, p, bio) in [("alice", "pw-a", "private-a"), ("bob", "pw-b", "private-b")] {
        client1
            .request_sync(&mut k1, "profile", u, p, &[("set", bio)])
            .unwrap();
    }
    okws1.shutdown(&mut k1);
    drop(k1);
    let (mut kr, okws_r) = Okws::reboot(seed, profile_config(&dev_r, false));
    let mut client_r = OkwsClient::new(&okws_r);
    // Warmup: one request per user re-establishes sessions (login, fresh
    // handles, re-bind) so both worlds run the script from warm state.
    for (u, p) in [("alice", "pw-a"), ("bob", "pw-b")] {
        let (status, _) = client_r
            .request_sync(&mut kr, "profile", u, p, &[("get", u)])
            .unwrap();
        assert_eq!(status, 200);
    }
    let recovered = run_script(&mut kr, &mut client_r);

    assert_eq!(
        fresh, recovered,
        "(delivered, label-check drops, eps created) must match the fresh-boot golden trace"
    );
    assert!(fresh.1 > 0, "the script exercises cross-user drops");
}
