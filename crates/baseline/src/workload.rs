//! Workload runners for the baseline servers.
//!
//! Two load shapes, matching the paper's two experiments:
//!
//! * **Closed loop** (throughput, §9.2.1): `c` clients, each issuing its
//!   next request when the previous one completes; throughput is the
//!   serialized-CPU bound.
//! * **Open loop** (latency, §9.2.2): paced arrivals below capacity, so
//!   reported latencies reflect the request path rather than saturation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apache::BaselineModel;

/// Simulated CPU frequency (the paper's 2.8 GHz Pentium 4).
pub const CYCLES_PER_SEC: f64 = 2.8e9;

/// Result of a workload run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Requests completed.
    pub completed: u64,
    /// Virtual time elapsed, cycles.
    pub elapsed_cycles: u64,
    /// Per-request latencies, microseconds, sorted ascending.
    pub latencies_us: Vec<f64>,
}

impl RunResult {
    /// Completed connections per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.elapsed_cycles as f64 / CYCLES_PER_SEC)
    }

    /// Latency percentile (nearest rank), microseconds.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64)
            .ceil()
            .max(1.0) as usize;
        self.latencies_us[rank.min(self.latencies_us.len()) - 1]
    }
}

fn exp_sample(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0f64);
    -(1.0 - u).ln()
}

/// One request through the shared CPU: returns `(new_cpu_free, latency_cycles)`.
fn serve(model: &BaselineModel, rng: &mut StdRng, cpu_free: u64, ready: u64) -> (u64, u64) {
    let start = cpu_free.max(ready);
    let done_cpu = start + model.serialized_cycles;
    // Path time (scheduling hand-offs, NIC, client stack) overlaps other
    // requests' CPU; long-tailed jitter models fork/scheduling variance.
    let path = model.path_extra_cycles as f64 * (1.0 + model.jitter_frac * exp_sample(rng));
    let finish = done_cpu + path as u64;
    (done_cpu, finish - ready)
}

/// Closed-loop run: `clients` concurrent clients, `requests` total.
pub fn run_closed_loop(
    model: &BaselineModel,
    clients: usize,
    requests: u64,
    seed: u64,
) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client_ready = vec![0u64; clients.max(1)];
    let mut cpu_free = 0u64;
    let mut latencies = Vec::with_capacity(requests as usize);
    let mut elapsed = 0u64;
    for i in 0..requests {
        // The next request comes from the client that became ready first.
        let (idx, &ready) = client_ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("at least one client");
        let (new_cpu_free, latency) = serve(model, &mut rng, cpu_free, ready);
        cpu_free = new_cpu_free;
        let finish = ready + latency;
        client_ready[idx] = finish;
        latencies.push(latency as f64 * 1e6 / CYCLES_PER_SEC);
        elapsed = elapsed.max(finish);
        let _ = i;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    RunResult {
        completed: requests,
        elapsed_cycles: elapsed,
        latencies_us: latencies,
    }
}

/// Open-loop run at `rate_frac` of the serialized-CPU capacity.
pub fn run_open_loop(model: &BaselineModel, rate_frac: f64, requests: u64, seed: u64) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let spacing = (model.serialized_cycles as f64 / rate_frac) as u64;
    let mut cpu_free = 0u64;
    let mut latencies = Vec::with_capacity(requests as usize);
    let mut elapsed = 0u64;
    for i in 0..requests {
        let arrival_jitter = (spacing as f64 * 0.2 * rng.gen_range(0.0..1.0f64)) as u64;
        let ready = i * spacing + arrival_jitter;
        let (new_cpu_free, latency) = serve(model, &mut rng, cpu_free, ready);
        cpu_free = new_cpu_free;
        latencies.push(latency as f64 * 1e6 / CYCLES_PER_SEC);
        elapsed = elapsed.max(ready + latency);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    RunResult {
        completed: requests,
        elapsed_cycles: elapsed,
        latencies_us: latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apache::{apache_cgi, mod_apache};
    use crate::unix::UnixCosts;

    #[test]
    fn closed_loop_throughput_is_cpu_bound() {
        let costs = UnixCosts::default();
        for model in [apache_cgi(&costs), mod_apache(&costs)] {
            let result = run_closed_loop(&model, 16, 2_000, 42);
            let expected = CYCLES_PER_SEC / model.serialized_cycles as f64;
            let got = result.throughput();
            assert!(
                (got - expected).abs() / expected < 0.05,
                "{}: {got:.0} vs cpu bound {expected:.0}",
                model.name
            );
        }
    }

    #[test]
    fn latency_table_shape_matches_figure8() {
        // Figure 8 anchor check: Mod-Apache ≈ 1 ms median with a tight
        // distribution; Apache ≈ 3.4 ms with a long tail.
        let costs = UnixCosts::default();
        let module = run_open_loop(&mod_apache(&costs), 0.5, 4_000, 7);
        let apache = run_open_loop(&apache_cgi(&costs), 0.5, 4_000, 7);
        let m50 = module.percentile_us(50.0);
        let m90 = module.percentile_us(90.0);
        let a50 = apache.percentile_us(50.0);
        let a90 = apache.percentile_us(90.0);
        assert!((850.0..1_150.0).contains(&m50), "Mod-Apache median {m50}");
        assert!(m90 < m50 * 1.1, "Mod-Apache tail is tight: {m90} vs {m50}");
        assert!((2_800.0..4_000.0).contains(&a50), "Apache median {a50}");
        assert!(a90 > a50 * 1.3, "Apache tail is long: {a90} vs {a50}");
    }

    #[test]
    fn open_loop_below_capacity_has_bounded_queueing() {
        let costs = UnixCosts::default();
        let result = run_open_loop(&mod_apache(&costs), 0.3, 2_000, 3);
        // At 30% load, p99 stays within a small multiple of the median.
        let p50 = result.percentile_us(50.0);
        let p99 = result.percentile_us(99.0);
        assert!(p99 < p50 * 2.0, "p99 {p99} vs p50 {p50}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let costs = UnixCosts::default();
        let model = apache_cgi(&costs);
        let a = run_closed_loop(&model, 4, 500, 11);
        let b = run_closed_loop(&model, 4, 500, 11);
        assert_eq!(a.latencies_us, b.latencies_us);
    }
}
