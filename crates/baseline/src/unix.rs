//! A miniature Unix cost model: processes, fork/exec, context switches.
//!
//! Substitutes for the Linux box the paper benchmarks Apache on (§9.2).
//! The model is deliberately small: a process table plus cycle costs for
//! the operations a pre-forked web server performs per request. Costs are
//! calibrated for a 2.8 GHz Pentium 4 era system (see EXPERIMENTS.md) and
//! the *composition* of each server's request path is spelled out in
//! [`crate::apache`], so changing one primitive cost flows through both
//! baselines consistently.

/// Cycle costs of Unix primitives (2.8 GHz, 2005-era kernel).
#[derive(Clone, Debug)]
pub struct UnixCosts {
    /// `accept(2)` plus socket setup.
    pub accept: u64,
    /// Copying a typical server address space for `fork(2)` (COW setup,
    /// page-table duplication).
    pub fork: u64,
    /// `execve(2)` of a small CGI binary (ELF load, dynamic linking).
    pub exec: u64,
    /// Tearing down an exited process and `wait(2)`ing on it.
    pub exit_reap: u64,
    /// One scheduler context switch.
    pub context_switch: u64,
    /// Shuttling one request/response through a pipe (per direction).
    pub pipe_transfer: u64,
    /// Parsing an HTTP request in the server.
    pub http_parse: u64,
    /// The trivial dynamic handler itself (builds the 144-byte response).
    pub handler: u64,
    /// Kernel TCP work per request (send/receive path).
    pub tcp_per_request: u64,
}

impl Default for UnixCosts {
    fn default() -> UnixCosts {
        UnixCosts {
            accept: 60_000,
            fork: 550_000,
            exec: 380_000,
            exit_reap: 120_000,
            context_switch: 15_000,
            pipe_transfer: 45_000,
            http_parse: 110_000,
            handler: 70_000,
            tcp_per_request: 700_000,
        }
    }
}

/// A simulated process (bookkeeping for fork-per-request accounting).
#[derive(Clone, Debug)]
pub struct UnixProcess {
    /// Process id.
    pub pid: u32,
    /// Parent pid.
    pub ppid: u32,
    /// Resident pages (a forked CGI shares text; counts private pages).
    pub private_pages: usize,
    /// Whether the process is alive.
    pub alive: bool,
}

/// The process table of the simulated Unix.
pub struct UnixSim {
    /// Primitive costs.
    pub costs: UnixCosts,
    procs: Vec<UnixProcess>,
    /// Total forks performed (stat).
    pub forks: u64,
    /// Total execs performed (stat).
    pub execs: u64,
}

impl UnixSim {
    /// Boots a Unix with an init process.
    pub fn new(costs: UnixCosts) -> UnixSim {
        UnixSim {
            costs,
            procs: vec![UnixProcess {
                pid: 1,
                ppid: 0,
                private_pages: 64,
                alive: true,
            }],
            forks: 0,
            execs: 0,
        }
    }

    /// Forks `parent`, returning `(child_pid, cycles)`.
    pub fn fork(&mut self, parent: u32, child_private_pages: usize) -> (u32, u64) {
        let pid = self.procs.len() as u32 + 1;
        self.procs.push(UnixProcess {
            pid,
            ppid: parent,
            private_pages: child_private_pages,
            alive: true,
        });
        self.forks += 1;
        (pid, self.costs.fork)
    }

    /// Execs in `pid`, returning cycles.
    pub fn exec(&mut self, _pid: u32) -> u64 {
        self.execs += 1;
        self.costs.exec
    }

    /// Exits and reaps `pid`, returning cycles.
    pub fn exit(&mut self, pid: u32) -> u64 {
        if let Some(p) = self.procs.iter_mut().find(|p| p.pid == pid) {
            p.alive = false;
        }
        self.costs.exit_reap
    }

    /// Live process count.
    pub fn live_processes(&self) -> usize {
        self.procs.iter().filter(|p| p.alive).count()
    }

    /// Total private pages across live processes (the fork-model memory
    /// cost that §6 contrasts event processes against).
    pub fn private_pages(&self) -> usize {
        self.procs
            .iter()
            .filter(|p| p.alive)
            .map(|p| p.private_pages)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_exec_exit_lifecycle() {
        let mut sim = UnixSim::new(UnixCosts::default());
        let (child, fork_cycles) = sim.fork(1, 8);
        assert_eq!(fork_cycles, sim.costs.fork);
        assert_eq!(sim.live_processes(), 2);
        let exec_cycles = sim.exec(child);
        assert_eq!(exec_cycles, sim.costs.exec);
        let exit_cycles = sim.exit(child);
        assert_eq!(exit_cycles, sim.costs.exit_reap);
        assert_eq!(sim.live_processes(), 1);
        assert_eq!(sim.forks, 1);
        assert_eq!(sim.execs, 1);
    }

    #[test]
    fn private_pages_accumulate_per_process() {
        let mut sim = UnixSim::new(UnixCosts::default());
        let base = sim.private_pages();
        for _ in 0..10 {
            sim.fork(1, 8);
        }
        assert_eq!(sim.private_pages() - base, 80);
    }
}
