//! The Apache and Mod-Apache request-path models (§9.2).
//!
//! "We implemented our test application both as a standard CGI process,
//! written in C, and as an Apache module written in C. In both cases,
//! Apache keeps a pool of pre-forked processes to answer requests. Apache
//! with CGI processes additionally forks and executes the CGI binary for
//! each request. ... Mod-Apache is efficient but provides no isolation."
//!
//! Each model composes its per-request *serialized* (CPU) cycles from the
//! Unix primitives, plus a non-serialized path component (scheduling and
//! network time that overlaps other requests' CPU work) used for latency.

use crate::unix::{UnixCosts, UnixSim};

/// A baseline server's per-request cost profile.
#[derive(Clone, Debug)]
pub struct BaselineModel {
    /// Display name.
    pub name: &'static str,
    /// Mean serialized CPU cycles per request (the throughput bound).
    pub serialized_cycles: u64,
    /// Relative jitter applied to the serialized portion (fork-heavy paths
    /// vary much more than in-process handlers).
    pub jitter_frac: f64,
    /// Non-serialized per-request path cycles (queue hand-offs between the
    /// pool and the kernel, NIC and client stack time): adds latency, not
    /// load.
    pub path_extra_cycles: u64,
    /// Private pages per concurrently active request (the §6 fork-model
    /// memory contrast).
    pub pages_per_active_request: usize,
}

/// Builds the Apache + CGI model from Unix primitives.
///
/// Per request: accept, parse, **fork**, **exec**, handler (in the CGI),
/// two pipe transfers, exit/reap, several context switches, TCP work.
pub fn apache_cgi(costs: &UnixCosts) -> BaselineModel {
    let serialized = costs.accept
        + costs.http_parse
        + costs.fork
        + costs.exec
        + costs.handler
        + 2 * costs.pipe_transfer
        + costs.exit_reap
        + 6 * costs.context_switch
        + costs.tcp_per_request;
    BaselineModel {
        name: "Apache",
        serialized_cycles: serialized,
        jitter_frac: 0.35,
        // The CGI round trip bounces through the pool scheduler twice and
        // waits on pipe readiness; these overlap other requests' CPU.
        path_extra_cycles: 5_450_000,
        pages_per_active_request: 96, // forked CGI image
    }
}

/// Builds the Mod-Apache (in-process module) model from Unix primitives.
///
/// Per request: accept, parse, handler, TCP work, one context switch —
/// "a server that can handle Web requests with simple library calls".
pub fn mod_apache(costs: &UnixCosts) -> BaselineModel {
    let serialized = costs.accept
        + costs.http_parse
        + costs.handler
        + 2 * costs.context_switch
        + costs.tcp_per_request;
    BaselineModel {
        name: "Mod-Apache",
        serialized_cycles: serialized,
        jitter_frac: 0.013,
        path_extra_cycles: 1_800_000,
        pages_per_active_request: 4,
    }
}

/// Runs `n` requests through the model's fork path against a [`UnixSim`]
/// (exercises the process-table accounting; the closed-form cycle total
/// must match the model's serialized composition).
pub fn run_apache_cgi_against_sim(sim: &mut UnixSim, n: u64) -> u64 {
    let mut total = 0;
    for _ in 0..n {
        let costs = sim.costs.clone();
        total += costs.accept + costs.http_parse;
        let (child, fork_cycles) = sim.fork(2, 96);
        total += fork_cycles;
        total += sim.exec(child);
        total += costs.handler + 2 * costs.pipe_transfer;
        total += sim.exit(child);
        total += 6 * costs.context_switch + costs.tcp_per_request;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apache_is_slower_than_mod_apache() {
        let costs = UnixCosts::default();
        let apache = apache_cgi(&costs);
        let module = mod_apache(&costs);
        assert!(apache.serialized_cycles > module.serialized_cycles * 2);
        assert!(apache.jitter_frac > module.jitter_frac);
    }

    #[test]
    fn sim_composition_matches_model() {
        let costs = UnixCosts::default();
        let model = apache_cgi(&costs);
        let mut sim = UnixSim::new(costs);
        let total = run_apache_cgi_against_sim(&mut sim, 10);
        assert_eq!(total, 10 * model.serialized_cycles);
        assert_eq!(sim.forks, 10);
        assert_eq!(sim.execs, 10);
        assert_eq!(sim.live_processes(), 1, "all CGIs reaped");
    }

    #[test]
    fn throughput_anchors_are_close_to_paper() {
        // §9.2.1: Mod-Apache ≈ 2 800 conn/s, Apache ≈ half of that.
        let costs = UnixCosts::default();
        let module = mod_apache(&costs);
        let apache = apache_cgi(&costs);
        let thr = |m: &BaselineModel| 2.8e9 / m.serialized_cycles as f64;
        let mod_thr = thr(&module);
        let apache_thr = thr(&apache);
        assert!(
            (2_500.0..3_400.0).contains(&mod_thr),
            "Mod-Apache: {mod_thr}"
        );
        assert!(
            (1_200.0..1_700.0).contains(&apache_thr),
            "Apache: {apache_thr}"
        );
    }
}
