//! # asbestos-baseline
//!
//! Discrete-event models of the paper's comparison systems (§9.2): Apache
//! 1.3 with per-request CGI fork+exec, and "Mod-Apache" (the same handler
//! as an in-process module), both running on a miniature Unix cost model.
//!
//! These baselines substitute for the authors' Linux testbed. Their cost
//! constants are calibrated once against the paper's anchor numbers
//! (Mod-Apache ≈ 2 800 conn/s and ≈ 1 ms median latency; Apache ≈ half the
//! throughput with 3–5× the latency) and then left fixed; see
//! EXPERIMENTS.md for the calibration table.

pub mod apache;
pub mod unix;
pub mod workload;

pub use apache::{apache_cgi, mod_apache, BaselineModel};
pub use unix::{UnixCosts, UnixSim};
pub use workload::{run_closed_loop, run_open_loop, RunResult};
