//! The durable store: segmented WAL + snapshot compaction + boot epoch.
//!
//! A [`Store`] owns a [`BlockDev`] and lays it out as:
//!
//! * `epoch.0` / `epoch.1` — the boot counter, one [`FrameKind::Epoch`]
//!   frame in dual slots (epoch `e` lives in slot `e % 2`, so a torn
//!   bump can never damage the surviving epoch). [`Store::open`] bumps
//!   it durably before anything else, so every recovery is a new boot
//!   epoch (§5.1: handle values are unique *since boot*; the epoch is
//!   what the kernel folds into its handle cipher so a new boot can
//!   never re-mint an old boot's handles).
//! * `wal.NNNNNNNN` — log segments. Records append to the active
//!   segment; a [`FrameKind::Commit`] marker plus one device sync makes
//!   the whole batch durable (group commit). Segments rotate at a size
//!   bound.
//! * `snap.NNNNNNNN` — compacted snapshots. `snap.N`'s payload captures
//!   everything up to (not including) segment `N`; compaction writes the
//!   next snapshot durably *before* pruning older segments, so a crash
//!   at any point leaves at least one valid (snapshot, segments) pair.
//!
//! **Recovery contract.** [`Store::open`] returns the newest intact
//! snapshot plus every record covered by a commit marker, in append
//! order — and nothing else. Records after the last commit marker were
//! never acknowledged and are discarded (the tail is truncated so new
//! appends land on a clean boundary). The crash suites pin the stronger
//! property: truncating the device at *any* byte offset recovers exactly
//! some committed prefix.

use crate::blockdev::BlockDev;
use crate::wal::{decode_single, encode_commit, encode_frame, scan_committed, FrameKind};

/// Default segment-rotation bound (bytes of frames per segment).
pub const DEFAULT_SEGMENT_LIMIT: usize = 64 * 1024;

/// Default compaction threshold (total committed WAL bytes).
pub const DEFAULT_COMPACT_THRESHOLD: usize = 256 * 1024;

/// Dual-slot boot-epoch objects. The counter alternates slots (epoch `e`
/// lives in slot `e % 2`), so the in-place overwrite of a bump can only
/// ever tear the slot the *previous* epoch does not occupy: a torn bump
/// leaves the old epoch intact and the counter monotone. A single-slot
/// design would regress to epoch 0 on a torn write — and re-mint a dead
/// boot's entire handle space.
const EPOCH_SLOTS: [&str; 2] = ["epoch.0", "epoch.1"];

fn seg_name(index: u64) -> String {
    format!("wal.{index:08}")
}

fn snap_name(index: u64) -> String {
    format!("snap.{index:08}")
}

fn parse_index(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.parse().ok()
}

/// What [`Store::open`] recovered from the device.
pub struct Recovery {
    /// The newest intact snapshot payload, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Committed records logged since that snapshot, in append order.
    pub records: Vec<Vec<u8>>,
    /// The new boot epoch (already bumped and persisted).
    pub boot_epoch: u64,
    /// Intact-but-uncommitted records that were discarded.
    pub dropped_uncommitted: usize,
    /// Whether a torn tail was found (and truncated away).
    pub torn_tail: bool,
}

/// A write-ahead-logged store over a [`BlockDev`].
pub struct Store {
    dev: Box<dyn BlockDev>,
    boot_epoch: u64,
    active_seg: u64,
    active_len: usize,
    /// Committed WAL bytes across all live segments (compaction trigger).
    wal_bytes: usize,
    /// Records appended since the last commit marker.
    pending: usize,
    /// Commits issued over this store's lifetime.
    commits: u64,
    /// Sequence number the next commit marker will carry (continues the
    /// recovered history, so cross-segment gaps are detectable forever).
    commit_seq: u64,
    segment_limit: usize,
    compact_threshold: usize,
}

impl Store {
    /// Opens (and recovers) a store, bumping the boot epoch durably.
    pub fn open(dev: Box<dyn BlockDev>) -> (Store, Recovery) {
        let mut dev = dev;

        // Bump the boot epoch first: even a recovery that finds nothing
        // is a new boot. The bump goes to the slot the previous epoch
        // does NOT occupy and is synced immediately, so it is durable
        // before this boot mints anything — and a torn write can only
        // damage the new slot, never the surviving old epoch.
        let last_epoch = Store::peek_epoch(dev.as_ref());
        let boot_epoch = last_epoch + 1;
        dev.put(
            EPOCH_SLOTS[(boot_epoch % 2) as usize],
            &encode_frame(FrameKind::Epoch, &boot_epoch.to_le_bytes()),
        );
        dev.sync();

        // Newest intact snapshot wins; torn ones (crash mid-compaction)
        // are skipped — the previous snapshot plus its segments are still
        // on the device because pruning happens only after the new
        // snapshot is durable.
        let names = dev.list();
        let mut snap_indexes: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_index(n, "snap."))
            .collect();
        snap_indexes.sort_unstable();
        let mut snapshot = None;
        let mut base_seg = 0u64;
        for &idx in snap_indexes.iter().rev() {
            if let Some(body) = dev
                .read(&snap_name(idx))
                .and_then(|b| decode_single(&b, FrameKind::Snapshot))
            {
                snapshot = Some(body);
                base_seg = idx;
                break;
            }
        }

        // Replay segments at or past the snapshot base, in order,
        // stopping at the first gap or damaged segment.
        let mut seg_indexes: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_index(n, "wal."))
            .filter(|&i| i >= base_seg)
            .collect();
        seg_indexes.sort_unstable();
        let mut records = Vec::new();
        let mut dropped_uncommitted = 0;
        let mut torn_tail = false;
        let mut active_seg = base_seg;
        let mut active_len = 0usize;
        let mut wal_bytes = 0usize;
        let mut expect_seq = None;
        let mut stopped = false;
        for (i, &idx) in seg_indexes.iter().enumerate() {
            if stopped || (i > 0 && idx != seg_indexes[i - 1] + 1) {
                // Anything past a damaged segment or a gap is unreachable
                // state from a dead future; drop it.
                dev.remove(&seg_name(idx));
                continue;
            }
            let bytes = dev.read(&seg_name(idx)).unwrap_or_default();
            let scan = scan_committed(&bytes, expect_seq);
            records.extend(scan.records);
            dropped_uncommitted += scan.uncommitted;
            expect_seq = scan.next_seq;
            active_seg = idx;
            active_len = scan.committed_len;
            wal_bytes += scan.committed_len;
            if scan.torn || scan.uncommitted > 0 || scan.committed_len < bytes.len() {
                torn_tail |= scan.torn;
                // Truncate to the committed prefix so future appends land
                // on a clean frame boundary — and so a *later* commit
                // marker can never retroactively commit this dead tail.
                dev.truncate(&seg_name(idx), scan.committed_len as u64);
                stopped = true;
            }
        }
        dev.sync();

        let store = Store {
            dev,
            boot_epoch,
            active_seg,
            active_len,
            wal_bytes,
            pending: 0,
            commits: 0,
            commit_seq: expect_seq.unwrap_or(0),
            segment_limit: DEFAULT_SEGMENT_LIMIT,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        };
        let recovery = Recovery {
            snapshot,
            records,
            boot_epoch,
            dropped_uncommitted,
            torn_tail,
        };
        (store, recovery)
    }

    /// Reads the last persisted boot epoch without bumping it (0 when the
    /// device has never been opened). Takes the highest intact slot, so
    /// a bump torn mid-write falls back to the previous epoch instead of
    /// resetting the counter.
    pub fn peek_epoch(dev: &dyn BlockDev) -> u64 {
        EPOCH_SLOTS
            .iter()
            .filter_map(|slot| {
                dev.read(slot)
                    .and_then(|b| decode_single(&b, FrameKind::Epoch))
                    .and_then(|body| body.try_into().ok().map(u64::from_le_bytes))
            })
            .max()
            .unwrap_or(0)
    }

    /// Appends one record to the active segment. Not durable until the
    /// next [`Store::commit`].
    pub fn append(&mut self, record: &[u8]) {
        let frame = encode_frame(FrameKind::Record, record);
        self.dev.append(&seg_name(self.active_seg), &frame);
        self.active_len += frame.len();
        self.wal_bytes += frame.len();
        self.pending += 1;
    }

    /// Group commit: writes a commit marker and syncs the device, making
    /// every record appended since the last commit durable in one sync.
    /// A no-op when nothing is pending. Rotates the active segment once
    /// it exceeds the segment bound.
    pub fn commit(&mut self) {
        if self.pending == 0 {
            return;
        }
        let marker = encode_commit(self.commit_seq);
        self.commit_seq += 1;
        self.dev.append(&seg_name(self.active_seg), &marker);
        self.active_len += marker.len();
        self.wal_bytes += marker.len();
        self.dev.sync();
        self.pending = 0;
        self.commits += 1;
        if self.active_len >= self.segment_limit {
            self.active_seg += 1;
            self.active_len = 0;
        }
    }

    /// Whether the committed WAL has outgrown the compaction threshold.
    pub fn needs_compaction(&self) -> bool {
        self.wal_bytes >= self.compact_threshold
    }

    /// Compacts: `snapshot` captures the application state as of every
    /// committed record; after it is durable, all segments it covers are
    /// pruned. Pending (uncommitted) records are committed first so the
    /// snapshot boundary is well defined.
    pub fn compact(&mut self, snapshot: &[u8]) {
        self.commit();
        let base = self.active_seg + 1;
        self.dev.put(
            &snap_name(base),
            &encode_frame(FrameKind::Snapshot, snapshot),
        );
        self.dev.sync();
        // The new snapshot is durable; everything older is garbage.
        for name in self.dev.list() {
            if let Some(idx) = parse_index(&name, "wal.") {
                if idx < base {
                    self.dev.remove(&name);
                }
            }
            if let Some(idx) = parse_index(&name, "snap.") {
                if idx < base {
                    self.dev.remove(&name);
                }
            }
        }
        self.dev.sync();
        self.active_seg = base;
        self.active_len = 0;
        self.wal_bytes = 0;
    }

    /// Sets the segment-rotation bound.
    pub fn set_segment_limit(&mut self, bytes: usize) {
        self.segment_limit = bytes.max(1);
    }

    /// Sets the compaction threshold.
    pub fn set_compact_threshold(&mut self, bytes: usize) {
        self.compact_threshold = bytes.max(1);
    }

    /// The boot epoch this store was opened under.
    pub fn boot_epoch(&self) -> u64 {
        self.boot_epoch
    }

    /// Records appended but not yet committed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total committed WAL bytes across live segments.
    pub fn wal_bytes(&self) -> usize {
        self.wal_bytes
    }

    /// Commits issued by this store instance.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// The active segment's object name (crash-sweep observability).
    pub fn active_segment(&self) -> String {
        seg_name(self.active_seg)
    }

    /// A second handle onto the underlying device.
    pub fn dev_handle(&self) -> Box<dyn BlockDev> {
        self.dev.clone_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdev::MemDev;

    fn rec(i: u32) -> Vec<u8> {
        format!("record-{i}").into_bytes()
    }

    #[test]
    fn empty_device_recovers_empty_and_bumps_epoch() {
        let dev = MemDev::new();
        let (store, recovery) = Store::open(Box::new(dev.clone()));
        assert!(recovery.snapshot.is_none());
        assert!(recovery.records.is_empty());
        assert_eq!(recovery.boot_epoch, 1);
        assert_eq!(store.boot_epoch(), 1);
        drop(store);
        let (_store, recovery) = Store::open(Box::new(dev));
        assert_eq!(recovery.boot_epoch, 2);
    }

    #[test]
    fn torn_epoch_bump_never_regresses_the_counter() {
        // Regression: a single-slot epoch overwritten in place would
        // reset to 0 when the bump tears — and the next boot would
        // re-mint boot 1's entire handle space. The dual-slot scheme
        // must keep the counter monotone under a torn (unsynced) bump.
        let dev = MemDev::new();
        for _ in 0..3 {
            let (_s, _r) = Store::open(Box::new(dev.clone()));
        }
        assert_eq!(Store::peek_epoch(&dev), 3);
        // Boot 4 tears its epoch write: simulate the put landing and the
        // crash discarding it before the sync.
        let torn = dev.fork();
        {
            let mut handle: Box<dyn crate::blockdev::BlockDev> = Box::new(torn.clone());
            handle.put(
                "epoch.0",
                &crate::wal::encode_frame(crate::wal::FrameKind::Epoch, &4u64.to_le_bytes())[..5],
            );
            handle.sync();
        }
        assert_eq!(
            Store::peek_epoch(&torn),
            3,
            "torn bump falls back to the intact slot"
        );
        let (_s, recovery) = Store::open(Box::new(torn));
        assert_eq!(recovery.boot_epoch, 4, "counter is monotone, never reset");
    }

    #[test]
    fn committed_records_survive_crash_uncommitted_do_not() {
        let dev = MemDev::new();
        let (mut store, _) = Store::open(Box::new(dev.clone()));
        store.append(&rec(0));
        store.append(&rec(1));
        store.commit();
        store.append(&rec(2)); // never committed
        assert_eq!(store.pending(), 1);
        dev.crash(0);
        let (_s2, recovery) = Store::open(Box::new(dev));
        assert_eq!(recovery.records, vec![rec(0), rec(1)]);
        assert_eq!(recovery.dropped_uncommitted, 0, "crash discarded it");
    }

    #[test]
    fn uncommitted_tail_on_clean_device_is_dropped_and_truncated() {
        let dev = MemDev::new();
        let (mut store, _) = Store::open(Box::new(dev.clone()));
        store.append(&rec(0));
        store.commit();
        store.append(&rec(1));
        // Simulate the bytes being durable but the commit marker missing
        // (e.g. crash between append-sync of a later commit's batch).
        dev.clone().sync();
        let (_s2, recovery) = Store::open(Box::new(dev.clone()));
        assert_eq!(recovery.records, vec![rec(0)]);
        assert_eq!(recovery.dropped_uncommitted, 1);
        // Third boot: the dead tail was truncated, so it cannot be
        // resurrected by a later commit marker.
        let (mut s3, _) = Store::open(Box::new(dev.clone()));
        s3.append(&rec(9));
        s3.commit();
        let (_s4, recovery) = Store::open(Box::new(dev));
        assert_eq!(recovery.records, vec![rec(0), rec(9)]);
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dev = MemDev::new();
        let (mut store, _) = Store::open(Box::new(dev.clone()));
        store.set_segment_limit(64);
        let expect: Vec<Vec<u8>> = (0..40).map(rec).collect();
        for r in &expect {
            store.append(r);
            store.commit();
        }
        assert!(
            dev.list().iter().filter(|n| n.starts_with("wal.")).count() > 1,
            "rotation produced multiple segments"
        );
        let (_s2, recovery) = Store::open(Box::new(dev));
        assert_eq!(recovery.records, expect);
    }

    #[test]
    fn compaction_prunes_and_recovery_uses_snapshot() {
        let dev = MemDev::new();
        let (mut store, _) = Store::open(Box::new(dev.clone()));
        store.set_segment_limit(64);
        for i in 0..20 {
            store.append(&rec(i));
            store.commit();
        }
        store.compact(b"SNAPSHOT-AT-20");
        store.append(&rec(20));
        store.commit();
        let segs = dev.list();
        assert_eq!(
            segs.iter().filter(|n| n.starts_with("snap.")).count(),
            1,
            "old snapshots pruned"
        );
        assert_eq!(
            segs.iter().filter(|n| n.starts_with("wal.")).count(),
            1,
            "covered segments pruned"
        );
        let (_s2, recovery) = Store::open(Box::new(dev));
        assert_eq!(recovery.snapshot.as_deref(), Some(&b"SNAPSHOT-AT-20"[..]));
        assert_eq!(recovery.records, vec![rec(20)]);
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous_state() {
        let dev = MemDev::new();
        let (mut store, _) = Store::open(Box::new(dev.clone()));
        for i in 0..3 {
            store.append(&rec(i));
        }
        store.commit();
        store.compact(b"SNAP-A");
        store.append(&rec(3));
        store.commit();
        // A second compaction whose snapshot write tears mid-flight:
        // simulate by writing a corrupt newer snap object directly.
        let next = b"garbage-not-a-frame".to_vec();
        let mut handle = dev.clone();
        use crate::blockdev::BlockDev as _;
        handle.put("snap.00000099", &next);
        handle.sync();
        let (_s2, recovery) = Store::open(Box::new(dev));
        assert_eq!(recovery.snapshot.as_deref(), Some(&b"SNAP-A"[..]));
        assert_eq!(recovery.records, vec![rec(3)]);
    }

    #[test]
    fn group_commit_amortizes_syncs() {
        let dev = MemDev::new();
        let (mut store, _) = Store::open(Box::new(dev.clone()));
        let base = dev.sync_count();
        for batch in 0..4 {
            for i in 0..8 {
                store.append(&rec(batch * 8 + i));
            }
            store.commit();
        }
        assert_eq!(dev.sync_count() - base, 4, "one sync per commit batch");
        assert_eq!(store.commits(), 4);
    }
}
