//! Block devices: the persistence boundary the WAL writes through.
//!
//! A [`BlockDev`] is a tiny flat object store — named append-only byte
//! objects plus whole-object writes — modeling the durable medium that
//! outlives a boot. Two backends:
//!
//! * [`MemDev`] — in-memory, with **crash injection**: bytes appended
//!   since the last [`BlockDev::sync`] are volatile, and a simulated
//!   crash discards them (optionally keeping a *torn tail* — a prefix of
//!   the unsynced bytes, the way a real disk persists part of an
//!   in-flight sector run). God-mode truncation injects a crash at any
//!   byte offset, which is what the crash-sweep suites iterate.
//! * [`FileDev`] — real files in a directory (tempdir in tests), so the
//!   WAL's group-commit batching is measured against actual `fsync`
//!   latency in the durability bench.
//!
//! Devices are handles: cloning (or [`BlockDev::clone_dev`]) yields a
//! second handle onto the *same* storage, which is how a reboot hands the
//! surviving medium to the next kernel while the test keeps a handle for
//! failure injection.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The persistence boundary.
///
/// Operations are infallible by design: this models a medium, not an OS
/// error surface — a backend that genuinely cannot write (disk full on
/// the tempfile backend) panics, which in the simulator is a harness
/// bug, not a recoverable condition. *Data* corruption, by contrast, is
/// expected and handled: readers validate CRCs and treat anything
/// invalid as a torn write.
pub trait BlockDev: Send {
    /// Names of existing objects, sorted.
    fn list(&self) -> Vec<String>;
    /// Reads a whole object; `None` if it does not exist.
    fn read(&self, name: &str) -> Option<Vec<u8>>;
    /// Appends bytes to an object, creating it if missing.
    fn append(&mut self, name: &str, bytes: &[u8]);
    /// Replaces an object's contents entirely.
    fn put(&mut self, name: &str, bytes: &[u8]);
    /// Truncates an object to `len` bytes (no-op if shorter or missing).
    fn truncate(&mut self, name: &str, len: u64);
    /// Removes an object (no-op if missing).
    fn remove(&mut self, name: &str);
    /// Makes everything written so far durable.
    fn sync(&mut self);
    /// A second handle onto the same underlying storage.
    fn clone_dev(&self) -> Box<dyn BlockDev>;
}

// ---------------------------------------------------------------------
// In-memory device with crash injection.
// ---------------------------------------------------------------------

#[derive(Clone, Default)]
struct MemObj {
    /// Current contents, including everything not yet synced.
    bytes: Vec<u8>,
    /// Contents as of the last sync — what a crash reverts to. A full
    /// copy, not a length watermark: an unsynced `put` that *overwrites*
    /// bytes in place must also be discarded by a crash, which a
    /// durable-prefix-length model silently treats as durable.
    durable: Vec<u8>,
}

#[derive(Default)]
struct MemState {
    objects: BTreeMap<String, MemObj>,
    syncs: u64,
    crashes: u64,
}

/// The in-memory failpoint backend. Clones share storage.
#[derive(Clone, Default)]
pub struct MemDev {
    state: Arc<Mutex<MemState>>,
}

impl MemDev {
    /// An empty device.
    pub fn new() -> MemDev {
        MemDev::default()
    }

    /// Simulates a crash: every unsynced change is discarded. For
    /// append-shaped changes, `torn_tail` unsynced bytes survive anyway —
    /// the partially-persisted write a real disk can leave behind; a
    /// diverging unsynced rewrite (`put`, `truncate`) reverts to the
    /// durable contents entirely. The device remains usable; the next
    /// boot sees the post-crash contents.
    pub fn crash(&self, torn_tail: usize) {
        let mut s = self.state.lock().unwrap();
        s.crashes += 1;
        for obj in s.objects.values_mut() {
            if obj.bytes.starts_with(&obj.durable) {
                let keep = (obj.durable.len() + torn_tail).min(obj.bytes.len());
                obj.bytes.truncate(keep);
            } else {
                obj.bytes = obj.durable.clone();
            }
            obj.durable = obj.bytes.clone();
        }
    }

    /// God-mode crash injection at an arbitrary byte offset: truncates
    /// one object to exactly `len` bytes and marks the result durable.
    /// The crash-sweep suites drive this over every offset of a WAL
    /// segment.
    pub fn truncate_object(&self, name: &str, len: usize) {
        let mut s = self.state.lock().unwrap();
        if let Some(obj) = s.objects.get_mut(name) {
            obj.bytes.truncate(len);
            obj.durable = obj.bytes.clone();
        }
    }

    /// Flips one bit in an object (bit-rot injection).
    pub fn flip_bit(&self, name: &str, byte: usize, bit: u8) {
        let mut s = self.state.lock().unwrap();
        if let Some(obj) = s.objects.get_mut(name) {
            if let Some(b) = obj.bytes.get_mut(byte) {
                *b ^= 1 << (bit % 8);
            }
        }
    }

    /// Raw contents of an object (test observability).
    pub fn dump(&self, name: &str) -> Vec<u8> {
        self.state
            .lock()
            .unwrap()
            .objects
            .get(name)
            .map(|o| o.bytes.clone())
            .unwrap_or_default()
    }

    /// A deep copy of the current contents as an independent device with
    /// everything marked durable — the "image the disk, boot the copy"
    /// primitive the offset sweeps use.
    pub fn fork(&self) -> MemDev {
        let s = self.state.lock().unwrap();
        let objects = s
            .objects
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    MemObj {
                        bytes: v.bytes.clone(),
                        durable: v.bytes.clone(),
                    },
                )
            })
            .collect();
        MemDev {
            state: Arc::new(Mutex::new(MemState {
                objects,
                syncs: 0,
                crashes: 0,
            })),
        }
    }

    /// Number of [`BlockDev::sync`] calls (group-commit observability).
    pub fn sync_count(&self) -> u64 {
        self.state.lock().unwrap().syncs
    }

    /// Number of simulated crashes.
    pub fn crash_count(&self) -> u64 {
        self.state.lock().unwrap().crashes
    }
}

impl BlockDev for MemDev {
    fn list(&self) -> Vec<String> {
        self.state.lock().unwrap().objects.keys().cloned().collect()
    }

    fn read(&self, name: &str) -> Option<Vec<u8>> {
        self.state
            .lock()
            .unwrap()
            .objects
            .get(name)
            .map(|o| o.bytes.clone())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) {
        let mut s = self.state.lock().unwrap();
        s.objects
            .entry(name.to_string())
            .or_default()
            .bytes
            .extend_from_slice(bytes);
    }

    fn put(&mut self, name: &str, bytes: &[u8]) {
        let mut s = self.state.lock().unwrap();
        let obj = s.objects.entry(name.to_string()).or_default();
        obj.bytes = bytes.to_vec();
    }

    fn truncate(&mut self, name: &str, len: u64) {
        let mut s = self.state.lock().unwrap();
        if let Some(obj) = s.objects.get_mut(name) {
            obj.bytes.truncate(len as usize);
        }
    }

    fn remove(&mut self, name: &str) {
        // Deletions are modeled as immediately durable (directory
        // operations); the recovery paths treat a missing object the
        // same as a crashed-away one.
        self.state.lock().unwrap().objects.remove(name);
    }

    fn sync(&mut self) {
        let mut s = self.state.lock().unwrap();
        s.syncs += 1;
        for obj in s.objects.values_mut() {
            obj.durable = obj.bytes.clone();
        }
    }

    fn clone_dev(&self) -> Box<dyn BlockDev> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// Real-file device.
// ---------------------------------------------------------------------

/// Directory-backed device: one file per object, `fsync` on sync.
///
/// Clones share the dirty-set, so syncs `fsync` only the objects
/// written since the last sync (group commit touches one segment, not
/// every accumulated file).
#[derive(Clone)]
pub struct FileDev {
    dir: PathBuf,
    dirty: Arc<Mutex<std::collections::BTreeSet<String>>>,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl FileDev {
    /// A device rooted at `dir` (created if missing).
    pub fn new(dir: PathBuf) -> FileDev {
        std::fs::create_dir_all(&dir).expect("create FileDev directory");
        FileDev {
            dir,
            dirty: Arc::new(Mutex::new(std::collections::BTreeSet::new())),
        }
    }

    /// A device in a fresh unique directory under the system temp dir.
    /// The directory is *not* removed on drop — it models a disk, and
    /// the caller (tests, benches) owns its lifetime; see
    /// [`FileDev::destroy`].
    pub fn temp() -> FileDev {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("asbestos-store-{}-{n}", std::process::id()));
        FileDev::new(dir)
    }

    /// The backing directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Removes the backing directory and everything in it.
    pub fn destroy(self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn mark_dirty(&self, name: &str) {
        self.dirty.lock().unwrap().insert(name.to_string());
    }
}

impl BlockDev for FileDev {
    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }

    fn read(&self, name: &str) -> Option<Vec<u8>> {
        std::fs::read(self.path(name)).ok()
    }

    fn append(&mut self, name: &str, bytes: &[u8]) {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .expect("open object for append");
        f.write_all(bytes).expect("append to object");
        self.mark_dirty(name);
    }

    fn put(&mut self, name: &str, bytes: &[u8]) {
        std::fs::write(self.path(name), bytes).expect("write object");
        self.mark_dirty(name);
    }

    fn truncate(&mut self, name: &str, len: u64) {
        if let Ok(f) = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
        {
            if f.metadata().map(|m| m.len() > len).unwrap_or(false) {
                f.set_len(len).expect("truncate object");
                self.mark_dirty(name);
            }
        }
    }

    fn remove(&mut self, name: &str) {
        let _ = std::fs::remove_file(self.path(name));
        self.dirty.lock().unwrap().remove(name);
    }

    fn sync(&mut self) {
        // Only objects written since the last sync: group commit fsyncs
        // the active segment, not every accumulated file.
        let dirty: Vec<String> = std::mem::take(&mut *self.dirty.lock().unwrap())
            .into_iter()
            .collect();
        for name in dirty {
            if let Ok(f) = std::fs::File::open(self.path(&name)) {
                let _ = f.sync_all();
            }
        }
    }

    fn clone_dev(&self) -> Box<dyn BlockDev> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdev_sync_and_crash_semantics() {
        let mut dev = MemDev::new();
        dev.append("a", b"hello ");
        dev.sync();
        dev.append("a", b"world");
        // Unsynced tail is lost on crash.
        let copy = dev.clone();
        copy.crash(0);
        assert_eq!(dev.read("a").unwrap(), b"hello ");
        // Appends keep working after the crash.
        dev.append("a", b"again");
        dev.sync();
        assert_eq!(dev.read("a").unwrap(), b"hello again");
        assert!(dev.sync_count() >= 2);
        assert_eq!(dev.crash_count(), 1);
    }

    #[test]
    fn memdev_unsynced_put_is_discarded_by_crash() {
        // Regression: a durable-prefix-*length* watermark would treat an
        // in-place overwrite of equal length as durable.
        let mut dev = MemDev::new();
        dev.put("obj", b"AAAAAAAA");
        dev.sync();
        dev.put("obj", b"BBBBBBBB");
        dev.clone().crash(0);
        assert_eq!(dev.read("obj").unwrap(), b"AAAAAAAA");
        // Same for an unsynced truncate-then-rewrite.
        dev.put("obj", b"CC");
        dev.clone().crash(4);
        assert_eq!(
            dev.read("obj").unwrap(),
            b"AAAAAAAA",
            "diverging rewrites revert fully; torn tails only apply to appends"
        );
    }

    #[test]
    fn memdev_torn_tail_keeps_partial_write() {
        let mut dev = MemDev::new();
        dev.append("a", b"durable|");
        dev.sync();
        dev.append("a", b"volatile");
        dev.crash(3);
        assert_eq!(dev.read("a").unwrap(), b"durable|vol");
    }

    #[test]
    fn memdev_fork_is_independent() {
        let mut dev = MemDev::new();
        dev.append("a", b"base");
        let fork = dev.fork();
        dev.append("a", b"+more");
        assert_eq!(fork.read("a").unwrap(), b"base");
        fork.truncate_object("a", 2);
        assert_eq!(dev.dump("a"), b"base+more");
    }

    #[test]
    fn filedev_round_trip() {
        let mut dev = FileDev::temp();
        dev.append("wal.0", b"abc");
        dev.append("wal.0", b"def");
        dev.put("snap.0", b"SNAP");
        dev.sync();
        assert_eq!(dev.read("wal.0").unwrap(), b"abcdef");
        assert_eq!(dev.read("snap.0").unwrap(), b"SNAP");
        assert_eq!(dev.list(), vec!["snap.0".to_string(), "wal.0".to_string()]);
        dev.truncate("wal.0", 4);
        assert_eq!(dev.read("wal.0").unwrap(), b"abcd");
        let mut second = dev.clone_dev();
        second.remove("snap.0");
        assert_eq!(dev.list(), vec!["wal.0".to_string()]);
        dev.destroy();
    }
}
