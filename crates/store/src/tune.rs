//! Adaptive group-commit sizing: the WAL half of the self-tuning
//! runtime.
//!
//! Group commit trades ack latency for sync amortization: a batch of N
//! appends shares one sync, so under sustained append pressure a large
//! batch is nearly free throughput, while an idle connection wants the
//! smallest batch possible so a lone record is never parked behind a
//! sync that isn't coming. A static `ASBESTOS_DB_GROUP_COMMIT` forces
//! the operator to pick one point on that curve at deploy time;
//! [`AdaptiveBatch`] walks the curve instead — multiplicative increase
//! while flushes keep filling (the batch is the bottleneck), halving
//! the moment a flush runs under-filled (the load went away), which
//! bounds worst-case ack latency to one under-filled window.
//!
//! This is a pure controller over flush observations — no store or
//! clock access — so the db layer can consult it wherever it already
//! decides to flush, and tests drive it with synthetic flush sequences.

/// Smallest batch the controller ever picks: every record syncs.
pub const MIN_GROUP_COMMIT: usize = 1;

/// Largest batch the controller grows to. Past a few hundred records
/// per sync the amortization curve is flat, while the committed-prefix
/// exposure window keeps growing — so cap it.
pub const MAX_GROUP_COMMIT: usize = 256;

/// Consecutive full flushes required before the batch doubles.
pub const GROW_AFTER_FULL_FLUSHES: u32 = 2;

/// A multiplicative-increase / multiplicative-decrease controller for
/// the group-commit batch size.
#[derive(Clone, Debug)]
pub struct AdaptiveBatch {
    current: usize,
    min: usize,
    max: usize,
    /// Consecutive flushes that filled the whole batch.
    full_streak: u32,
    /// Times the batch grew (observability; bench JSON reports it).
    grows: u64,
    /// Times the batch shrank.
    shrinks: u64,
}

impl Default for AdaptiveBatch {
    fn default() -> AdaptiveBatch {
        AdaptiveBatch::new(MIN_GROUP_COMMIT, MAX_GROUP_COMMIT)
    }
}

impl AdaptiveBatch {
    /// A controller bounded to `[min, max]` records per sync, starting
    /// at `min` (latency-safe until pressure proves otherwise).
    pub fn new(min: usize, max: usize) -> AdaptiveBatch {
        let min = min.max(1);
        let max = max.max(min);
        AdaptiveBatch {
            current: min,
            min,
            max,
            full_streak: 0,
            grows: 0,
            shrinks: 0,
        }
    }

    /// Records the batch should accumulate before the next sync.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Feeds one flush observation: how many records the flush actually
    /// committed. A flush that filled the whole batch is append
    /// pressure — after [`GROW_AFTER_FULL_FLUSHES`] in a row the batch
    /// doubles. A flush below half the batch means the burst ended —
    /// the batch halves immediately, so at most one under-filled window
    /// ever pays the large-batch ack latency.
    pub fn on_flush(&mut self, committed: usize) {
        if committed >= self.current {
            self.full_streak += 1;
            if self.full_streak >= GROW_AFTER_FULL_FLUSHES && self.current < self.max {
                self.current = (self.current * 2).min(self.max);
                self.full_streak = 0;
                self.grows += 1;
            }
        } else {
            self.full_streak = 0;
            if committed < self.current / 2 && self.current > self.min {
                self.current = (self.current / 2).max(self.min);
                self.shrinks += 1;
            }
        }
    }

    /// (times grown, times shrunk) — the bench JSON observability pair.
    pub fn transitions(&self) -> (u64, u64) {
        (self.grows, self.shrinks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_under_sustained_pressure_to_the_cap() {
        let mut b = AdaptiveBatch::default();
        assert_eq!(b.current(), MIN_GROUP_COMMIT);
        for _ in 0..64 {
            let cur = b.current();
            b.on_flush(cur);
        }
        assert_eq!(
            b.current(),
            MAX_GROUP_COMMIT,
            "sustained full flushes hit the cap"
        );
        let (grows, shrinks) = b.transitions();
        assert!(grows >= 8);
        assert_eq!(shrinks, 0);
    }

    #[test]
    fn one_underfilled_flush_halves_the_batch() {
        let mut b = AdaptiveBatch::new(1, 64);
        for _ in 0..32 {
            let cur = b.current();
            b.on_flush(cur);
        }
        assert_eq!(b.current(), 64);
        b.on_flush(3);
        assert_eq!(b.current(), 32, "an idle flush halves immediately");
        b.on_flush(0);
        b.on_flush(0);
        b.on_flush(0);
        b.on_flush(0);
        b.on_flush(0);
        assert_eq!(b.current(), 1, "sustained idle walks back to min");
    }

    #[test]
    fn near_full_flushes_hold_steady() {
        let mut b = AdaptiveBatch::new(1, 64);
        for _ in 0..32 {
            let cur = b.current();
            b.on_flush(cur);
        }
        // 60% fill: not pressure (no grow), not idle (no shrink).
        for _ in 0..10 {
            b.on_flush(38);
        }
        assert_eq!(b.current(), 64);
    }

    #[test]
    fn bounds_are_respected() {
        let mut b = AdaptiveBatch::new(4, 16);
        assert_eq!(b.current(), 4);
        for _ in 0..100 {
            let cur = b.current();
            b.on_flush(cur);
        }
        assert_eq!(b.current(), 16);
        for _ in 0..100 {
            b.on_flush(0);
        }
        assert_eq!(b.current(), 4);
    }
}
