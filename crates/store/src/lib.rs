//! # asbestos-store
//!
//! The durability substrate for the §7.5 persistence claim: "With
//! database access, OKWS can extend its label-based security policy to
//! one that persists across system reboots." Everything above this crate
//! is a live kernel whose handles die with the boot; everything below is
//! a [`BlockDev`] — the medium that survives.
//!
//! * [`BlockDev`] — the persistence boundary: named append-only objects
//!   with an explicit sync. [`MemDev`] is the failpoint backend (crash
//!   injection at arbitrary byte offsets, torn tail writes); [`FileDev`]
//!   is a real tempfile-backed directory with `fsync`.
//! * [`Store`] — an append-only, CRC-checksummed, length-prefixed
//!   write-ahead log with group commit, segment rotation, and snapshot
//!   compaction, plus the persisted **boot epoch** counter that the
//!   kernel folds into its handle cipher so fresh boots mint fresh
//!   handles (§5.1).
//!
//! Records are opaque bytes: the database layer (`asbestos-db`) defines
//! what a redo record means; this crate guarantees only that recovery
//! yields exactly some committed prefix of them, never a torn suffix.

pub mod blockdev;
pub mod crc;
pub mod store;
pub mod tune;
pub mod wal;

pub use blockdev::{BlockDev, FileDev, MemDev};
pub use crc::crc32;
pub use store::{Recovery, Store, DEFAULT_COMPACT_THRESHOLD, DEFAULT_SEGMENT_LIMIT};
pub use tune::{AdaptiveBatch, MAX_GROUP_COMMIT, MIN_GROUP_COMMIT};
pub use wal::{encode_commit, encode_frame, scan_committed, scan_frames, FrameKind};
