//! WAL frame codec and segment scanning.
//!
//! Every object the store writes — log segments, snapshots, the boot
//! epoch — is a sequence of *frames*:
//!
//! ```text
//! frame  := len:u32le  crc:u32le  payload
//! payload := kind:u8  body
//! ```
//!
//! `len` counts the payload bytes and `crc` is the CRC-32 of the payload,
//! so a torn append (short frame, garbage length, bit rot) is detected by
//! construction. Scanning stops at the first invalid frame: everything
//! before it is exactly the bytes that were durable and intact.

use crate::crc::crc32;

/// Frame kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameKind {
    /// One application record (opaque bytes).
    Record,
    /// Group-commit marker: every record before it is committed.
    Commit,
    /// The persisted boot-epoch counter (u64 body).
    Epoch,
    /// A compacted snapshot (opaque application bytes).
    Snapshot,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Record => 1,
            FrameKind::Commit => 2,
            FrameKind::Epoch => 3,
            FrameKind::Snapshot => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<FrameKind> {
        match tag {
            1 => Some(FrameKind::Record),
            2 => Some(FrameKind::Commit),
            3 => Some(FrameKind::Epoch),
            4 => Some(FrameKind::Snapshot),
            _ => None,
        }
    }
}

/// Encodes one frame.
pub fn encode_frame(kind: FrameKind, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(kind.tag());
    payload.extend_from_slice(body);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// One decoded frame plus the byte offset just past it.
pub struct ScannedFrame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Frame body (payload minus the kind tag).
    pub body: Vec<u8>,
    /// Offset of the first byte after this frame.
    pub end: usize,
}

/// Decodes frames from `bytes` until the first invalid one. Returns the
/// intact frames; `bytes[frames.last().end..]` is the torn/invalid tail
/// (empty when the object ends exactly on a frame boundary).
pub fn scan_frames(bytes: &[u8]) -> Vec<ScannedFrame> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = pos.checked_add(8 + len) else {
            break;
        };
        if len == 0 || end > bytes.len() {
            break; // torn tail: length field overruns the object
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != crc {
            break; // bit rot or torn payload
        }
        let Some(kind) = FrameKind::from_tag(payload[0]) else {
            break;
        };
        frames.push(ScannedFrame {
            kind,
            body: payload[1..].to_vec(),
            end,
        });
        pos = end;
    }
    frames
}

/// Decodes a single-frame object of the expected kind (snapshots, the
/// epoch object). `None` when missing, torn, or of the wrong kind.
pub fn decode_single(bytes: &[u8], kind: FrameKind) -> Option<Vec<u8>> {
    let frames = scan_frames(bytes);
    let first = frames.into_iter().next()?;
    (first.kind == kind).then_some(first.body)
}

/// The result of scanning a WAL byte stream for its committed prefix.
#[derive(Default)]
pub struct CommittedScan {
    /// Record bodies covered by a commit marker, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset just past the last commit marker (the replay-safe
    /// prefix; anything after must be truncated before new appends).
    pub committed_len: usize,
    /// Intact records found *after* the last commit marker (discarded —
    /// they were never acknowledged).
    pub uncommitted: usize,
    /// Whether the object ended in a torn/invalid/out-of-sequence tail.
    pub torn: bool,
    /// Sequence number the *next* commit marker must carry (input
    /// `expect` advanced past every accepted commit).
    pub next_seq: Option<u64>,
}

/// Scans one segment's bytes for the committed record prefix.
///
/// Commit markers carry a global sequence number, and `expect` is the
/// number the next marker must have (`None` accepts any first marker and
/// establishes the baseline). The sequence is what makes *cross-segment*
/// recovery sound: a middle segment torn at — or truncated to — a commit
/// boundary leaves a numbering gap, so the scan stops there instead of
/// splicing later segments onto an amputated history.
pub fn scan_committed(bytes: &[u8], expect: Option<u64>) -> CommittedScan {
    let mut out = CommittedScan {
        next_seq: expect,
        ..CommittedScan::default()
    };
    let mut staged: Vec<Vec<u8>> = Vec::new();
    let mut last_end = 0usize;
    for frame in scan_frames(bytes) {
        match frame.kind {
            FrameKind::Record => staged.push(frame.body),
            FrameKind::Commit => {
                let Ok(seq_bytes) = <[u8; 8]>::try_from(frame.body.as_slice()) else {
                    out.torn = true;
                    out.uncommitted = staged.len();
                    return out;
                };
                let seq = u64::from_le_bytes(seq_bytes);
                if out.next_seq.is_some_and(|e| e != seq) {
                    // Sequence discontinuity: this marker belongs to a
                    // future the durable prefix never reached.
                    out.torn = true;
                    out.uncommitted = staged.len();
                    return out;
                }
                out.records.append(&mut staged);
                out.committed_len = frame.end;
                out.next_seq = Some(seq + 1);
            }
            // Foreign frame kinds inside a segment mean corruption.
            FrameKind::Epoch | FrameKind::Snapshot => {
                out.torn = true;
                out.uncommitted = staged.len();
                return out;
            }
        }
        last_end = frame.end;
    }
    out.uncommitted = staged.len();
    out.torn = last_end < bytes.len();
    out
}

/// Encodes a commit marker carrying sequence number `seq`.
pub fn encode_commit(seq: u64) -> Vec<u8> {
    encode_frame(FrameKind::Commit, &seq.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut bytes = encode_frame(FrameKind::Record, b"one");
        bytes.extend(encode_frame(FrameKind::Record, b"two"));
        bytes.extend(encode_commit(0));
        let frames = scan_frames(&bytes);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].body, b"one");
        assert_eq!(frames[1].body, b"two");
        assert_eq!(frames[2].kind, FrameKind::Commit);
        assert_eq!(frames[2].end, bytes.len());
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut bytes = encode_frame(FrameKind::Record, b"good");
        let full = encode_frame(FrameKind::Record, b"torn-away");
        bytes.extend(&full[..full.len() - 3]);
        let frames = scan_frames(&bytes);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].body, b"good");
    }

    #[test]
    fn committed_prefix_excludes_unmarked_records() {
        let mut bytes = Vec::new();
        bytes.extend(encode_frame(FrameKind::Record, b"a"));
        bytes.extend(encode_frame(FrameKind::Record, b"b"));
        bytes.extend(encode_commit(0));
        let committed_end = bytes.len();
        bytes.extend(encode_frame(FrameKind::Record, b"c"));
        let scan = scan_committed(&bytes, None);
        assert_eq!(scan.records, vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(scan.committed_len, committed_end);
        assert_eq!(scan.uncommitted, 1);
        assert_eq!(scan.next_seq, Some(1));
        assert!(!scan.torn);
    }

    #[test]
    fn out_of_sequence_commit_stops_the_scan() {
        let mut bytes = Vec::new();
        bytes.extend(encode_frame(FrameKind::Record, b"a"));
        bytes.extend(encode_commit(4));
        let good_end = bytes.len();
        bytes.extend(encode_frame(FrameKind::Record, b"b"));
        bytes.extend(encode_commit(6)); // seq 5 went missing with its segment
        let scan = scan_committed(&bytes, None);
        assert_eq!(scan.records, vec![b"a".to_vec()]);
        assert_eq!(scan.committed_len, good_end);
        assert!(scan.torn);
        // With the right expectation the same stream scans fully.
        let scan = scan_committed(&bytes[good_end..], Some(6));
        assert_eq!(scan.records, vec![b"b".to_vec()]);
    }

    #[test]
    fn every_truncation_yields_a_committed_prefix() {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize]; // committed_len after 0 commits
        for batch in 0..4u8 {
            for i in 0..3u8 {
                bytes.extend(encode_frame(FrameKind::Record, &[batch, i]));
            }
            bytes.extend(encode_commit(batch as u64));
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let scan = scan_committed(&bytes[..cut], None);
            // The committed prefix is always a whole number of batches.
            assert_eq!(scan.records.len() % 3, 0, "cut at {cut}");
            assert!(boundaries.contains(&scan.committed_len), "cut at {cut}");
            // And it is the *largest* batch count whose commit fits.
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(scan.records.len(), expect * 3, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_never_pass_crc() {
        let bytes = encode_frame(FrameKind::Record, b"payload-under-test");
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x10;
            let frames = scan_frames(&flipped);
            // Either the frame is rejected outright, or (flipping inside
            // the length field) it reads as torn — never a wrong payload.
            if let Some(f) = frames.first() {
                assert_eq!(f.body, b"payload-under-test", "silent corruption at {i}");
            }
        }
    }
}
