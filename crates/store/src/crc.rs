//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! The workspace vendors no checksum crate, and the WAL needs exactly one
//! well-understood integrity check: every frame carries the CRC of its
//! payload, so a torn or bit-flipped tail is detected (never replayed) and
//! recovery stops at the last intact committed prefix.

/// Reflected polynomial for CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, as used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let good = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "flip at byte {i} bit {bit}");
            }
        }
    }
}
