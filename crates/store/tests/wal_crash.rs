//! Crash-injection sweeps: the recovery contract under adversarial
//! failure points.
//!
//! The pinned property is the §7.5 durability claim at its strongest:
//! for a WAL torn at **every possible byte offset** — not just frame
//! boundaries — recovery yields exactly some committed prefix of the
//! acknowledged batches, never a torn suffix, never a record from a
//! half-committed batch.
//!
//! `ASBESTOS_CRASH_SWEEP_SEED` (CI sets it per run) reseeds the
//! randomized sections — batch shapes and bit-flip positions — so the
//! sweep walks a different corner of the space every run while staying
//! reproducible from the printed seed.

use asbestos_store::{BlockDev, FileDev, MemDev, Store};

/// Deterministic-but-reseedable PRNG (SplitMix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn sweep_seed() -> u64 {
    std::env::var("ASBESTOS_CRASH_SWEEP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xA5BE_5705)
}

fn record(batch: usize, i: usize) -> Vec<u8> {
    format!("batch-{batch}-record-{i}").into_bytes()
}

/// Builds a store with `batches` committed groups of varying size and
/// returns the device plus the records of each batch, in commit order.
fn build(seed: u64, batches: usize) -> (MemDev, Vec<Vec<Vec<u8>>>) {
    let dev = MemDev::new();
    let (mut store, _) = Store::open(Box::new(dev.clone()));
    let mut rng = Rng(seed);
    let mut committed = Vec::new();
    for b in 0..batches {
        let n = 1 + rng.below(5) as usize;
        let mut batch = Vec::new();
        for i in 0..n {
            let r = record(b, i);
            store.append(&r);
            batch.push(r);
        }
        store.commit();
        committed.push(batch);
    }
    (dev, committed)
}

/// The committed-prefix check: `records` must equal the concatenation of
/// the first `k` batches for some `k`.
fn assert_committed_prefix(records: &[Vec<u8>], batches: &[Vec<Vec<u8>>], context: &str) {
    let mut offset = 0;
    for (index, batch) in batches.iter().enumerate() {
        if offset + batch.len() > records.len() {
            break;
        }
        assert_eq!(
            &records[offset..offset + batch.len()],
            batch.as_slice(),
            "{context}: batch {index} corrupted"
        );
        offset += batch.len();
    }
    assert_eq!(
        offset,
        records.len(),
        "{context}: recovered a partial batch (atomicity violated)"
    );
}

#[test]
fn crash_at_every_byte_offset_recovers_a_committed_prefix() {
    let seed = sweep_seed();
    println!("crash sweep seed: {seed}");
    let (dev, batches) = build(seed, 8);
    let wal = dev.dump("wal.00000000");
    assert!(!wal.is_empty());
    for cut in 0..=wal.len() {
        let torn = dev.fork();
        torn.truncate_object("wal.00000000", cut);
        let (_store, recovery) = Store::open(Box::new(torn));
        assert_committed_prefix(&recovery.records, &batches, &format!("cut at byte {cut}"));
    }
    // The untouched device recovers everything.
    let (_store, recovery) = Store::open(Box::new(dev));
    let all: Vec<Vec<u8>> = batches.iter().flatten().cloned().collect();
    assert_eq!(recovery.records, all);
}

#[test]
fn torn_tail_writes_recover_a_committed_prefix() {
    let seed = sweep_seed() ^ 0x7047;
    let (dev, batches) = build(seed, 6);
    let (mut store, _) = Store::open(Box::new(dev.clone()));
    // An in-flight batch that never commits, torn at every length.
    store.append(b"in-flight-1");
    store.append(b"in-flight-2");
    let unsynced = dev.dump(&store.active_segment()).len();
    for torn_extra in 0..=unsynced {
        let copy = dev.fork();
        copy.crash(torn_extra);
        let (_s, recovery) = Store::open(Box::new(copy));
        assert!(
            !recovery.records.iter().any(|r| r.starts_with(b"in-flight")),
            "uncommitted record leaked at torn_extra={torn_extra}"
        );
        assert_committed_prefix(&recovery.records, &batches, &format!("torn {torn_extra}"));
    }
}

#[test]
fn random_bit_rot_never_yields_a_non_prefix() {
    let mut rng = Rng(sweep_seed() ^ 0xB17F);
    let (dev, batches) = build(rng.next(), 6);
    let wal = dev.dump("wal.00000000");
    for _ in 0..200 {
        let byte = rng.below(wal.len() as u64) as usize;
        let bit = (rng.next() % 8) as u8;
        let rotted = dev.fork();
        rotted.flip_bit("wal.00000000", byte, bit);
        let (_store, recovery) = Store::open(Box::new(rotted));
        // A flip may shorten what recovers (scan stops at the damage) or
        // hide a commit marker, but the surviving records must still be
        // an intact batch prefix — a flipped length field must never
        // cause frames to be misparsed into plausible garbage.
        assert_committed_prefix(
            &recovery.records,
            &batches,
            &format!("flip byte {byte} bit {bit}"),
        );
    }
}

#[test]
fn crash_during_compaction_never_loses_committed_state() {
    use asbestos_store::{encode_frame, FrameKind};
    let (dev, batches) = build(sweep_seed() ^ 0xC0DE, 5);
    let all: Vec<Vec<u8>> = batches.iter().flatten().cloned().collect();
    // Compaction's crash window: the snapshot object is mid-write and the
    // covered segments have NOT been pruned yet (pruning happens only
    // after the snapshot syncs). Simulate the torn `put` at every length.
    let snap_frame = encode_frame(FrameKind::Snapshot, b"app-snapshot-bytes");
    for cut in 0..=snap_frame.len() {
        let torn = dev.fork();
        let mut handle: Box<dyn BlockDev> = Box::new(torn.clone());
        handle.put("snap.00000001", &snap_frame[..cut]);
        handle.sync();
        let (_s, r) = Store::open(Box::new(torn));
        if cut == snap_frame.len() {
            // Snapshot became durable: it covers every committed record.
            assert_eq!(r.snapshot.as_deref(), Some(&b"app-snapshot-bytes"[..]));
            assert!(r.records.is_empty());
        } else {
            // Torn snapshot is rejected; the uncompacted WAL still holds
            // everything that was ever acknowledged.
            assert!(r.snapshot.is_none(), "cut {cut} accepted a torn snapshot");
            assert_eq!(r.records, all, "cut {cut} lost committed records");
        }
    }
}

#[test]
fn multi_segment_crash_sweep() {
    let dev = MemDev::new();
    let (mut store, _) = Store::open(Box::new(dev.clone()));
    store.set_segment_limit(96); // force frequent rotation
    let mut batches = Vec::new();
    for b in 0..12 {
        let batch = vec![record(b, 0), record(b, 1)];
        for r in &batch {
            store.append(r);
        }
        store.commit();
        batches.push(batch);
    }
    let segs: Vec<String> = dev
        .list()
        .into_iter()
        .filter(|n| n.starts_with("wal."))
        .collect();
    assert!(segs.len() > 2, "rotation produced {} segments", segs.len());
    // Tear the *last* segment at every offset: earlier segments stay
    // intact, so recovery = all their batches plus a prefix of the tail's.
    let last = segs.last().unwrap();
    let tail = dev.dump(last);
    for cut in 0..=tail.len() {
        let torn = dev.fork();
        torn.truncate_object(last, cut);
        let (_s, r) = Store::open(Box::new(torn));
        assert_committed_prefix(&r.records, &batches, &format!("segment tail cut {cut}"));
    }
    // Tear a *middle* segment: recovery must stop there and ignore the
    // (now unreachable) later segments rather than splice across the gap.
    let mid = &segs[segs.len() / 2];
    let mid_bytes = dev.dump(mid);
    for cut in [0, 1, mid_bytes.len() / 2, mid_bytes.len() - 1] {
        let torn = dev.fork();
        torn.truncate_object(mid, cut);
        let (_s, r) = Store::open(Box::new(torn));
        assert_committed_prefix(&r.records, &batches, &format!("mid-segment cut {cut}"));
    }
}

#[test]
fn filedev_survives_real_reopen() {
    let dev = FileDev::temp();
    let (mut store, recovery) = Store::open(dev.clone_dev());
    assert!(recovery.records.is_empty());
    let epoch1 = recovery.boot_epoch;
    store.append(b"file-record-a");
    store.append(b"file-record-b");
    store.commit();
    store.append(b"never-committed");
    drop(store);
    let (mut store, recovery) = Store::open(dev.clone_dev());
    assert_eq!(
        recovery.records,
        vec![b"file-record-a".to_vec(), b"file-record-b".to_vec()]
    );
    assert_eq!(recovery.boot_epoch, epoch1 + 1);
    assert_eq!(recovery.dropped_uncommitted, 1);
    store.compact(b"file-snap");
    drop(store);
    let (_store, recovery) = Store::open(dev.clone_dev());
    assert_eq!(recovery.snapshot.as_deref(), Some(&b"file-snap"[..]));
    assert!(recovery.records.is_empty());
    dev.destroy();
}
