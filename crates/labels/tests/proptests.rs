//! Property-based tests for the label algebra.
//!
//! Two families:
//!
//! 1. **Representation equivalence** — every operation on the chunked
//!    [`Label`] must agree with the naive `BTreeMap` oracle
//!    ([`NaiveLabel`]), including after arbitrary mutation sequences that
//!    exercise chunk splits, merges, and copy-on-write sharing.
//! 2. **Lattice laws** — labels under `⊑`/`⊔`/`⊓` form a lattice (§5.1
//!    cites Denning's lattice model); we verify partial-order laws, bound
//!    properties, absorption, and the paper's specific claims (e.g. the
//!    `Q_S⋆` star-preservation in contamination).

use asbestos_labels::naive::NaiveLabel;
use asbestos_labels::ops;
use asbestos_labels::{Handle, Label, Level};
use proptest::prelude::*;

/// A small handle domain so operations collide often.
fn arb_handle() -> impl Strategy<Value = Handle> {
    (0u64..48).prop_map(Handle::from_raw)
}

/// A wide handle domain to exercise chunk boundaries.
fn arb_wide_handle() -> impl Strategy<Value = Handle> {
    (0u64..100_000).prop_map(Handle::from_raw)
}

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Star),
        Just(Level::L0),
        Just(Level::L1),
        Just(Level::L2),
        Just(Level::L3),
    ]
}

prop_compose! {
    fn arb_label()(
        default in arb_level(),
        pairs in prop::collection::vec((arb_handle(), arb_level()), 0..24),
    ) -> Label {
        Label::from_pairs(default, &pairs)
    }
}

prop_compose! {
    fn arb_wide_label()(
        default in arb_level(),
        pairs in prop::collection::vec((arb_wide_handle(), arb_level()), 0..300),
    ) -> Label {
        Label::from_pairs(default, &pairs)
    }
}

fn to_naive(l: &Label) -> NaiveLabel {
    NaiveLabel::from(l)
}

proptest! {
    // ------------------------------------------------------------------
    // Representation equivalence against the oracle.
    // ------------------------------------------------------------------

    #[test]
    fn get_matches_oracle(l in arb_wide_label(), h in arb_wide_handle()) {
        let n = to_naive(&l);
        prop_assert_eq!(l.get(h), n.get(h));
    }

    #[test]
    fn mutation_sequence_matches_oracle(
        default in arb_level(),
        steps in prop::collection::vec((arb_wide_handle(), arb_level()), 0..400),
    ) {
        let mut l = Label::new(default);
        let mut n = NaiveLabel::new(default);
        for (h, lv) in steps {
            l.set(h, lv);
            n.set(h, lv);
            prop_assert_eq!(l.entry_count(), n.entry_count());
        }
        l.check_invariants();
        prop_assert_eq!(to_naive(&l), n);
    }

    #[test]
    fn leq_matches_oracle(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(a.leq(&b), to_naive(&a).leq(&to_naive(&b)));
    }

    #[test]
    fn leq_matches_oracle_wide(a in arb_wide_label(), b in arb_wide_label()) {
        prop_assert_eq!(a.leq(&b), to_naive(&a).leq(&to_naive(&b)));
    }

    #[test]
    fn lub_matches_oracle(a in arb_label(), b in arb_label()) {
        let got = a.lub(&b);
        got.check_invariants();
        prop_assert_eq!(to_naive(&got), to_naive(&a).lub(&to_naive(&b)));
    }

    #[test]
    fn glb_matches_oracle(a in arb_label(), b in arb_label()) {
        let got = a.glb(&b);
        got.check_invariants();
        prop_assert_eq!(to_naive(&got), to_naive(&a).glb(&to_naive(&b)));
    }

    #[test]
    fn lub_glb_match_oracle_wide(a in arb_wide_label(), b in arb_wide_label()) {
        prop_assert_eq!(to_naive(&a.lub(&b)), to_naive(&a).lub(&to_naive(&b)));
        prop_assert_eq!(to_naive(&a.glb(&b)), to_naive(&a).glb(&to_naive(&b)));
    }

    #[test]
    fn stars_only_matches_oracle(a in arb_label()) {
        let got = a.stars_only();
        got.check_invariants();
        prop_assert_eq!(to_naive(&got), to_naive(&a).stars_only());
    }

    // ------------------------------------------------------------------
    // Lattice laws (§5.1).
    // ------------------------------------------------------------------

    #[test]
    fn leq_reflexive(a in arb_label()) {
        prop_assert!(a.leq(&a));
    }

    #[test]
    fn leq_antisymmetric(a in arb_label(), b in arb_label()) {
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn leq_transitive(a in arb_label(), b in arb_label(), c in arb_label()) {
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn lub_is_least_upper_bound(a in arb_label(), b in arb_label(), c in arb_label()) {
        let join = a.lub(&b);
        // Upper bound:
        prop_assert!(a.leq(&join));
        prop_assert!(b.leq(&join));
        // Least: any other upper bound dominates the join.
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(join.leq(&c));
        }
    }

    #[test]
    fn glb_is_greatest_lower_bound(a in arb_label(), b in arb_label(), c in arb_label()) {
        let meet = a.glb(&b);
        prop_assert!(meet.leq(&a));
        prop_assert!(meet.leq(&b));
        if c.leq(&a) && c.leq(&b) {
            prop_assert!(c.leq(&meet));
        }
    }

    #[test]
    fn lub_commutative_associative(a in arb_label(), b in arb_label(), c in arb_label()) {
        prop_assert_eq!(a.lub(&b), b.lub(&a));
        prop_assert_eq!(a.lub(&b).lub(&c), a.lub(&b.lub(&c)));
    }

    #[test]
    fn glb_commutative_associative(a in arb_label(), b in arb_label(), c in arb_label()) {
        prop_assert_eq!(a.glb(&b), b.glb(&a));
        prop_assert_eq!(a.glb(&b).glb(&c), a.glb(&b.glb(&c)));
    }

    #[test]
    fn absorption_laws(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(a.lub(&a.glb(&b)), a.clone());
        prop_assert_eq!(a.glb(&a.lub(&b)), a.clone());
    }

    #[test]
    fn lub_glb_idempotent(a in arb_label()) {
        prop_assert_eq!(a.lub(&a), a.clone());
        prop_assert_eq!(a.glb(&a), a.clone());
    }

    #[test]
    fn stars_only_idempotent(a in arb_label()) {
        let s = a.stars_only();
        prop_assert_eq!(s.stars_only(), s);
    }

    #[test]
    fn bottom_top_are_extremes(a in arb_label()) {
        prop_assert!(Label::bottom().leq(&a));
        prop_assert!(a.leq(&Label::top()));
    }

    // ------------------------------------------------------------------
    // Fused Figure 4 operations vs composed lattice operations.
    // ------------------------------------------------------------------

    #[test]
    fn fused_delivery_check_matches_composition(
        es in arb_label(), qr in arb_label(), dr in arb_label(),
        v in arb_label(), pr in arb_label(),
    ) {
        let fused = ops::check_delivery(&es, &qr, &dr, &v, &pr);
        let composed = es.leq(&qr.lub(&dr).glb(&v).glb(&pr));
        prop_assert_eq!(fused, composed);
    }

    #[test]
    fn fused_contamination_matches_composition(
        qs in arb_label(), ds in arb_label(), es in arb_label(),
    ) {
        let fused = ops::apply_receive_contamination(&qs, &ds, &es);
        // Q_S ← (Q_S ⊓ D_S) ⊔ (E_S ⊓ Q_S⋆)
        let composed = qs.glb(&ds).lub(&es.glb(&qs.stars_only()));
        prop_assert_eq!(fused, composed);
    }

    #[test]
    fn contamination_never_removes_stars(
        qs in arb_label(), ds_pairs in prop::collection::vec((arb_handle(), arb_level()), 0..8),
        es in arb_label(),
    ) {
        // D_S can only *add* privilege; contamination can never strip a ⋆
        // the receiver already holds (§5.3: "Only a process itself can
        // remove ⋆ levels from its send label").
        let ds = Label::from_pairs(Level::L3, &ds_pairs);
        let out = ops::apply_receive_contamination(&qs, &ds, &es);
        for (h, lv) in qs.iter() {
            if lv == Level::Star {
                prop_assert_eq!(out.get(h), Level::Star);
            }
        }
        if qs.default_level() == Level::Star {
            prop_assert_eq!(out.default_level(), Level::Star);
        }
    }

    #[test]
    fn contamination_monotone_in_es(
        qs in arb_label(), es1 in arb_label(), es2 in arb_label(),
    ) {
        // More contamination in never yields less contamination out.
        if es1.leq(&es2) {
            let out1 = ops::apply_receive_contamination(&qs, &Label::top(), &es1);
            let out2 = ops::apply_receive_contamination(&qs, &Label::top(), &es2);
            prop_assert!(out1.leq(&out2));
        }
    }

    #[test]
    fn delivery_monotone_in_receive_label(
        es in arb_label(), qr1 in arb_label(), qr2 in arb_label(),
    ) {
        // Raising a receive label only ever admits more messages.
        if qr1.leq(&qr2) {
            let (dr, v, pr) = (Label::bottom(), Label::top(), Label::top());
            if ops::check_delivery(&es, &qr1, &dr, &v, &pr) {
                prop_assert!(ops::check_delivery(&es, &qr2, &dr, &v, &pr));
            }
        }
    }

    #[test]
    fn privilege_checks_match_definitions(
        lbl in arb_label(), ps in arb_label(),
    ) {
        // Requirement (2): ∀h. D_S(h) < 3 → P_S(h) = ⋆, quantified over the
        // full (infinite) handle domain — approximated by the union of
        // explicit handles plus a fresh probe handle for the defaults.
        let probe = Handle::from_raw(1 << 60);
        let mut handles: Vec<Handle> = lbl.iter().map(|(h, _)| h).collect();
        handles.extend(ps.iter().map(|(h, _)| h));
        handles.push(probe);
        let expect_ds = handles.iter().all(|&h| {
            lbl.get(h) >= Level::L3 || ps.get(h) == Level::Star
        });
        prop_assert_eq!(ops::check_decont_send_privilege(&lbl, &ps), expect_ds);

        // Requirement (3): ∀h. D_R(h) > ⋆ → P_S(h) = ⋆.
        let expect_dr = handles.iter().all(|&h| {
            lbl.get(h) <= Level::Star || ps.get(h) == Level::Star
        });
        prop_assert_eq!(ops::check_decont_recv_privilege(&lbl, &ps), expect_dr);
    }

    #[test]
    fn heap_bytes_minimum_holds(a in arb_wide_label()) {
        // Every label costs at least the paper's ~300-byte minimum and
        // grows by at most a bounded factor per entry.
        let bytes = a.heap_bytes();
        prop_assert!(bytes >= 300);
        prop_assert!(bytes <= 300 + 24 * a.entry_count().max(1) + 16 * (a.entry_count() / 32 + 1));
    }

    #[test]
    fn equality_consistent_with_leq(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(a == b, a.leq(&b) && b.leq(&a));
    }
}

/// Deterministic regression cases distilled from early proptest failures and
/// paper examples.
#[test]
fn regression_default_only_differs() {
    let a = Label::new(Level::L0);
    let b = Label::new(Level::L2);
    assert!(a.leq(&b));
    assert!(!b.leq(&a));
    assert_eq!(a.lub(&b).default_level(), Level::L2);
    assert_eq!(a.glb(&b).default_level(), Level::L0);
}

#[test]
fn regression_entry_vs_other_default() {
    // a = {h5 0, 3}, b = {1}: a ⋢ b because default 3 > 1; b ⋢ a because
    // b(h5) = 1 > a(h5) = 0.
    let h5 = Handle::from_raw(5);
    let a = Label::from_pairs(Level::L3, &[(h5, Level::L0)]);
    let b = Label::default_send();
    assert!(!a.leq(&b));
    assert!(!b.leq(&a));
    let join = a.lub(&b);
    assert_eq!(join.get(h5), Level::L1);
    assert_eq!(join.default_level(), Level::L3);
}

#[test]
fn regression_mls_emulation() {
    // §5.2 "Multi-level policies": unclassified/secret/top-secret from two
    // compartments s and t.
    let s = Handle::from_raw(1);
    let t = Handle::from_raw(2);
    let unclass_send = Label::default_send();
    let secret_send = Label::from_pairs(Level::L1, &[(s, Level::L3)]);
    let topsecret_send = Label::from_pairs(Level::L1, &[(s, Level::L3), (t, Level::L3)]);
    let unclass_recv = Label::default_recv();
    let secret_recv = Label::from_pairs(Level::L2, &[(s, Level::L3)]);
    let topsecret_recv = Label::from_pairs(Level::L2, &[(s, Level::L3), (t, Level::L3)]);

    // Writes up are allowed, reads up are not.
    assert!(unclass_send.leq(&secret_recv));
    assert!(unclass_send.leq(&topsecret_recv));
    assert!(secret_send.leq(&topsecret_recv));
    assert!(!secret_send.leq(&unclass_recv));
    assert!(!topsecret_send.leq(&secret_recv));
    assert!(!topsecret_send.leq(&unclass_recv));

    // The "odd" label {t 3, 1} can still only reach top-secret clearance.
    let odd = Label::from_pairs(Level::L1, &[(t, Level::L3)]);
    assert!(!odd.leq(&secret_recv));
    assert!(odd.leq(&topsecret_recv));
}

// ---------------------------------------------------------------------
// Structural fingerprints (the delivery-cache identity).
// ---------------------------------------------------------------------

proptest! {
    /// Equal labels must have equal fingerprints regardless of how their
    /// chunk structure came to be — `from_pairs` bulk construction versus
    /// one-at-a-time mutation produce different chunk boundaries.
    #[test]
    fn fingerprint_is_boundary_independent(l in arb_wide_label()) {
        let pairs: Vec<(Handle, Level)> = l.iter().collect();
        let mut rebuilt = Label::new(l.default_level());
        for &(h, lv) in &pairs {
            rebuilt.set(h, lv);
        }
        prop_assert_eq!(l.clone(), rebuilt.clone());
        prop_assert_eq!(l.fingerprint(), rebuilt.fingerprint());
    }

    /// Fingerprint inequality must imply label inequality (the property
    /// the `PartialEq` fast path and the delivery cache both rely on).
    #[test]
    fn fingerprint_mismatch_implies_inequality(a in arb_label(), b in arb_label()) {
        if a.fingerprint() != b.fingerprint() {
            prop_assert_ne!(a, b);
        } else {
            // With a 48-handle domain, equal fingerprints in practice mean
            // equal labels; verify agreement with the oracle either way.
            prop_assert_eq!(a == b, to_naive(&a) == to_naive(&b));
        }
    }

    /// Mutation keeps the cached fingerprint in sync (remove, re-add,
    /// overwrite paths all go through `after_mutation`).
    #[test]
    fn fingerprint_tracks_mutation(l in arb_label(), h in arb_handle(), lv in arb_level()) {
        let mut m = l.clone();
        m.set(h, lv);
        m.check_invariants();
        let direct = Label::from_pairs(m.default_level(), &m.iter().collect::<Vec<_>>());
        prop_assert_eq!(m.fingerprint(), direct.fingerprint());
    }
}
