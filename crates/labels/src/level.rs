//! Label levels: the ordered set `[⋆, 0, 1, 2, 3]` from §5.1 of the paper.

use std::fmt;

/// A label level.
///
/// Levels order handle privileges within a label. In send labels, [`Level::Star`]
/// (written `⋆` in the paper) is the lowest, most privileged level and represents
/// declassification privilege for the handle; `3` is the highest, least
/// privileged level. The defaults lie in between: `1` for send labels and `2`
/// for receive labels (see [`Level::DEFAULT_SEND`] and [`Level::DEFAULT_RECV`]).
///
/// The derived [`Ord`] implementation yields exactly the paper's order:
///
/// ```
/// use asbestos_labels::Level;
/// assert!(Level::Star < Level::L0);
/// assert!(Level::L0 < Level::L1);
/// assert!(Level::L1 < Level::L2);
/// assert!(Level::L2 < Level::L3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Level {
    /// `⋆`: declassification privilege with respect to a handle (§5.3).
    Star,
    /// `0`: used for integrity and capabilities (§5.4, §5.5).
    L0,
    /// `1`: the default send level; usually corresponds to absence of taint.
    L1,
    /// `2`: the default receive level; "partial taint" in send labels.
    L2,
    /// `3`: full taint in send labels; the right to be tainted arbitrarily in
    /// receive labels.
    L3,
}

impl Level {
    /// The default level for send labels (`1`, §5.1).
    pub const DEFAULT_SEND: Level = Level::L1;

    /// The default level for receive labels (`2`, §5.1).
    pub const DEFAULT_RECV: Level = Level::L2;

    /// All levels in increasing order.
    pub const ALL: [Level; 5] = [Level::Star, Level::L0, Level::L1, Level::L2, Level::L3];

    /// Encodes the level into the low 3 bits of a packed label entry (§5.6).
    ///
    /// The encoding preserves order so packed entries with equal handles
    /// compare like their levels.
    #[inline]
    pub const fn to_bits(self) -> u64 {
        match self {
            Level::Star => 0,
            Level::L0 => 1,
            Level::L1 => 2,
            Level::L2 => 3,
            Level::L3 => 4,
        }
    }

    /// Decodes a level from the low 3 bits of a packed label entry.
    ///
    /// Returns `None` for the unused encodings 5–7.
    #[inline]
    pub const fn from_bits(bits: u64) -> Option<Level> {
        match bits & 0x7 {
            0 => Some(Level::Star),
            1 => Some(Level::L0),
            2 => Some(Level::L1),
            3 => Some(Level::L2),
            4 => Some(Level::L3),
            _ => None,
        }
    }

    /// The larger of two levels (used by `⊔`).
    #[inline]
    pub fn max(self, other: Level) -> Level {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two levels (used by `⊓`).
    #[inline]
    pub fn min(self, other: Level) -> Level {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The `L⋆` mapping for a single level: `⋆` stays `⋆`, everything else
    /// becomes `3` (§5.3).
    #[inline]
    pub fn star_only(self) -> Level {
        if self == Level::Star {
            Level::Star
        } else {
            Level::L3
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Star => write!(f, "*"),
            Level::L0 => write!(f, "0"),
            Level::L1 => write!(f, "1"),
            Level::L2 => write!(f, "2"),
            Level::L3 => write!(f, "3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_matches_paper() {
        // §5.1: in send labels, ⋆ is the lowest or most privileged level, and
        // 3 is the highest or least privileged level.
        assert!(Level::Star < Level::L0);
        assert!(Level::L0 < Level::L1);
        assert!(Level::L1 < Level::L2);
        assert!(Level::L2 < Level::L3);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(Level::DEFAULT_SEND, Level::L1);
        assert_eq!(Level::DEFAULT_RECV, Level::L2);
    }

    #[test]
    fn bits_roundtrip() {
        for lv in Level::ALL {
            assert_eq!(Level::from_bits(lv.to_bits()), Some(lv));
        }
        assert_eq!(Level::from_bits(5), None);
        assert_eq!(Level::from_bits(6), None);
        assert_eq!(Level::from_bits(7), None);
    }

    #[test]
    fn bits_preserve_order() {
        for a in Level::ALL {
            for b in Level::ALL {
                assert_eq!(a.to_bits() < b.to_bits(), a < b);
            }
        }
    }

    #[test]
    fn min_max() {
        assert_eq!(Level::Star.max(Level::L3), Level::L3);
        assert_eq!(Level::Star.min(Level::L3), Level::Star);
        assert_eq!(Level::L1.max(Level::L1), Level::L1);
        assert_eq!(Level::L2.min(Level::L0), Level::L0);
    }

    #[test]
    fn star_only_mapping() {
        assert_eq!(Level::Star.star_only(), Level::Star);
        for lv in [Level::L0, Level::L1, Level::L2, Level::L3] {
            assert_eq!(lv.star_only(), Level::L3);
        }
    }

    #[test]
    fn display() {
        let shown: Vec<String> = Level::ALL.iter().map(|l| l.to_string()).collect();
        assert_eq!(shown, ["*", "0", "1", "2", "3"]);
    }
}
