//! Fused label operations for the Figure 4 system-call semantics.
//!
//! The kernel's hot path evaluates compositions like
//! `E_S ⊑ (Q_R ⊔ D_R) ⊓ V ⊓ p_R` on every delivery. Building the three
//! intermediate labels would allocate; these helpers evaluate the
//! compositions pointwise in one merge pass instead. Property tests verify
//! each fused form against the composed lattice operations.

use crate::handle::Handle;
use crate::label::Label;
use crate::level::Level;

/// Work-size estimate for a fused operation over the given labels: the total
/// number of explicit entries visited. The kernel's cost model charges label
/// operations linearly in this quantity, which is what reproduces the linear
/// degradation of Figure 9.
pub fn op_work(labels: &[&Label]) -> usize {
    labels.iter().map(|l| l.entry_count()).sum()
}

/// A memoization key for one full Figure 4 delivery evaluation: the
/// structural fingerprints of every label the decision *and* its effects
/// depend on.
///
/// The boolean checks read `(E_S, D_R, V, p_R, Q_R)`; the effect labels
/// additionally read `D_S` and `Q_S` (`Q_S ← (Q_S ⊓ D_S) ⊔ (E_S ⊓ Q_S⋆)`),
/// so a key that memoizes effects as well as decisions must cover all
/// seven. Keys are O(1) to build — every fingerprint is cached in its
/// label's header — and two identical label tuples always produce the same
/// key; distinct tuples collide only if one of seven independent 64-bit
/// fingerprints collides (see [`crate::fingerprint`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DeliveryKey([u64; 7]);

impl DeliveryKey {
    /// Builds the key from the seven labels of one delivery evaluation.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn new(
        es: &Label,
        ds: &Label,
        dr: &Label,
        v: &Label,
        pr: &Label,
        qs: &Label,
        qr: &Label,
    ) -> DeliveryKey {
        DeliveryKey([
            es.fingerprint(),
            ds.fingerprint(),
            dr.fingerprint(),
            v.fingerprint(),
            pr.fingerprint(),
            qs.fingerprint(),
            qr.fingerprint(),
        ])
    }
}

/// A merging cursor over up to `N` labels: at each union handle it yields
/// every label's level (explicit or default) in one pass, so k-way
/// operations run in O(total explicit entries) — the same linearity the
/// paper's kernel has (§5.6), here on the host as well as in virtual cost.
type EntryIter<'a> = std::iter::Peekable<Box<dyn Iterator<Item = (Handle, Level)> + 'a>>;

struct UnionCursor<'a, const N: usize> {
    iters: [EntryIter<'a>; N],
    defaults: [Level; N],
}

impl<'a, const N: usize> UnionCursor<'a, N> {
    fn new(labels: [&'a Label; N]) -> UnionCursor<'a, N> {
        let defaults = labels.map(|l| l.default_level());
        let iters = labels.map(|l| {
            let it: Box<dyn Iterator<Item = (Handle, Level)> + 'a> = Box::new(l.iter());
            it.peekable()
        });
        UnionCursor { iters, defaults }
    }

    /// Advances to the next union handle; returns it plus per-label levels.
    fn next(&mut self) -> Option<(Handle, [Level; N])> {
        let mut min: Option<Handle> = None;
        for it in self.iters.iter_mut() {
            if let Some(&(h, _)) = it.peek() {
                min = Some(match min {
                    Some(m) if m <= h => m,
                    _ => h,
                });
            }
        }
        let h = min?;
        let mut levels = self.defaults;
        for (i, it) in self.iters.iter_mut().enumerate() {
            if matches!(it.peek(), Some(&(ph, _)) if ph == h) {
                levels[i] = it.next().expect("peeked Some").1;
            }
        }
        Some((h, levels))
    }
}

/// Figure 4 requirement (1): `E_S ⊑ (Q_R ⊔ D_R) ⊓ V ⊓ p_R`.
///
/// `es` is the sender's effective send label (`P_S ⊔ C_S`), `qr` the
/// receiver's receive label, `dr` the decontaminate-receive label, `v` the
/// verification label, and `pr` the destination port's receive label.
pub fn check_delivery(es: &Label, qr: &Label, dr: &Label, v: &Label, pr: &Label) -> bool {
    let bound_default = qr
        .default_level()
        .max(dr.default_level())
        .min(v.default_level())
        .min(pr.default_level());
    if es.default_level() > bound_default {
        return false;
    }
    let mut cursor = UnionCursor::new([es, qr, dr, v, pr]);
    while let Some((_h, [e, q, d, vv, p])) = cursor.next() {
        let bound = q.max(d).min(vv).min(p);
        if e > bound {
            return false;
        }
    }
    true
}

/// Figure 4 requirement (2): if `D_S(h) < 3` then `P_S(h) = ⋆`.
///
/// Granting privilege through a decontaminate-send label requires the sender
/// to control every compartment the label lowers.
pub fn check_decont_send_privilege(ds: &Label, ps: &Label) -> bool {
    // Defaults cover the infinitely many handles neither label names.
    if ds.default_level() < Level::L3 && ps.default_level() != Level::Star {
        return false;
    }
    let mut cursor = UnionCursor::new([ds, ps]);
    while let Some((_h, [d, p])) = cursor.next() {
        if d < Level::L3 && p != Level::Star {
            return false;
        }
    }
    true
}

/// Figure 4 requirement (3): if `D_R(h) > ⋆` then `P_S(h) = ⋆`.
///
/// Raising a receiver's receive label makes the system more permissive and
/// requires control of the compartments involved.
pub fn check_decont_recv_privilege(dr: &Label, ps: &Label) -> bool {
    if dr.default_level() > Level::Star && ps.default_level() != Level::Star {
        return false;
    }
    let mut cursor = UnionCursor::new([dr, ps]);
    while let Some((_h, [d, p])) = cursor.next() {
        if d > Level::Star && p != Level::Star {
            return false;
        }
    }
    true
}

/// Figure 4 requirement (4): `D_R ⊑ p_R`.
///
/// The port label bounds how much a receive label may be decontaminated;
/// this is how long-running servers opt out of unwanted taint (§5.5).
pub fn check_decont_within_port(dr: &Label, pr: &Label) -> bool {
    dr.leq(pr)
}

/// Figure 4 send effect on the receiver's send label:
/// `Q_S ← (Q_S ⊓ D_S) ⊔ (E_S ⊓ Q_S⋆)`.
///
/// The `E_S ⊓ Q_S⋆` term gives `⋆` levels in `Q_S` precedence over
/// contamination from `E_S` (§5.3): a receiver that controls a compartment
/// cannot be contaminated with respect to it.
pub fn apply_receive_contamination(qs: &Label, ds: &Label, es: &Label) -> Label {
    let combine = |q: Level, d: Level, e: Level| -> Level {
        let star_guard = if q == Level::Star {
            Level::Star
        } else {
            Level::L3
        };
        q.min(d).max(e.min(star_guard))
    };
    // Fast path: a no-op D_S and an effective send label too low to
    // contaminate anything leave Q_S unchanged.
    if ds.is_uniform()
        && ds.default_level() == Level::L3
        && es.max_level() <= qs.min_level()
        && es.max_level() <= qs.default_level()
    {
        return qs.clone();
    }
    let default = combine(qs.default_level(), ds.default_level(), es.default_level());
    let mut builder = crate::label::LabelBuilder::new(default);
    let mut cursor = UnionCursor::new([qs, ds, es]);
    while let Some((h, [q, d, e])) = cursor.next() {
        builder.push(h.raw(), combine(q, d, e));
    }
    builder.finish()
}

/// Figure 4 send effect on the receiver's receive label: `Q_R ← Q_R ⊔ D_R`.
pub fn apply_receive_decontamination(qr: &Label, dr: &Label) -> Label {
    qr.lub(dr)
}

/// The sender's effective send label `E_S = P_S ⊔ C_S` (§5.2).
pub fn effective_send(ps: &Label, cs: &Label) -> Label {
    ps.lub(cs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(raw: u64) -> Handle {
        Handle::from_raw(raw)
    }

    /// Reference (composed) form of `check_delivery` built from the lattice
    /// operations directly.
    fn check_delivery_composed(es: &Label, qr: &Label, dr: &Label, v: &Label, pr: &Label) -> bool {
        es.leq(&qr.lub(dr).glb(v).glb(pr))
    }

    #[test]
    fn delivery_default_case() {
        // Default send {1} ⊑ default receive {2} with no-op optional labels.
        let es = Label::default_send();
        let qr = Label::default_recv();
        let dr = Label::bottom();
        let v = Label::top();
        let pr = Label::top();
        assert!(check_delivery(&es, &qr, &dr, &v, &pr));
        assert!(check_delivery_composed(&es, &qr, &dr, &v, &pr));
    }

    #[test]
    fn delivery_blocked_by_taint() {
        let ut = h(10);
        let es = Label::from_pairs(Level::L1, &[(ut, Level::L3)]);
        let qr = Label::default_recv();
        let dr = Label::bottom();
        let v = Label::top();
        let pr = Label::top();
        assert!(!check_delivery(&es, &qr, &dr, &v, &pr));
        // Raising the receiver's label lets it through.
        let qr2 = Label::from_pairs(Level::L2, &[(ut, Level::L3)]);
        assert!(check_delivery(&es, &qr2, &dr, &v, &pr));
        // So does a decontaminate-receive label.
        let dr2 = Label::from_pairs(Level::Star, &[(ut, Level::L3)]);
        assert!(check_delivery(&es, &qr, &dr2, &v, &pr));
    }

    #[test]
    fn delivery_blocked_by_port_label() {
        // §5.5: a fresh port gets p_R(p) ← 0, and since all other processes
        // have P_S(p) ≥ 1 (the default send level), no one can send to p
        // until the creator explicitly grants access.
        let p = h(77);
        let es = Label::default_send();
        let qr = Label::default_recv();
        let dr = Label::bottom();
        let v = Label::top();
        let pr = Label::from_pairs(Level::L2, &[(p, Level::L0)]);
        assert!(!check_delivery(&es, &qr, &dr, &v, &pr));
        // A sender that was granted p ⋆ (or created the port) passes.
        let es_star = Label::from_pairs(Level::L1, &[(p, Level::Star)]);
        assert!(check_delivery(&es_star, &qr, &dr, &v, &pr));
        // Resetting the port label to {3} opens the port to everyone (§5.5).
        assert!(check_delivery(&es, &qr, &dr, &v, &Label::top()));
    }

    #[test]
    fn verification_label_restricts() {
        // §5.4: V temporarily lowers the receiver's effective receive label.
        let ug = h(5);
        let es = Label::default_send(); // sender does not speak for u
        let qr = Label::default_recv();
        let dr = Label::bottom();
        let pr = Label::top();
        let v = Label::from_pairs(Level::L3, &[(ug, Level::L0)]);
        // E_S(ug) = 1 > V(ug) = 0, so the send fails: the sender cannot
        // prove it speaks for u.
        assert!(!check_delivery(&es, &qr, &dr, &v, &pr));
        let es_speaks = Label::from_pairs(Level::L1, &[(ug, Level::L0)]);
        assert!(check_delivery(&es_speaks, &qr, &dr, &v, &pr));
    }

    #[test]
    fn grant_privilege_checks() {
        let p = h(9);
        let ps_with = Label::from_pairs(Level::L1, &[(p, Level::Star)]);
        let ps_without = Label::default_send();
        let ds = Label::from_pairs(Level::L3, &[(p, Level::Star)]);
        assert!(check_decont_send_privilege(&ds, &ps_with));
        assert!(!check_decont_send_privilege(&ds, &ps_without));
        // A privileged *default* needs an all-star sender.
        let ds_all = Label::new(Level::L0);
        assert!(!check_decont_send_privilege(&ds_all, &ps_with));
        assert!(check_decont_send_privilege(&ds_all, &Label::bottom()));
        // D_S = {3} is a no-op and needs no privilege.
        assert!(check_decont_send_privilege(&Label::top(), &ps_without));
    }

    #[test]
    fn decont_recv_privilege_checks() {
        let t = h(3);
        let ps_with = Label::from_pairs(Level::L1, &[(t, Level::Star)]);
        let ps_without = Label::default_send();
        let dr = Label::from_pairs(Level::Star, &[(t, Level::L3)]);
        assert!(check_decont_recv_privilege(&dr, &ps_with));
        assert!(!check_decont_recv_privilege(&dr, &ps_without));
        // D_R = {⋆} is a no-op and needs no privilege.
        assert!(check_decont_recv_privilege(&Label::bottom(), &ps_without));
        // A privileged default needs an all-star sender.
        assert!(!check_decont_recv_privilege(
            &Label::new(Level::L2),
            &ps_with
        ));
        assert!(check_decont_recv_privilege(
            &Label::new(Level::L2),
            &Label::bottom()
        ));
    }

    #[test]
    fn contamination_preserves_stars() {
        // §5.3: even if P receives a message from Q with Q_S(h) = 3, P_S(h)
        // remains ⋆.
        let t = h(8);
        let qs = Label::from_pairs(Level::L1, &[(t, Level::Star)]);
        let es = Label::from_pairs(Level::L1, &[(t, Level::L3)]);
        let out = apply_receive_contamination(&qs, &Label::top(), &es);
        assert_eq!(out.get(t), Level::Star);
    }

    #[test]
    fn contamination_raises_plain_receiver() {
        let t = h(8);
        let qs = Label::default_send();
        let es = Label::from_pairs(Level::L1, &[(t, Level::L3)]);
        let out = apply_receive_contamination(&qs, &Label::top(), &es);
        assert_eq!(out.get(t), Level::L3);
        assert_eq!(out.default_level(), Level::L1);
    }

    #[test]
    fn grant_lowers_receiver_send() {
        // Granting p ⋆ via D_S = {p ⋆, 3} (§5.5 capabilities).
        let p = h(4);
        let qs = Label::default_send();
        let ds = Label::from_pairs(Level::L3, &[(p, Level::Star)]);
        let out = apply_receive_contamination(&qs, &ds, &Label::bottom());
        assert_eq!(out.get(p), Level::Star);
        assert_eq!(out.default_level(), Level::L1);
    }

    #[test]
    fn grant_and_contaminate_together() {
        // The §5.5 idiom our web server uses: grant uG ⋆ and contaminate
        // with uT 3 in the same message. The granting sender necessarily
        // holds uG at ⋆ (Figure 4 requirement 2), so its effective send
        // label carries uG ⋆ — which is what lets the grant survive the
        // `(E_S ⊓ Q_S⋆)` contamination term.
        let ug = h(1);
        let ut = h(2);
        let qs = Label::default_send();
        let ds = Label::from_pairs(Level::L3, &[(ug, Level::Star)]);
        let es = Label::from_pairs(Level::L1, &[(ut, Level::L3), (ug, Level::Star)]);
        let out = apply_receive_contamination(&qs, &ds, &es);
        assert_eq!(out.get(ug), Level::Star);
        assert_eq!(out.get(ut), Level::L3);
        assert_eq!(out.default_level(), Level::L1);
    }

    #[test]
    fn effective_send_combines() {
        let t = h(2);
        let ps = Label::default_send();
        let cs = Label::from_pairs(Level::Star, &[(t, Level::L3)]);
        let es = effective_send(&ps, &cs);
        assert_eq!(es.get(t), Level::L3);
        assert_eq!(es.default_level(), Level::L1);
    }

    #[test]
    fn op_work_counts_entries() {
        let mut a = Label::default_send();
        let mut b = Label::default_recv();
        for i in 0..10 {
            a.set(h(i), Level::L3);
        }
        for i in 0..5 {
            b.set(h(i + 100), Level::L3);
        }
        assert_eq!(op_work(&[&a, &b]), 15);
    }
}
