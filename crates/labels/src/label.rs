//! The [`Label`] type: a function from handles to levels (§5.1, §5.6).

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::chunk::{entry_handle, entry_level, pack, Chunk, CHUNK_CAP};
use crate::fingerprint::label_fingerprint;
use crate::handle::Handle;
use crate::level::Level;

thread_local! {
    /// Per-thread count of [`Label::clone`] calls (monotonic).
    ///
    /// The kernel's delivery-cache fast path promises *zero* label clones
    /// on a cache hit; tests pin that promise by diffing this counter
    /// around deliveries. Thread-local so concurrently running tests
    /// (each kernel is single-threaded) cannot perturb each other's
    /// measurements.
    static CLONE_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Accounted size of the label header, in bytes.
///
/// Together with [`CHUNK_HEADER_BYTES`] and [`CHUNK_MIN_CAP`] this reproduces
/// the paper's §5.6 claim that "the smallest label is about 300 bytes long,
/// including space for one chunk": 44 + 16 + 30·8 = 300.
pub const LABEL_HEADER_BYTES: usize = 44;

/// Accounted per-chunk header size, in bytes.
pub const CHUNK_HEADER_BYTES: usize = 16;

/// Accounted minimum chunk capacity, in entries.
pub const CHUNK_MIN_CAP: usize = 30;

/// An Asbestos label: a total function from handles to [`Level`]s.
///
/// A label stores a *default level* that applies to every handle not
/// explicitly mentioned, plus a sorted set of explicit `(handle, level)`
/// entries whose levels differ from the default. The paper writes labels in
/// set notation such as `{h₁ 0, h₂ 1, 2}` — two explicit entries and a
/// default of `2` (the [`std::fmt::Display`] impl uses the same notation).
///
/// # Representation (§5.6)
///
/// Entries are packed 64-bit words (handle in the upper 61 bits, level in the
/// low 3) stored in refcounted chunks of up to 64 entries. Labels share
/// chunks structurally: cloning a label is cheap, and mutation copies only
/// the affected chunk (copy-on-write via [`Arc::make_mut`]). Every chunk and
/// every label caches its minimum and maximum level, enabling the paper's
/// fast path: if `L₂`'s maximum level is no larger than `L₁`'s minimum, then
/// `L₁ ⊔ L₂ = L₁` by definition.
///
/// # Invariants
///
/// * Entries are strictly ascending by handle across all chunks.
/// * No entry's level equals the default (such entries are redundant and are
///   normalized away).
/// * Chunks are non-empty and hold at most [`CHUNK_CAP`] entries.
pub struct Label {
    chunks: Vec<Arc<Chunk>>,
    default: Level,
    /// Total explicit entries across chunks.
    len: usize,
    /// Minimum level over entries and default.
    min_level: Level,
    /// Maximum level over entries and default.
    max_level: Level,
    /// Cached structural fingerprint (see [`crate::fingerprint`]):
    /// a 64-bit identity of the logical contents, independent of chunk
    /// boundaries, recombined from per-chunk digests on every mutation.
    fp: u64,
}

impl Clone for Label {
    fn clone(&self) -> Label {
        CLONE_COUNT.with(|c| c.set(c.get() + 1));
        Label {
            chunks: self.chunks.clone(),
            default: self.default,
            len: self.len,
            min_level: self.min_level,
            max_level: self.max_level,
            fp: self.fp,
        }
    }
}

impl Label {
    /// Creates a label mapping every handle to `default`.
    pub fn new(default: Level) -> Label {
        Label {
            chunks: Vec::new(),
            default,
            len: 0,
            min_level: default,
            max_level: default,
            fp: label_fingerprint(default, 0, std::iter::empty()),
        }
    }

    /// The empty send label `{1}`: every handle at the default send level.
    pub fn default_send() -> Label {
        Label::new(Level::DEFAULT_SEND)
    }

    /// The empty receive label `{2}`: every handle at the default receive level.
    pub fn default_recv() -> Label {
        Label::new(Level::DEFAULT_RECV)
    }

    /// The bottom label `{⋆}`: adds no contamination; the default for the
    /// optional contamination label `C_S` and decontaminate labels (§5.2).
    pub fn bottom() -> Label {
        Label::new(Level::Star)
    }

    /// The top label `{3}`: imposes no restriction; the default for the
    /// verification label `V` and for `D_S` (§5.4).
    pub fn top() -> Label {
        Label::new(Level::L3)
    }

    /// Builds a label from `(handle, level)` pairs on top of `default`.
    ///
    /// Pairs may be given in any order; duplicate handles keep the last pair.
    /// Pairs whose level equals the default are dropped (they are redundant).
    pub fn from_pairs(default: Level, pairs: &[(Handle, Level)]) -> Label {
        let mut sorted: Vec<(Handle, Level)> = pairs.to_vec();
        sorted.sort_by_key(|&(h, _)| h);
        let mut builder = LabelBuilder::new(default);
        let mut i = 0;
        while i < sorted.len() {
            let (h, mut lv) = sorted[i];
            // Last duplicate wins.
            while i + 1 < sorted.len() && sorted[i + 1].0 == h {
                i += 1;
                lv = sorted[i].1;
            }
            builder.push(h.raw(), lv);
            i += 1;
        }
        builder.finish()
    }

    /// The default level, applying to all handles without explicit entries.
    #[inline]
    pub fn default_level(&self) -> Level {
        self.default
    }

    /// The level this label assigns to `handle`.
    pub fn get(&self, handle: Handle) -> Level {
        let raw = handle.raw();
        match self.chunk_index_for(raw) {
            Some(ci) => self.chunks[ci].find(raw).unwrap_or(self.default),
            None => self.default,
        }
    }

    /// Sets the level for `handle`, normalizing default-level entries away.
    pub fn set(&mut self, handle: Handle, level: Level) {
        let raw = handle.raw();
        if level == self.default {
            self.remove(raw);
        } else {
            self.insert(raw, level);
        }
    }

    /// Number of explicit entries.
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.len
    }

    /// Whether the label has no explicit entries.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.len == 0
    }

    /// Minimum level over all handles (entries and default).
    #[inline]
    pub fn min_level(&self) -> Level {
        self.min_level
    }

    /// Maximum level over all handles (entries and default).
    #[inline]
    pub fn max_level(&self) -> Level {
        self.max_level
    }

    /// Whether every handle maps to `⋆` (needed for the Figure 4 privilege
    /// checks when a decontamination label has a privileged *default*).
    #[inline]
    pub fn is_all_star(&self) -> bool {
        self.max_level == Level::Star
    }

    /// The label's 64-bit structural fingerprint: a probabilistically
    /// unique identity of the logical contents (default level plus entry
    /// sequence), independent of chunk boundaries. O(1) — the value is
    /// maintained incrementally across mutations from per-chunk digests.
    ///
    /// Equal labels always have equal fingerprints; distinct labels
    /// collide with probability ≈ 2⁻⁶⁴. The kernel's delivery cache keys
    /// on fingerprints (see `asbestos-kernel`'s `delivery` module).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Total [`Label::clone`] calls on the current thread. A test
    /// observability hook: the kernel's cache-hit delivery path must not
    /// clone labels, and tests verify that by diffing this counter.
    pub fn clone_count() -> u64 {
        CLONE_COUNT.with(Cell::get)
    }

    /// Iterates explicit `(handle, level)` entries in ascending handle order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, Level)> + '_ {
        self.chunks.iter().flat_map(|c| {
            c.entries().iter().map(|&e| {
                (
                    Handle::new(entry_handle(e)).expect("entries hold 61-bit handles"),
                    entry_level(e),
                )
            })
        })
    }

    /// Accounted heap size of this label in bytes (see [`LABEL_HEADER_BYTES`]).
    ///
    /// Shared chunks are charged to every label that references them, which
    /// over-approximates exactly like refcounted kernel memory does when each
    /// subsystem is billed for what it keeps alive.
    pub fn heap_bytes(&self) -> usize {
        let chunk_bytes: usize = if self.chunks.is_empty() {
            // The paper's smallest label includes space for one chunk.
            CHUNK_HEADER_BYTES + CHUNK_MIN_CAP * 8
        } else {
            self.chunks
                .iter()
                .map(|c| CHUNK_HEADER_BYTES + c.len().max(CHUNK_MIN_CAP) * 8)
                .sum()
        };
        LABEL_HEADER_BYTES + chunk_bytes
    }

    // ------------------------------------------------------------------
    // Lattice operations (§5.1).
    // ------------------------------------------------------------------

    /// The partial order `self ⊑ other`: true iff `self(h) ≤ other(h)` for
    /// all handles `h`.
    pub fn leq(&self, other: &Label) -> bool {
        // Fast path from §5.6 via the cached bounds.
        if self.max_level <= other.min_level {
            return true;
        }
        if self.default > other.default {
            // Infinitely many handles carry the defaults.
            return false;
        }
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        loop {
            match (a.peek().copied(), b.peek().copied()) {
                (None, None) => return true,
                (Some((_, la)), None) => {
                    if la > other.default {
                        return false;
                    }
                    a.next();
                }
                (None, Some((_, lb))) => {
                    if self.default > lb {
                        return false;
                    }
                    b.next();
                }
                (Some((ha, la)), Some((hb, lb))) => match ha.cmp(&hb) {
                    Ordering::Less => {
                        if la > other.default {
                            return false;
                        }
                        a.next();
                    }
                    Ordering::Greater => {
                        if self.default > lb {
                            return false;
                        }
                        b.next();
                    }
                    Ordering::Equal => {
                        if la > lb {
                            return false;
                        }
                        a.next();
                        b.next();
                    }
                },
            }
        }
    }

    /// The least upper bound `self ⊔ other`:
    /// `(L₁ ⊔ L₂)(h) = max(L₁(h), L₂(h))`.
    pub fn lub(&self, other: &Label) -> Label {
        // §5.6 fast path: if L₂'s maximum level is no larger than L₁'s
        // minimum level, then L₁ ⊔ L₂ = L₁ by definition.
        if other.max_level <= self.min_level {
            return self.clone();
        }
        if self.max_level <= other.min_level {
            return other.clone();
        }
        self.combine(other, Level::max)
    }

    /// The greatest lower bound `self ⊓ other`:
    /// `(L₁ ⊓ L₂)(h) = min(L₁(h), L₂(h))`.
    pub fn glb(&self, other: &Label) -> Label {
        if self.max_level <= other.min_level {
            return self.clone();
        }
        if other.max_level <= self.min_level {
            return other.clone();
        }
        self.combine(other, Level::min)
    }

    /// The stars-only label `L⋆`: `⋆` where this label is `⋆`, `3` elsewhere
    /// (§5.3). Used to preserve a receiver's declassification privileges when
    /// applying contamination.
    pub fn stars_only(&self) -> Label {
        let default = self.default.star_only();
        let mut builder = LabelBuilder::new(default);
        for (h, lv) in self.iter() {
            builder.push(h.raw(), lv.star_only());
        }
        builder.finish()
    }

    /// Merge-combines two labels entry-by-entry with `op`, dropping entries
    /// that land on the result default.
    fn combine(&self, other: &Label, op: fn(Level, Level) -> Level) -> Label {
        let default = op(self.default, other.default);
        let mut builder = LabelBuilder::new(default);
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        loop {
            match (a.peek().copied(), b.peek().copied()) {
                (None, None) => break,
                (Some((ha, la)), None) => {
                    builder.push(ha.raw(), op(la, other.default));
                    a.next();
                }
                (None, Some((hb, lb))) => {
                    builder.push(hb.raw(), op(self.default, lb));
                    b.next();
                }
                (Some((ha, la)), Some((hb, lb))) => match ha.cmp(&hb) {
                    Ordering::Less => {
                        builder.push(ha.raw(), op(la, other.default));
                        a.next();
                    }
                    Ordering::Greater => {
                        builder.push(hb.raw(), op(self.default, lb));
                        b.next();
                    }
                    Ordering::Equal => {
                        builder.push(ha.raw(), op(la, lb));
                        a.next();
                        b.next();
                    }
                },
            }
        }
        builder.finish()
    }

    // ------------------------------------------------------------------
    // Internal chunk plumbing.
    // ------------------------------------------------------------------

    /// Index of the chunk whose handle range could contain `raw`, if any.
    fn chunk_index_for(&self, raw: u64) -> Option<usize> {
        if self.chunks.is_empty() {
            return None;
        }
        // First chunk whose last handle is >= raw.
        let idx = self.chunks.partition_point(|c| c.last_handle() < raw);
        if idx == self.chunks.len() {
            None
        } else {
            Some(idx)
        }
    }

    fn insert(&mut self, raw: u64, level: Level) {
        debug_assert_ne!(level, self.default);
        let ci = match self.chunk_index_for(raw) {
            Some(ci) => ci,
            None if self.chunks.is_empty() => {
                self.chunks
                    .push(Arc::new(Chunk::from_entries(vec![pack(raw, level)])));
                self.after_mutation();
                return;
            }
            // Larger than everything: append into the last chunk.
            None => self.chunks.len() - 1,
        };
        let chunk = Arc::make_mut(&mut self.chunks[ci]);
        let entries = chunk.entries_mut();
        match entries.binary_search_by_key(&raw, |&e| entry_handle(e)) {
            Ok(i) => entries[i] = pack(raw, level),
            Err(i) => entries.insert(i, pack(raw, level)),
        }
        chunk.recompute_bounds();
        if chunk.len() > CHUNK_CAP {
            let right = chunk.entries_mut().split_off(CHUNK_CAP / 2);
            chunk.recompute_bounds();
            self.chunks
                .insert(ci + 1, Arc::new(Chunk::from_entries(right)));
        }
        self.after_mutation();
    }

    fn remove(&mut self, raw: u64) {
        let Some(ci) = self.chunk_index_for(raw) else {
            return;
        };
        // Only copy the chunk if the entry is actually present.
        if self.chunks[ci].find(raw).is_none() {
            return;
        }
        let chunk = Arc::make_mut(&mut self.chunks[ci]);
        let entries = chunk.entries_mut();
        if let Ok(i) = entries.binary_search_by_key(&raw, |&e| entry_handle(e)) {
            entries.remove(i);
        }
        if chunk.is_empty() {
            self.chunks.remove(ci);
        } else {
            chunk.recompute_bounds();
        }
        self.after_mutation();
    }

    /// Re-establishes the cached length, level bounds, and fingerprint
    /// from chunk caches. O(number of chunks), not entries.
    fn after_mutation(&mut self) {
        self.len = self.chunks.iter().map(|c| c.len()).sum();
        let mut min = self.default;
        let mut max = self.default;
        for c in &self.chunks {
            min = min.min(c.min_level());
            max = max.max(c.max_level());
        }
        self.min_level = min;
        self.max_level = max;
        self.fp = label_fingerprint(
            self.default,
            self.len,
            self.chunks.iter().map(|c| c.digest()),
        );
    }

    /// Validates all representation invariants; used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut prev: Option<u64> = None;
        let mut count = 0;
        let mut min = self.default;
        let mut max = self.default;
        for c in &self.chunks {
            assert!(!c.is_empty(), "empty chunk");
            assert!(c.len() <= CHUNK_CAP, "oversized chunk");
            for (h, lv) in c.iter() {
                assert_ne!(lv, self.default, "default-level entry not normalized");
                if let Some(p) = prev {
                    assert!(p < h.raw(), "entries out of order");
                }
                prev = Some(h.raw());
                count += 1;
                min = min.min(lv);
                max = max.max(lv);
            }
        }
        assert_eq!(count, self.len, "length cache stale");
        assert_eq!(min, self.min_level, "min cache stale");
        assert_eq!(max, self.max_level, "max cache stale");
        let rebuilt = Label::from_pairs(self.default, &self.iter().collect::<Vec<_>>());
        assert_eq!(rebuilt.fp, self.fp, "fingerprint cache stale");
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Label) -> bool {
        // The fingerprint is a function of logical contents only, so a
        // mismatch proves inequality without walking entries. (A match
        // does not prove equality — fall through to the logical compare.)
        if self.fp != other.fp {
            return false;
        }
        // Chunk boundaries may differ between equal labels, so compare
        // logical contents.
        self.default == other.default && self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for Label {}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Label {
    /// Formats in the paper's set notation, e.g. `{h3f 3, 1}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (h, lv) in self.iter() {
            write!(f, "{h} {lv}, ")?;
        }
        write!(f, "{}}}", self.default)
    }
}

/// Streams ascending `(handle, level)` pairs into chunked label storage.
pub(crate) struct LabelBuilder {
    default: Level,
    chunks: Vec<Arc<Chunk>>,
    current: Vec<u64>,
}

impl LabelBuilder {
    pub(crate) fn new(default: Level) -> LabelBuilder {
        LabelBuilder {
            default,
            chunks: Vec::new(),
            current: Vec::new(),
        }
    }

    /// Appends an entry; handles must arrive in strictly ascending order.
    /// Entries at the default level are skipped.
    pub(crate) fn push(&mut self, handle_raw: u64, level: Level) {
        if level == self.default {
            return;
        }
        debug_assert!(self
            .current
            .last()
            .is_none_or(|&e| entry_handle(e) < handle_raw));
        self.current.push(pack(handle_raw, level));
        if self.current.len() == CHUNK_CAP {
            let entries = std::mem::take(&mut self.current);
            self.chunks.push(Arc::new(Chunk::from_entries(entries)));
        }
    }

    pub(crate) fn finish(mut self) -> Label {
        if !self.current.is_empty() {
            self.chunks
                .push(Arc::new(Chunk::from_entries(std::mem::take(
                    &mut self.current,
                ))));
        }
        let mut label = Label {
            chunks: self.chunks,
            default: self.default,
            len: 0,
            min_level: self.default,
            max_level: self.default,
            fp: 0,
        };
        label.after_mutation();
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(raw: u64) -> Handle {
        Handle::from_raw(raw)
    }

    #[test]
    fn new_label_is_uniform() {
        let l = Label::new(Level::L1);
        assert!(l.is_uniform());
        assert_eq!(l.get(h(7)), Level::L1);
        assert_eq!(l.entry_count(), 0);
        l.check_invariants();
    }

    #[test]
    fn set_get_and_normalize() {
        let mut l = Label::default_send();
        l.set(h(5), Level::L3);
        assert_eq!(l.get(h(5)), Level::L3);
        assert_eq!(l.get(h(6)), Level::L1);
        assert_eq!(l.entry_count(), 1);
        // Setting back to the default removes the entry.
        l.set(h(5), Level::L1);
        assert!(l.is_uniform());
        l.check_invariants();
    }

    #[test]
    fn from_pairs_sorts_dedups_normalizes() {
        let l = Label::from_pairs(
            Level::L1,
            &[
                (h(9), Level::L3),
                (h(2), Level::Star),
                (h(9), Level::L0), // duplicate: last wins
                (h(4), Level::L1), // default: dropped
            ],
        );
        assert_eq!(l.entry_count(), 2);
        assert_eq!(l.get(h(9)), Level::L0);
        assert_eq!(l.get(h(2)), Level::Star);
        assert_eq!(l.get(h(4)), Level::L1);
        l.check_invariants();
    }

    #[test]
    fn paper_figure2_examples() {
        // U_S = {uT 3, 1}, UT_R = {uT 3, 2}; V_S = {vT 3, 1}.
        let ut = h(100);
        let vt = h(200);
        let us = Label::from_pairs(Level::L1, &[(ut, Level::L3)]);
        let vs = Label::from_pairs(Level::L1, &[(vt, Level::L3)]);
        let utr = Label::from_pairs(Level::L2, &[(ut, Level::L3)]);
        // U_S ⊑ UT_R (u's shell can talk to u's terminal).
        assert!(us.leq(&utr));
        // V_S ⋢ UT_R: {vT 3,1} ⋢ {uT 3,2} because vT: 3 > 2.
        assert!(!vs.leq(&utr));
    }

    #[test]
    fn leq_default_comparison() {
        let send = Label::default_send(); // {1}
        let recv = Label::default_recv(); // {2}
        assert!(send.leq(&recv));
        assert!(!recv.leq(&send));
        assert!(send.leq(&send));
    }

    #[test]
    fn lub_glb_basic() {
        let ut = h(1);
        let vt = h(2);
        let a = Label::from_pairs(Level::L1, &[(ut, Level::L3)]);
        let b = Label::from_pairs(Level::L1, &[(vt, Level::L3)]);
        let join = a.lub(&b);
        assert_eq!(join.get(ut), Level::L3);
        assert_eq!(join.get(vt), Level::L3);
        assert_eq!(join.default_level(), Level::L1);
        let meet = a.glb(&b);
        assert_eq!(meet.get(ut), Level::L1);
        assert_eq!(meet.get(vt), Level::L1);
        assert!(meet.is_uniform());
        join.check_invariants();
        meet.check_invariants();
    }

    #[test]
    fn lub_fast_path_shares_chunks() {
        let mut big = Label::default_send();
        for i in 0..200 {
            big.set(h(i), Level::L3);
        }
        let bottom = Label::bottom();
        let out = big.lub(&bottom);
        assert_eq!(out, big);
    }

    #[test]
    fn stars_only() {
        let a = Label::from_pairs(Level::L1, &[(h(1), Level::Star), (h(2), Level::L3)]);
        let s = a.stars_only();
        assert_eq!(s.get(h(1)), Level::Star);
        assert_eq!(s.get(h(2)), Level::L3);
        assert_eq!(s.get(h(3)), Level::L3);
        assert_eq!(s.default_level(), Level::L3);
        // All-star labels map to all-star.
        assert!(Label::bottom().stars_only().is_all_star());
    }

    #[test]
    fn chunk_splitting_and_many_entries() {
        let mut l = Label::default_send();
        for i in 0..1000u64 {
            l.set(h(i * 3), Level::L3);
        }
        assert_eq!(l.entry_count(), 1000);
        l.check_invariants();
        for i in 0..1000u64 {
            assert_eq!(l.get(h(i * 3)), Level::L3);
        }
        assert_eq!(l.get(h(1)), Level::L1);
        // Remove every other entry.
        for i in (0..1000u64).step_by(2) {
            l.set(h(i * 3), Level::L1);
        }
        assert_eq!(l.entry_count(), 500);
        l.check_invariants();
    }

    #[test]
    fn insertion_after_last_chunk() {
        let mut l = Label::default_send();
        for i in 0..CHUNK_CAP as u64 {
            l.set(h(i), Level::L3);
        }
        // This handle is beyond every existing chunk's range.
        l.set(h(10_000), Level::L0);
        assert_eq!(l.get(h(10_000)), Level::L0);
        l.check_invariants();
    }

    #[test]
    fn equality_ignores_chunk_boundaries() {
        // Build the same logical label via different operation orders.
        let mut a = Label::default_send();
        for i in 0..150u64 {
            a.set(h(i), Level::L3);
        }
        let pairs: Vec<(Handle, Level)> = (0..150u64).map(|i| (h(i), Level::L3)).collect();
        let b = Label::from_pairs(Level::L1, &pairs);
        assert_eq!(a, b);
    }

    #[test]
    fn clone_is_shallow_and_cow() {
        let mut a = Label::default_send();
        for i in 0..100u64 {
            a.set(h(i), Level::L3);
        }
        let b = a.clone();
        a.set(h(5), Level::L0);
        assert_eq!(a.get(h(5)), Level::L0);
        assert_eq!(b.get(h(5)), Level::L3, "clone must be unaffected");
    }

    #[test]
    fn heap_bytes_smallest_is_300() {
        // §5.6: "The smallest label is about 300 bytes long, including space
        // for one chunk."
        assert_eq!(Label::default_send().heap_bytes(), 300);
        let mut one = Label::default_send();
        one.set(h(1), Level::L3);
        assert_eq!(one.heap_bytes(), 300);
    }

    #[test]
    fn heap_bytes_grows_with_entries() {
        let mut l = Label::default_send();
        for i in 0..1000u64 {
            l.set(h(i), Level::L3);
        }
        let bytes = l.heap_bytes();
        // 1000 entries at 8 bytes each plus headers.
        assert!(bytes >= 8000, "expected >= 8000 bytes, got {bytes}");
        assert!(bytes < 12_000, "expected < 12000 bytes, got {bytes}");
    }

    #[test]
    fn display_notation() {
        let l = Label::from_pairs(Level::L2, &[(h(0x3f), Level::L3)]);
        assert_eq!(l.to_string(), "{h3f 3, 2}");
    }

    #[test]
    fn min_max_track_default() {
        let mut l = Label::default_recv(); // {2}
        assert_eq!(l.min_level(), Level::L2);
        assert_eq!(l.max_level(), Level::L2);
        l.set(h(1), Level::Star);
        assert_eq!(l.min_level(), Level::Star);
        assert_eq!(l.max_level(), Level::L2);
        l.set(h(2), Level::L3);
        assert_eq!(l.max_level(), Level::L3);
        l.set(h(1), Level::L2); // remove
        l.set(h(2), Level::L2); // remove
        assert_eq!(l.min_level(), Level::L2);
        assert_eq!(l.max_level(), Level::L2);
    }
}
