//! # asbestos-labels
//!
//! The Asbestos label algebra from *Labels and Event Processes in the
//! Asbestos Operating System* (Efstathopoulos et al., SOSP 2005), §5.
//!
//! Labels are total functions from 61-bit [`Handle`]s to [`Level`]s drawn
//! from the ordered set `[⋆, 0, 1, 2, 3]`. Each process carries a *send
//! label* (its current contamination) and a *receive label* (the maximum
//! contamination it accepts); message delivery requires
//! `E_S ⊑ (Q_R ⊔ D_R) ⊓ V ⊓ p_R` (paper Figure 4), evaluated by
//! [`ops::check_delivery`].
//!
//! The crate provides:
//!
//! * [`Level`] and [`Handle`] — the primitive vocabulary;
//! * [`Label`] — the chunked, copy-on-write representation of §5.6, with
//!   `⊑`/`⊔`/`⊓`/`L⋆` and min/max fast paths;
//! * [`ops`] — fused, allocation-light forms of every Figure 4 check and
//!   effect, used by the kernel's delivery path;
//! * [`HandleAllocator`] — the encrypted-counter handle generator of §5.1;
//! * [`naive::NaiveLabel`] — a `BTreeMap` oracle for property tests and the
//!   representation ablation.
//!
//! ## Quick example
//!
//! ```
//! use asbestos_labels::{Handle, Label, Level};
//!
//! // User u's taint compartment.
//! let u_taint = Handle::from_raw(0x1001);
//!
//! // A process that has seen u's private data: send label {uT 3, 1}.
//! let tainted = Label::from_pairs(Level::L1, &[(u_taint, Level::L3)]);
//!
//! // A default process receive label {2} refuses that contamination...
//! assert!(!tainted.leq(&Label::default_recv()));
//!
//! // ...but u's terminal, with receive label {uT 3, 2}, accepts it.
//! let terminal = Label::from_pairs(Level::L2, &[(u_taint, Level::L3)]);
//! assert!(tainted.leq(&terminal));
//! ```

pub mod chunk;
pub mod cipher;
pub mod fingerprint;
pub mod handle;
pub mod label;
pub mod level;
pub mod naive;
pub mod ops;

pub use cipher::{HandleAllocator, HandleCipher};
pub use handle::{Handle, HANDLE_BITS, HANDLE_SPACE};
pub use label::Label;
pub use level::Level;
