//! Handles: 61-bit compartment and port names (§5.1).

use std::fmt;

/// The number of significant bits in a handle value.
pub const HANDLE_BITS: u32 = 61;

/// The number of distinct handle values (`2^61`).
pub const HANDLE_SPACE: u64 = 1 << HANDLE_BITS;

/// A handle: the name of a compartment and/or a communication port.
///
/// Handles are 61-bit numbers (§5.1). Handle values are unique since boot
/// time, so unlike a file descriptor a given handle value refers to the same
/// handle in all contexts. Asbestos uses the same namespace for ports and
/// compartments, which is what lets labels emulate capabilities (§5.5).
///
/// Knowing a handle's value confers no privilege by itself; privilege is
/// recorded in process labels.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle(u64);

impl Handle {
    /// Creates a handle from a raw 61-bit value.
    ///
    /// Returns `None` if `raw` does not fit in 61 bits.
    #[inline]
    pub const fn new(raw: u64) -> Option<Handle> {
        if raw < HANDLE_SPACE {
            Some(Handle(raw))
        } else {
            None
        }
    }

    /// Creates a handle from a raw value, panicking if it exceeds 61 bits.
    ///
    /// # Panics
    ///
    /// Panics if `raw >= 2^61`. Intended for tests and constants; kernel code
    /// uses [`Handle::new`] or the allocator.
    #[inline]
    pub const fn from_raw(raw: u64) -> Handle {
        assert!(raw < HANDLE_SPACE, "handle value exceeds 61 bits");
        Handle(raw)
    }

    /// The raw 61-bit value of this handle.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{:x}", self.0)
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bounds() {
        assert!(Handle::new(0).is_some());
        assert!(Handle::new(HANDLE_SPACE - 1).is_some());
        assert!(Handle::new(HANDLE_SPACE).is_none());
        assert!(Handle::new(u64::MAX).is_none());
    }

    #[test]
    fn raw_roundtrip() {
        let h = Handle::from_raw(0x1234_5678);
        assert_eq!(h.raw(), 0x1234_5678);
    }

    #[test]
    #[should_panic(expected = "exceeds 61 bits")]
    fn from_raw_panics_out_of_range() {
        let _ = Handle::from_raw(HANDLE_SPACE);
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(Handle::from_raw(1) < Handle::from_raw(2));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Handle::from_raw(255).to_string(), "hff");
    }
}
