//! Structural label fingerprints: cheap 64-bit identities for labels.
//!
//! The kernel's Figure 4 delivery rule is evaluated for every message, and
//! OKWS-style traffic presents the *same* label tuples millions of times —
//! §5.6's chunk sharing exists precisely because labels are highly
//! repetitive. To memoize delivery decisions the kernel needs a cheap,
//! stable identity for a label's logical contents.
//!
//! The fingerprint is a polynomial rolling hash over the packed entry
//! sequence, seeded with the default level and finalized with the entry
//! count. Polynomial hashing is linear in the seed —
//! `fold(s, chunk) = s·Rⁿ + fold(0, chunk)` for an `n`-entry chunk — so
//! each [`crate::chunk::Chunk`] caches its own partial hash and `Rⁿ`, and a
//! label combines its chunks' caches in O(number of chunks). Crucially the
//! result depends only on the *logical* entry sequence, never on where the
//! chunk boundaries fall, so two equal labels built by different operation
//! histories always agree.
//!
//! Fingerprint equality is probabilistic identity: two distinct labels
//! collide with probability ≈ 2⁻⁶⁴ per pair. The delivery cache keys on
//! fingerprints of full label tuples (7 independent fingerprints), so a
//! wrong cached decision needs a simultaneous collision across the tuple —
//! negligible for a simulator, and the equivalence property tests in
//! `crates/kernel/tests/delivery_cache.rs` pin the semantics.

use crate::level::Level;

/// The polynomial base. Odd (invertible mod 2⁶⁴) and high-entropy.
pub const BASE: u64 = 0x2545_F491_4F6C_DD1D;

/// splitmix64's finalizer: a fast 64-bit bijective mixer.
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A partial polynomial hash over a run of packed entries: the pair
/// `(fold(0, entries), BASE^len)` that lets runs be concatenated in O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkDigest {
    /// `fold(0, entries)`: the hash of the run from a zero seed.
    pub hash: u64,
    /// `BASE^len`: what a preceding seed must be multiplied by.
    pub base_pow: u64,
}

impl ChunkDigest {
    /// The digest of an empty run (identity for [`ChunkDigest::extend`]).
    pub const EMPTY: ChunkDigest = ChunkDigest {
        hash: 0,
        base_pow: 1,
    };

    /// Digests a run of packed entries in one pass.
    pub fn of_entries(entries: &[u64]) -> ChunkDigest {
        let mut digest = ChunkDigest::EMPTY;
        for &e in entries {
            digest.push(e);
        }
        digest
    }

    /// Appends one packed entry.
    #[inline]
    pub fn push(&mut self, packed: u64) {
        self.hash = self.hash.wrapping_mul(BASE).wrapping_add(mix64(packed));
        self.base_pow = self.base_pow.wrapping_mul(BASE);
    }

    /// Appends a whole digested run (the O(1) concatenation).
    #[inline]
    pub fn extend(&mut self, other: &ChunkDigest) {
        self.hash = self
            .hash
            .wrapping_mul(other.base_pow)
            .wrapping_add(other.hash);
        self.base_pow = self.base_pow.wrapping_mul(other.base_pow);
    }
}

/// Combines a label's default level, entry count, and chunk digests into
/// the label's fingerprint. O(number of chunks).
pub fn label_fingerprint<'a>(
    default: Level,
    len: usize,
    chunks: impl Iterator<Item = &'a ChunkDigest>,
) -> u64 {
    let mut acc = ChunkDigest {
        // Seed with the default level so `{1}` and `{2}` differ.
        hash: mix64(0x5EED ^ default.to_bits()),
        base_pow: 1,
    };
    for digest in chunks {
        acc.extend(digest);
    }
    mix64(acc.hash ^ mix64(len as u64 ^ 0x1E01))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::pack;

    #[test]
    fn concatenation_matches_direct_fold() {
        let entries: Vec<u64> = (0..100u64).map(|i| pack(i * 3, Level::L3)).collect();
        let direct = ChunkDigest::of_entries(&entries);
        // Any split point must produce the same combined digest.
        for split in [0, 1, 17, 50, 99, 100] {
            let mut left = ChunkDigest::of_entries(&entries[..split]);
            let right = ChunkDigest::of_entries(&entries[split..]);
            left.extend(&right);
            assert_eq!(left, direct, "split at {split}");
        }
    }

    #[test]
    fn fingerprint_ignores_chunk_boundaries() {
        let entries: Vec<u64> = (0..150u64).map(|i| pack(i, Level::Star)).collect();
        let one = ChunkDigest::of_entries(&entries);
        let a = ChunkDigest::of_entries(&entries[..64]);
        let b = ChunkDigest::of_entries(&entries[64..128]);
        let c = ChunkDigest::of_entries(&entries[128..]);
        let fp_one = label_fingerprint(Level::L1, entries.len(), [&one].into_iter());
        let fp_split = label_fingerprint(Level::L1, entries.len(), [&a, &b, &c].into_iter());
        assert_eq!(fp_one, fp_split);
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let a = ChunkDigest::of_entries(&[pack(1, Level::L3)]);
        let b = ChunkDigest::of_entries(&[pack(2, Level::L3)]);
        let c = ChunkDigest::of_entries(&[pack(1, Level::L2)]);
        let fa = label_fingerprint(Level::L1, 1, [&a].into_iter());
        let fb = label_fingerprint(Level::L1, 1, [&b].into_iter());
        let fc = label_fingerprint(Level::L1, 1, [&c].into_iter());
        let fd = label_fingerprint(Level::L2, 1, [&a].into_iter());
        assert_ne!(fa, fb, "handle must matter");
        assert_ne!(fa, fc, "level must matter");
        assert_ne!(fa, fd, "default must matter");
    }

    #[test]
    fn empty_labels_differ_by_default_only() {
        let fp = |d| label_fingerprint(d, 0, std::iter::empty());
        let all: Vec<u64> = Level::ALL.iter().map(|&d| fp(d)).collect();
        for i in 0..all.len() {
            for j in 0..i {
                assert_ne!(all[i], all[j]);
            }
        }
        assert_eq!(fp(Level::L1), fp(Level::L1));
    }

    #[test]
    fn order_sensitivity() {
        // Polynomial hashing is order-sensitive (entries are sorted by
        // handle in labels, so equal entry *sets* always agree anyway).
        let ab = ChunkDigest::of_entries(&[pack(1, Level::L3), pack(2, Level::L3)]);
        let ba = ChunkDigest::of_entries(&[pack(2, Level::L3), pack(1, Level::L3)]);
        assert_ne!(
            label_fingerprint(Level::L1, 2, [&ab].into_iter()),
            label_fingerprint(Level::L1, 2, [&ba].into_iter())
        );
    }
}
