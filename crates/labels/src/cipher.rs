//! A 61-bit block cipher for handle generation.
//!
//! §5.1: "The kernel generates handles by encrypting a counter with a 61-bit
//! block cipher (derived from Blowfish), resulting in an unpredictable but
//! non-repeating sequence of values; the unpredictability closes certain
//! covert channels by concealing the number of handles that have been created
//! at any given time."
//!
//! We reproduce the construction with a Blowfish-style Feistel network:
//! sixteen rounds over a 62-bit block (two 31-bit halves) whose round
//! function combines four key-scheduled 256-entry S-boxes exactly like
//! Blowfish's `F`, restricted to the 61-bit handle domain by cycle walking.
//! Cycle walking re-encrypts any output that falls outside `[0, 2^61)`;
//! because the 62-bit Feistel is a permutation, the restriction is a
//! permutation of the 61-bit domain, so the generated handle sequence never
//! repeats.

use crate::handle::{Handle, HANDLE_SPACE};

/// Number of Feistel rounds. Blowfish uses 16.
const ROUNDS: usize = 16;

/// Bits per Feistel half; two halves form the 62-bit walking domain.
const HALF_BITS: u32 = 31;

/// Mask selecting one 31-bit half.
const HALF_MASK: u64 = (1 << HALF_BITS) - 1;

/// SplitMix64 step, used only for key scheduling (deterministic, seedable).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A Blowfish-style cipher on the 61-bit handle domain.
///
/// The cipher is deterministic for a given seed, which keeps the kernel
/// simulator reproducible while still concealing the underlying counter from
/// user code (the covert-channel concern of §8).
#[derive(Clone)]
pub struct HandleCipher {
    /// Four key-scheduled S-boxes, as in Blowfish.
    sbox: [[u32; 256]; 4],
    /// Per-round subkeys (Blowfish's P-array, extended to 16 rounds).
    subkeys: [u32; ROUNDS],
}

impl HandleCipher {
    /// Builds a cipher with S-boxes and subkeys derived from `seed`.
    pub fn new(seed: u64) -> HandleCipher {
        let mut state = seed ^ 0xa5b3_5705_87f6_c1e3;
        let mut sbox = [[0u32; 256]; 4];
        for s in sbox.iter_mut() {
            for slot in s.iter_mut() {
                *slot = splitmix64(&mut state) as u32;
            }
        }
        let mut subkeys = [0u32; ROUNDS];
        for k in subkeys.iter_mut() {
            *k = splitmix64(&mut state) as u32;
        }
        HandleCipher { sbox, subkeys }
    }

    /// Blowfish's round function `F`, truncated to 31 bits.
    ///
    /// `F(x) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d]` where `a..d` are the bytes
    /// of the 32-bit input.
    #[inline]
    fn f(&self, x: u32) -> u64 {
        let a = (x >> 24) as usize;
        let b = (x >> 16 & 0xff) as usize;
        let c = (x >> 8 & 0xff) as usize;
        let d = (x & 0xff) as usize;
        let v = self.sbox[0][a]
            .wrapping_add(self.sbox[1][b])
            .wrapping_mul(0x9e37_79b9) // extra diffusion; harmless to the permutation property
            ^ self.sbox[2][c].wrapping_add(self.sbox[3][d]);
        u64::from(v) & HALF_MASK
    }

    /// One encryption pass over the 62-bit walking domain.
    fn encrypt62(&self, block: u64) -> u64 {
        debug_assert!(block < (1 << (2 * HALF_BITS)));
        let mut left = block >> HALF_BITS;
        let mut right = block & HALF_MASK;
        for round in 0..ROUNDS {
            let fk = self.f((right as u32) ^ self.subkeys[round]);
            let new_right = left ^ fk;
            left = right;
            right = new_right;
        }
        (left << HALF_BITS) | right
    }

    /// One decryption pass over the 62-bit walking domain.
    fn decrypt62(&self, block: u64) -> u64 {
        debug_assert!(block < (1 << (2 * HALF_BITS)));
        let mut left = block >> HALF_BITS;
        let mut right = block & HALF_MASK;
        for round in (0..ROUNDS).rev() {
            let fk = self.f((left as u32) ^ self.subkeys[round]);
            let new_left = right ^ fk;
            right = left;
            left = new_left;
        }
        (left << HALF_BITS) | right
    }

    /// Encrypts a 61-bit value to a 61-bit value (cycle walking).
    pub fn encrypt(&self, value: u64) -> u64 {
        assert!(value < HANDLE_SPACE, "cipher input exceeds 61 bits");
        let mut v = self.encrypt62(value);
        while v >= HANDLE_SPACE {
            v = self.encrypt62(v);
        }
        v
    }

    /// Decrypts a 61-bit value to a 61-bit value (cycle walking).
    pub fn decrypt(&self, value: u64) -> u64 {
        assert!(value < HANDLE_SPACE, "cipher input exceeds 61 bits");
        let mut v = self.decrypt62(value);
        while v >= HANDLE_SPACE {
            v = self.decrypt62(v);
        }
        v
    }
}

impl std::fmt::Debug for HandleCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandleCipher").finish_non_exhaustive()
    }
}

/// Allocates handles by encrypting an incrementing 61-bit counter (§5.1).
///
/// The counter itself would be a storage channel — it reveals how many
/// handles the whole system has created — so only its encryption is ever
/// visible to user code (§8).
#[derive(Debug, Clone)]
pub struct HandleAllocator {
    cipher: HandleCipher,
    counter: u64,
    stride: u64,
    allocated: u64,
}

impl HandleAllocator {
    /// Creates an allocator whose cipher is keyed from `seed`.
    pub fn new(seed: u64) -> HandleAllocator {
        HandleAllocator::with_partition(seed, 0, 1)
    }

    /// Creates an allocator owning one lane of a partitioned counter
    /// space: it draws counters `1 + lane, 1 + lane + lanes, …`.
    ///
    /// Kernel shards each hold one lane of a `lanes`-way partition keyed
    /// from the same seed, so every shard generates handles from the same
    /// cipher (one system-wide namespace, per §5.1) while the underlying
    /// counters — and therefore the handle values — never collide. With
    /// `lane = 0, lanes = 1` this is exactly [`HandleAllocator::new`].
    ///
    /// # Panics
    ///
    /// Panics unless `lane < lanes`.
    pub fn with_partition(seed: u64, lane: u64, lanes: u64) -> HandleAllocator {
        assert!(lane < lanes, "allocator lane out of range");
        HandleAllocator {
            cipher: HandleCipher::new(seed),
            counter: 1 + lane,
            stride: lanes,
            allocated: 0,
        }
    }

    /// Returns a fresh, never-before-returned handle.
    ///
    /// # Panics
    ///
    /// Panics if all `2^61` handles have been allocated (at one billion
    /// handles per second this would take 73 years; in a simulator it means
    /// a runaway loop).
    pub fn alloc(&mut self) -> Handle {
        assert!(self.counter < HANDLE_SPACE, "61-bit handle space exhausted");
        let value = self.cipher.encrypt(self.counter);
        self.counter += self.stride;
        self.allocated += 1;
        Handle::new(value).expect("cycle-walked output stays in the 61-bit domain")
    }

    /// The number of handles allocated so far (by this lane).
    ///
    /// This is god-mode observability for tests and accounting; it is never
    /// exposed through the syscall surface (it would be the §8 storage
    /// channel the cipher exists to close).
    pub fn allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn partitioned_lanes_never_collide_and_lane0_matches_new() {
        // Lane 0 of a 1-way partition IS the classic allocator.
        let mut classic = HandleAllocator::new(9);
        let mut lane0of1 = HandleAllocator::with_partition(9, 0, 1);
        for _ in 0..32 {
            assert_eq!(classic.alloc(), lane0of1.alloc());
        }
        // Four lanes from one seed: all handles distinct.
        let mut lanes: Vec<HandleAllocator> = (0..4)
            .map(|lane| HandleAllocator::with_partition(9, lane, 4))
            .collect();
        let mut seen = HashSet::new();
        for lane in &mut lanes {
            for _ in 0..64 {
                assert!(seen.insert(lane.alloc()), "lanes minted a duplicate");
            }
            assert_eq!(lane.allocated(), 64);
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let c = HandleCipher::new(0xdead_beef);
        for v in (0..HANDLE_SPACE).step_by((HANDLE_SPACE / 997) as usize) {
            assert_eq!(c.decrypt(c.encrypt(v)), v, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn encrypt_stays_in_domain() {
        let c = HandleCipher::new(42);
        for v in 0..10_000u64 {
            assert!(c.encrypt(v) < HANDLE_SPACE);
        }
    }

    #[test]
    fn no_collisions_in_prefix() {
        let mut alloc = HandleAllocator::new(7);
        let mut seen = HashSet::new();
        for _ in 0..100_000 {
            assert!(seen.insert(alloc.alloc()), "handle collision");
        }
    }

    #[test]
    fn sequence_is_not_the_counter() {
        // Unpredictability smoke test: the output sequence must not reveal
        // the counter. We check that consecutive outputs are not consecutive
        // values and that outputs are spread across the domain.
        let mut alloc = HandleAllocator::new(99);
        let vals: Vec<u64> = (0..1000).map(|_| alloc.alloc().raw()).collect();
        let consecutive = vals
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || w[1] == w[0].wrapping_sub(1))
            .count();
        assert!(consecutive < 5, "output sequence looks like a counter");
        let top_half = vals.iter().filter(|&&v| v >= HANDLE_SPACE / 2).count();
        assert!(
            (200..800).contains(&top_half),
            "outputs are not spread across the domain: {top_half}/1000 in top half"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = HandleCipher::new(1);
        let b = HandleCipher::new(2);
        let same = (0..256u64)
            .filter(|&v| a.encrypt(v) == b.encrypt(v))
            .count();
        assert!(same < 4, "seeds produce nearly identical permutations");
    }

    #[test]
    fn allocated_counts() {
        let mut alloc = HandleAllocator::new(1);
        assert_eq!(alloc.allocated(), 0);
        alloc.alloc();
        alloc.alloc();
        assert_eq!(alloc.allocated(), 2);
    }
}
