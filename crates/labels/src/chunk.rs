//! Chunks: the refcounted building blocks of the label representation (§5.6).
//!
//! "A label points to a sorted array of chunks, each of which is a sorted
//! array of up to 64 vnode pointers. Since these pointers are 8-byte aligned,
//! their lower 3 bits are again available for the corresponding levels. ...
//! chunks are reference counted and updated copy-on-write, and multiple
//! labels can share chunks. Each chunk is marked with the minimum and maximum
//! of its vnodes' levels."
//!
//! In this user-space reproduction an entry packs a 61-bit handle value into
//! the upper bits and the level into the low 3 bits, exactly the user-space
//! label format the paper describes in §5.6.

use crate::fingerprint::ChunkDigest;
use crate::handle::Handle;
use crate::level::Level;

/// Maximum number of entries per chunk (§5.6: "up to 64 vnode pointers").
pub const CHUNK_CAP: usize = 64;

/// Packs a raw handle value and level into a 64-bit label entry.
#[inline]
pub fn pack(handle_raw: u64, level: Level) -> u64 {
    (handle_raw << 3) | level.to_bits()
}

/// The handle part of a packed entry.
#[inline]
pub fn entry_handle(packed: u64) -> u64 {
    packed >> 3
}

/// The level part of a packed entry.
///
/// Masks to the low 3 bits first so a full packed word — handle bits and
/// all — can never panic the decoder. [`pack`] only ever stores the five
/// valid encodings; the unused encodings 5–7 decode to the most-tainted
/// level `3` (with a debug assertion) rather than bringing the kernel down
/// on a corrupted entry.
#[inline]
pub fn entry_level(packed: u64) -> Level {
    match Level::from_bits(packed & 0x7) {
        Some(level) => level,
        None => {
            debug_assert!(false, "invalid level encoding {:#x}", packed & 0x7);
            Level::L3
        }
    }
}

/// A sorted run of up to [`CHUNK_CAP`] packed entries with cached level bounds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chunk {
    /// Packed entries, strictly ascending by handle.
    entries: Vec<u64>,
    /// Minimum level over the entries.
    min_level: Level,
    /// Maximum level over the entries.
    max_level: Level,
    /// Cached partial fingerprint over the packed entries; labels combine
    /// chunk digests in O(chunks) (see [`crate::fingerprint`]).
    digest: ChunkDigest,
}

impl Chunk {
    /// Builds a chunk from packed entries (must be non-empty, sorted strictly
    /// ascending by handle, and at most [`CHUNK_CAP`] long).
    pub fn from_entries(entries: Vec<u64>) -> Chunk {
        debug_assert!(!entries.is_empty());
        debug_assert!(entries.len() <= CHUNK_CAP);
        debug_assert!(entries
            .windows(2)
            .all(|w| entry_handle(w[0]) < entry_handle(w[1])));
        let mut c = Chunk {
            entries,
            min_level: Level::L3,
            max_level: Level::Star,
            digest: ChunkDigest::EMPTY,
        };
        c.recompute_bounds();
        c
    }

    /// Recomputes the cached min/max levels and fingerprint digest after a
    /// mutation.
    pub fn recompute_bounds(&mut self) {
        let mut min = Level::L3;
        let mut max = Level::Star;
        let mut digest = ChunkDigest::EMPTY;
        for &e in &self.entries {
            let lv = entry_level(e);
            min = min.min(lv);
            max = max.max(lv);
            digest.push(e);
        }
        self.min_level = min;
        self.max_level = max;
        self.digest = digest;
    }

    /// The cached fingerprint digest over the packed entries.
    #[inline]
    pub fn digest(&self) -> &ChunkDigest {
        &self.digest
    }

    /// The packed entries.
    #[inline]
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Mutable access to the packed entries; callers must re-establish the
    /// sorted invariant and call [`Chunk::recompute_bounds`].
    #[inline]
    pub fn entries_mut(&mut self) -> &mut Vec<u64> {
        &mut self.entries
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the chunk holds no entries (transient state during mutation).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest handle in the chunk.
    #[inline]
    pub fn first_handle(&self) -> u64 {
        entry_handle(self.entries[0])
    }

    /// Largest handle in the chunk.
    #[inline]
    pub fn last_handle(&self) -> u64 {
        entry_handle(*self.entries.last().expect("chunks are non-empty"))
    }

    /// Minimum level over the entries.
    #[inline]
    pub fn min_level(&self) -> Level {
        self.min_level
    }

    /// Maximum level over the entries.
    #[inline]
    pub fn max_level(&self) -> Level {
        self.max_level
    }

    /// Looks up the level for a raw handle value, if present.
    pub fn find(&self, handle_raw: u64) -> Option<Level> {
        self.entries
            .binary_search_by_key(&handle_raw, |&e| entry_handle(e))
            .ok()
            .map(|i| entry_level(self.entries[i]))
    }

    /// Iterates `(Handle, Level)` pairs in ascending handle order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, Level)> + '_ {
        self.entries.iter().map(|&e| {
            (
                Handle::new(entry_handle(e)).expect("packed entries hold 61-bit handles"),
                entry_level(e),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(pairs: &[(u64, Level)]) -> Chunk {
        Chunk::from_entries(pairs.iter().map(|&(h, l)| pack(h, l)).collect())
    }

    #[test]
    fn pack_roundtrip() {
        let p = pack(0x1fff_ffff_ffff_ffff, Level::Star);
        assert_eq!(entry_handle(p), 0x1fff_ffff_ffff_ffff);
        assert_eq!(entry_level(p), Level::Star);
    }

    #[test]
    fn entry_level_never_panics_on_full_packed_word() {
        // A maximum-handle entry fills all 61 upper bits; decoding the
        // level must mask before interpreting the word.
        for lv in Level::ALL {
            let p = pack(0x1fff_ffff_ffff_ffff, lv);
            assert_eq!(entry_level(p), lv);
        }
        // All-ones word: handle bits are garbage and the level encoding
        // (7) is one of the unused ones — decode degrades, not panics.
        let garbage = u64::MAX;
        if cfg!(debug_assertions) {
            assert!(std::panic::catch_unwind(|| entry_level(garbage)).is_err());
        } else {
            assert_eq!(entry_level(garbage), Level::L3);
        }
    }

    #[test]
    fn digest_tracks_mutation() {
        let mut c = chunk(&[(1, Level::L1), (2, Level::L2)]);
        let before = *c.digest();
        c.entries_mut().push(pack(9, Level::L3));
        c.recompute_bounds();
        assert_ne!(*c.digest(), before);
        c.entries_mut().pop();
        c.recompute_bounds();
        assert_eq!(*c.digest(), before);
    }

    #[test]
    fn bounds_cached() {
        let c = chunk(&[(1, Level::L1), (2, Level::Star), (9, Level::L3)]);
        assert_eq!(c.min_level(), Level::Star);
        assert_eq!(c.max_level(), Level::L3);
        assert_eq!(c.first_handle(), 1);
        assert_eq!(c.last_handle(), 9);
    }

    #[test]
    fn find_present_and_absent() {
        let c = chunk(&[(5, Level::L0), (10, Level::L2)]);
        assert_eq!(c.find(5), Some(Level::L0));
        assert_eq!(c.find(10), Some(Level::L2));
        assert_eq!(c.find(7), None);
        assert_eq!(c.find(0), None);
        assert_eq!(c.find(11), None);
    }

    #[test]
    fn iter_order() {
        let c = chunk(&[(3, Level::L1), (4, Level::L2)]);
        let got: Vec<_> = c.iter().map(|(h, l)| (h.raw(), l)).collect();
        assert_eq!(got, vec![(3, Level::L1), (4, Level::L2)]);
    }
}
