//! A naive reference implementation of labels, used to cross-check the
//! chunked representation in property tests and as the baseline in the
//! chunk-representation ablation benchmark.
//!
//! `NaiveLabel` stores explicit entries in a `BTreeMap` and implements every
//! lattice operation by direct definition, with no caching or fast paths.
//! It is deliberately simple: correctness of [`crate::Label`] is established
//! by proptest equivalence against this type.

use std::collections::BTreeMap;

use crate::handle::Handle;
use crate::label::Label;
use crate::level::Level;

/// A label backed by a plain ordered map; the property-test oracle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaiveLabel {
    map: BTreeMap<Handle, Level>,
    default: Level,
}

impl NaiveLabel {
    /// Creates a label mapping every handle to `default`.
    pub fn new(default: Level) -> NaiveLabel {
        NaiveLabel {
            map: BTreeMap::new(),
            default,
        }
    }

    /// The default level.
    pub fn default_level(&self) -> Level {
        self.default
    }

    /// The level assigned to `handle`.
    pub fn get(&self, handle: Handle) -> Level {
        self.map.get(&handle).copied().unwrap_or(self.default)
    }

    /// Sets the level for `handle`, keeping the no-redundant-entries invariant.
    pub fn set(&mut self, handle: Handle, level: Level) {
        if level == self.default {
            self.map.remove(&handle);
        } else {
            self.map.insert(handle, level);
        }
    }

    /// Number of explicit entries.
    pub fn entry_count(&self) -> usize {
        self.map.len()
    }

    /// `self ⊑ other` by direct definition over the union of handles.
    pub fn leq(&self, other: &NaiveLabel) -> bool {
        if self.default > other.default {
            return false;
        }
        self.union_handles(other)
            .into_iter()
            .all(|h| self.get(h) <= other.get(h))
    }

    /// `self ⊔ other` by direct definition.
    pub fn lub(&self, other: &NaiveLabel) -> NaiveLabel {
        self.combine(other, Level::max)
    }

    /// `self ⊓ other` by direct definition.
    pub fn glb(&self, other: &NaiveLabel) -> NaiveLabel {
        self.combine(other, Level::min)
    }

    /// `L⋆` by direct definition.
    pub fn stars_only(&self) -> NaiveLabel {
        let mut out = NaiveLabel::new(self.default.star_only());
        for (&h, &lv) in &self.map {
            out.set(h, lv.star_only());
        }
        out
    }

    fn combine(&self, other: &NaiveLabel, op: fn(Level, Level) -> Level) -> NaiveLabel {
        let mut out = NaiveLabel::new(op(self.default, other.default));
        for h in self.union_handles(other) {
            out.set(h, op(self.get(h), other.get(h)));
        }
        out
    }

    fn union_handles(&self, other: &NaiveLabel) -> Vec<Handle> {
        let mut hs: Vec<Handle> = self.map.keys().chain(other.map.keys()).copied().collect();
        hs.sort_unstable();
        hs.dedup();
        hs
    }

    /// Iterates explicit entries in handle order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, Level)> + '_ {
        self.map.iter().map(|(&h, &l)| (h, l))
    }
}

impl From<&Label> for NaiveLabel {
    fn from(label: &Label) -> NaiveLabel {
        let mut out = NaiveLabel::new(label.default_level());
        for (h, lv) in label.iter() {
            out.set(h, lv);
        }
        out
    }
}

impl From<&NaiveLabel> for Label {
    fn from(naive: &NaiveLabel) -> Label {
        let pairs: Vec<(Handle, Level)> = naive.iter().collect();
        Label::from_pairs(naive.default, &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(raw: u64) -> Handle {
        Handle::from_raw(raw)
    }

    #[test]
    fn roundtrip_conversion() {
        let mut n = NaiveLabel::new(Level::L1);
        n.set(h(3), Level::L3);
        n.set(h(7), Level::Star);
        let l = Label::from(&n);
        let back = NaiveLabel::from(&l);
        assert_eq!(n, back);
    }

    #[test]
    fn naive_ops_match_paper_basics() {
        let ut = h(1);
        let a = {
            let mut l = NaiveLabel::new(Level::L1);
            l.set(ut, Level::L3);
            l
        };
        let recv = NaiveLabel::new(Level::L2);
        assert!(!a.leq(&recv));
        let mut raised = recv.clone();
        raised.set(ut, Level::L3);
        assert!(a.leq(&raised));
    }
}
