//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of proptest the property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`, ranges, tuples, [`strategy::Just`], unions,
//! collections, options, a small regex-pattern string generator, and the
//! `proptest!` / `prop_compose!` / `prop_oneof!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case panics with the plain assert message;
//!   cases are reproducible because every test derives its RNG seed from the
//!   test's module path, so a failure replays on the next run;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`;
//! * string strategies support the character-class + quantifier regex
//!   subset the tests use, not full regex syntax.

pub mod test_runner {
    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test's module path).
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }

    // ------------------------------------------------------------------
    // Regex-subset string strategy (for `"pattern".prop_map(...)`).
    // ------------------------------------------------------------------

    /// One parsed pattern atom: the characters it may produce plus its
    /// repetition bounds.
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad {m,n} bound"),
                        hi.parse().expect("bad {m,n} bound"),
                    ),
                    None => {
                        let n = body.parse().expect("bad {n} bound");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_pattern(self) {
                let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..reps {
                    out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Builds the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A `Vec` strategy with a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An `Option` strategy (roughly 1 in 5 `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Generates `Option`s of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Property assertion; plain `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; plain `assert_eq!` in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; plain `assert_ne!` in this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    (fn $name:ident()($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Declares property tests: each runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::__proptest_body!(config, $name, ($($arg in $strat),*), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::test_runner::ProptestConfig::default();
                $crate::__proptest_body!(config, $name, ($($arg in $strat),*), $body);
            }
        )*
    };
}

/// Internal: the shared per-test generation loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:ident, $name:ident, ($($arg:ident in $strat:expr),*), $body:block) => {
        let mut rng = $crate::test_runner::TestRng::deterministic(
            concat!(module_path!(), "::", stringify!($name)),
        );
        for _case in 0..$config.cases {
            $(
                let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
            )*
            $body
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim");
        let s = (0u64..48, -50i64..50).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 48);
            assert!((-50..50).contains(&b));
        }
    }

    #[test]
    fn oneof_and_collections() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim2");
        let s = prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 7);
            assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn regex_subset_strings() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim3");
        let s = "[a-zA-Z][a-zA-Z0-9_-]{0,12}";
        for _ in 0..200 {
            let out = Strategy::generate(&s, &mut rng);
            assert!(!out.is_empty() && out.len() <= 13);
            assert!(out.chars().next().unwrap().is_ascii_alphabetic());
            assert!(out
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u64..10, ys in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 4);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
