//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workload generators use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges. The generator is splitmix64 — deterministic, fast, and
//! statistically fine for workload synthesis (nothing here is
//! cryptographic). Distributions are not bit-identical to the real crate,
//! which only matters for tests that hard-code expected samples (none do).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, implemented for the range types `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Draws a bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0..10u64);
            assert_eq!(x, b.gen_range(0..10u64));
            assert!(x < 10);
            let f = a.gen_range(0.0..1.0f64);
            assert_eq!(f, b.gen_range(0.0..1.0f64));
            assert!((0.0..1.0).contains(&f));
            let s = a.gen_range(-50i64..50);
            assert_eq!(s, b.gen_range(-50i64..50));
            assert!((-50..50).contains(&s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(av, bv);
    }
}
