//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small subset of the `bytes` API the net crate uses: [`Bytes`] (an
//! immutable, cheaply clonable byte buffer) and [`BytesMut`] (a growable
//! buffer that can split off frozen prefixes). Semantics match the real
//! crate for this subset; zero-copy internals are not reproduced because
//! nothing in the simulator depends on them.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer, cheap to clone.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Hands out the shared backing allocation without copying —
    /// the zero-copy bridge from a frozen NIC buffer into a refcounted
    /// kernel payload.
    pub fn into_arc(self) -> Arc<[u8]> {
        self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", String::from_utf8_lossy(&self.data))
    }
}

/// A growable byte buffer supporting prefix splits.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all bytes.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off and returns the entire contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`, like the real crate.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", String::from_utf8_lossy(&self.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_and_freeze() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(5).freeze();
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        let all = b.split();
        assert!(b.is_empty());
        assert_eq!(&all[..], b" world");
    }

    #[test]
    fn bytes_copy_and_clone() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(Bytes::new().is_empty());
    }
}
