//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the bench files use — groups, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], `iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! calibrate-then-measure timer instead of criterion's statistics. Each
//! benchmark prints one `name: time/iter` line.
//!
//! Running with `--test` (what `cargo bench -- --test` passes, and what CI
//! uses) executes every benchmark body exactly once so perf code can't
//! bit-rot without paying for full measurement runs.

use std::time::{Duration, Instant};

/// Target wall-clock time per measurement.
const TARGET: Duration = Duration::from_millis(200);

/// A benchmark identifier: an optional function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter, shown as `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    test_mode: bool,
    /// Measured nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, calibrating the iteration count to [`TARGET`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Calibrate: double the batch until it takes long enough to time.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || batch >= 1 << 30 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch = match TARGET.as_nanos().checked_div(elapsed.as_nanos().max(1)) {
                Some(factor) => (batch * (factor as u64 + 1)).min(batch * 16).max(batch * 2),
                None => batch * 2,
            };
        };
        self.ns_per_iter = per_iter;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timer self-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion
            .run_one(&format!("{}/{}", self.name, id.into_label()), &mut f);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.criterion
            .run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Conversion of the forms `bench_function` accepts as a label.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Reads CLI configuration (the shim only honors `--test`).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl IntoLabel, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.into_label();
        self.run_one(&label, &mut f);
    }

    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            ns_per_iter: 0.0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{label}: ok (test mode)");
        } else if bencher.ns_per_iter >= 1000.0 {
            println!("{label}: {:.2} µs/iter", bencher.ns_per_iter / 1000.0);
        } else {
            println!("{label}: {:.0} ns/iter", bencher.ns_per_iter);
        }
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
