//! The OKWS repeated-tuple workload, shared by the perf benches.
//!
//! One parameterized builder models the Figure 9 regime — a pool of
//! per-user senders, each carrying a distinct multi-entry taint label
//! (the per-user `uT`/`uG` handles OKWS accumulates), repeatedly
//! bursting at long-lived service ports. Every user's delivery tuple
//! repeats exactly (§5.6's observation that labels are highly
//! repetitive), which is what the delivery-decision cache keys on.
//!
//! `ablation_delivery_cache` uses the *shared-sink* topology (all users
//! hit one service port, single shard); `scale_shards` uses *per-user
//! sinks* placed either on the sender's shard or deliberately one shard
//! away. Keeping both on this builder keeps the two benches' numbers
//! comparable and prevents the workloads from silently diverging.

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, Payload, Value};

/// What each burst message carries.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// Control-plane tuples only (`Value::U64`) — the original regime.
    None,
    /// Each send clones one pre-built shared payload of the given size:
    /// the refcount moves, the bytes stay put (the zero-copy hot path).
    Shared(usize),
    /// Each send materializes a fresh buffer of the given size — the
    /// per-send deep copy the zero-copy path removed, kept as the A/B
    /// baseline so the win stays measurable.
    Copied(usize),
}

/// Shape of one repeated-tuple deployment.
#[derive(Clone, Copy)]
pub struct TupleWorkload {
    /// Concurrent user sessions (distinct label tuples).
    pub users: usize,
    /// Explicit entries per user send label (per-user compartments).
    pub entries: u64,
    /// Messages per user per round.
    pub burst: usize,
    /// Base raw handle value for the synthetic taint compartments.
    pub handle_base: u64,
    /// Raw-handle stride between users' compartment ranges.
    pub handle_stride: u64,
    /// `false`: all users burst at one shared sink (the Figure 9 shape);
    /// `true`: each user has its own sink (the sharding shape).
    pub per_user_sinks: bool,
    /// With per-user sinks: place each sink one shard away from its
    /// sender so every message rides the cross-shard router.
    pub cross_shard: bool,
    /// Body carried by each burst message.
    pub payload: PayloadMode,
    /// Zipf skew over users: user `u` (rank `u+1`) sends a burst
    /// proportional to `1/(u+1)^s`, normalized so the total message
    /// count stays ~`users * burst`. `0.0` means uniform — every user
    /// sends exactly `burst`, bit-identical to the pre-skew workload.
    /// Since senders are pinned `user % shards`, low-numbered users (the
    /// heavy ranks) concentrate on shard 0: the hot-shard regime the
    /// tuner's work stealing targets.
    pub zipf_s: f64,
    /// Iterations of synthetic per-delivery service work each sink burns
    /// (0 = the pure-delivery regime every pre-autotune bench measures).
    /// Models the request-handling CPU an OKWS service spends per
    /// message; it runs on the *sink's* shard, so it is exactly the cost
    /// that migrates when the tuner steals a hot port.
    pub sink_spin: u32,
}

impl TupleWorkload {
    /// Messages user `u` sends per round under this workload's skew.
    ///
    /// Deterministic (pure IEEE arithmetic over the rank), so two runs
    /// of the same shape always produce identical per-user bursts.
    pub fn burst_for_user(&self, user: usize) -> usize {
        if self.zipf_s == 0.0 {
            return self.burst;
        }
        let total_weight: f64 = (0..self.users)
            .map(|u| 1.0 / ((u + 1) as f64).powf(self.zipf_s))
            .sum();
        let weight = 1.0 / ((user + 1) as f64).powf(self.zipf_s);
        let share = (self.users * self.burst) as f64 * weight / total_weight;
        (share.round() as usize).max(1)
    }

    /// Total messages per round across all users (skew-aware).
    pub fn total_burst(&self) -> usize {
        (0..self.users).map(|u| self.burst_for_user(u)).sum()
    }
}

/// Deploys the workload over `shards` shards with the given delivery
/// cache capacity; returns the kernel and the senders' trigger ports.
///
/// Senders are pinned round-robin (`user % shards`); the shared sink, or
/// each per-user sink, is placed per the workload's topology. Every
/// sink's receive label is opened to `{3}`, like a service that raised
/// its receive label for every registered user; every sender's send
/// label carries its `entries` disjoint compartments at level 2.
pub fn deploy_repeated_tuple(
    seed: u64,
    shards: usize,
    cache_capacity: usize,
    w: &TupleWorkload,
) -> (Kernel, Vec<Handle>) {
    let mut kernel = Kernel::new_sharded(seed, shards);
    kernel.set_delivery_cache_capacity(cache_capacity);

    let sink_spin = w.sink_spin;
    let spawn_sink = |kernel: &mut Kernel, shard: usize, name: &str, key: String| {
        let publish_key = key.clone();
        kernel.spawn_on(
            shard,
            name,
            Category::Okws,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&publish_key, Value::Handle(p));
                },
                move |_sys, _msg| {
                    // Synthetic per-request service work, charged to the
                    // shard that hosts the sink.
                    let mut x = 0x9E37_79B9u32;
                    for _ in 0..sink_spin {
                        x = std::hint::black_box(x.wrapping_mul(0x85EB_CA6B).rotate_left(13));
                    }
                },
            ),
        );
        let port = kernel.global_env(&key).unwrap().as_handle().unwrap();
        let pid = kernel.find_process(name).unwrap();
        kernel.set_process_labels(pid, None, Some(Label::top()));
        port
    };

    let shared_sink = if w.per_user_sinks {
        None
    } else {
        Some(spawn_sink(&mut kernel, 0, "sink", "sink.port".into()))
    };

    let mut trigger_ports = Vec::new();
    for user in 0..w.users {
        let send_shard = user % shards;
        let sink = match shared_sink {
            Some(port) => port,
            None => {
                let sink_shard = if w.cross_shard {
                    (user + 1) % shards
                } else {
                    send_shard
                };
                spawn_sink(
                    &mut kernel,
                    sink_shard,
                    &format!("sink{user}"),
                    format!("user{user}.sink"),
                )
            }
        };

        let trig_key = format!("user{user}.trigger");
        let publish_key = trig_key.clone();
        let burst = w.burst_for_user(user);
        let mode = w.payload;
        // Built once per user, outside the send loop: the Shared mode's
        // whole point is that steady-state sends touch no bytes.
        let template: Option<Payload> = match mode {
            PayloadMode::None => None,
            PayloadMode::Shared(size) | PayloadMode::Copied(size) => Some(vec![0xA5; size].into()),
        };
        kernel.spawn_on(
            send_shard,
            &format!("user{user}"),
            Category::Okws,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&publish_key, Value::Handle(p));
                },
                move |sys, _msg| {
                    for i in 0..burst {
                        let body = match (&mode, &template) {
                            (PayloadMode::Shared(_), Some(t)) => Value::Bytes(t.clone()),
                            (PayloadMode::Copied(_), Some(t)) => {
                                Value::Bytes(Payload::copy_from_slice(t))
                            }
                            _ => Value::U64(i as u64),
                        };
                        sys.send(sink, body).unwrap();
                    }
                },
            ),
        );
        trigger_ports.push(kernel.global_env(&trig_key).unwrap().as_handle().unwrap());

        // The user's session taint: `entries` distinct compartment
        // handles — the repeated tuple the delivery cache keys on.
        let pid = kernel.find_process(&format!("user{user}")).unwrap();
        let pairs: Vec<(Handle, Level)> = (0..w.entries)
            .map(|j| {
                (
                    Handle::from_raw(w.handle_base + user as u64 * w.handle_stride + j),
                    Level::L2,
                )
            })
            .collect();
        kernel.set_process_labels(pid, Some(Label::from_pairs(Level::L1, &pairs)), None);
    }
    (kernel, trigger_ports)
}

/// One round: every user bursts at its sink; runs to idle.
pub fn trigger_round(kernel: &mut Kernel, triggers: &[Handle]) {
    for &port in triggers {
        kernel.inject(port, Value::Unit);
    }
    kernel.run();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_and_per_user_topologies_deliver_every_burst() {
        let w = TupleWorkload {
            users: 4,
            entries: 3,
            burst: 5,
            handle_base: 0x1000,
            handle_stride: 0x100,
            per_user_sinks: false,
            cross_shard: false,
            payload: PayloadMode::None,
            zipf_s: 0.0,
            sink_spin: 0,
        };
        let (mut kernel, triggers) = deploy_repeated_tuple(1, 1, 0, &w);
        trigger_round(&mut kernel, &triggers);
        // 4 triggers + 4×5 burst messages, none dropped.
        assert_eq!(kernel.stats().delivered, 4 + 20);
        assert_eq!(kernel.stats().dropped_total(), 0);

        let w2 = TupleWorkload {
            per_user_sinks: true,
            cross_shard: true,
            ..w
        };
        let (mut kernel, triggers) = deploy_repeated_tuple(1, 2, 0, &w2);
        trigger_round(&mut kernel, &triggers);
        assert_eq!(kernel.stats().delivered, 4 + 20);
        assert_eq!(kernel.stats().dropped_total(), 0);
    }

    #[test]
    fn payload_modes_differ_only_in_materializations() {
        let base = TupleWorkload {
            users: 2,
            entries: 3,
            burst: 4,
            handle_base: 0x1000,
            handle_stride: 0x100,
            per_user_sinks: true,
            cross_shard: true,
            payload: PayloadMode::Shared(256),
            zipf_s: 0.0,
            sink_spin: 0,
        };
        // Shared: one template materialization per user at deploy time,
        // zero per send.
        let (mut kernel, triggers) = deploy_repeated_tuple(1, 2, 0, &base);
        let before = Payload::deep_copies();
        trigger_round(&mut kernel, &triggers);
        assert_eq!(kernel.stats().delivered, 2 + 8);
        assert_eq!(
            Payload::deep_copies(),
            before,
            "shared mode must not copy bytes per send"
        );

        // Copied: same deliveries, one materialization per send.
        let copied = TupleWorkload {
            payload: PayloadMode::Copied(256),
            ..base
        };
        let (mut kernel, triggers) = deploy_repeated_tuple(1, 2, 0, &copied);
        let before = Payload::deep_copies();
        trigger_round(&mut kernel, &triggers);
        assert_eq!(kernel.stats().delivered, 2 + 8);
        assert_eq!(
            Payload::deep_copies(),
            before + 8,
            "copied mode deep-copies once per send"
        );
    }

    #[test]
    fn zipf_bursts_are_skewed_normalized_and_deterministic() {
        let w = TupleWorkload {
            users: 16,
            entries: 3,
            burst: 32,
            handle_base: 0x1000,
            handle_stride: 0x100,
            per_user_sinks: true,
            cross_shard: false,
            payload: PayloadMode::None,
            zipf_s: 1.2,
            sink_spin: 0,
        };
        let bursts: Vec<usize> = (0..w.users).map(|u| w.burst_for_user(u)).collect();
        // Monotone non-increasing in rank, genuinely skewed at the head,
        // floored at 1 in the tail.
        assert!(bursts.windows(2).all(|p| p[0] >= p[1]));
        assert!(bursts[0] > 4 * bursts[w.users - 1]);
        assert!(*bursts.last().unwrap() >= 1);
        // Normalization keeps the round total near users*burst.
        let total = w.total_burst();
        let target = w.users * w.burst;
        assert!(
            total >= target * 9 / 10 && total <= target * 11 / 10,
            "total {total} strays from target {target}"
        );
        // s = 0 is exactly the uniform workload.
        let uniform = TupleWorkload { zipf_s: 0.0, ..w };
        assert!((0..16).all(|u| uniform.burst_for_user(u) == 32));
        assert_eq!(uniform.total_burst(), 16 * 32);

        // The deployed kernel actually sends the skewed counts.
        let (mut kernel, triggers) = deploy_repeated_tuple(1, 2, 0, &w);
        trigger_round(&mut kernel, &triggers);
        assert_eq!(kernel.stats().delivered as usize, w.users + total);
        assert_eq!(kernel.stats().dropped_total(), 0);
    }
}
