//! # asbestos-bench
//!
//! The evaluation harness: everything needed to regenerate §9's figures.
//!
//! * [`fixture`] — standard OKWS deployments and workloads;
//! * [`figures`] — one measurement routine per paper figure, each returning
//!   plain data the `fig*` binaries print as the paper's rows/series.
//!
//! Run the binaries with `cargo run --release -p asbestos-bench --bin
//! fig6_memory` (and `fig7_throughput`, `fig8_latency`, `fig9_label_costs`).

pub mod figures;
pub mod fixture;
pub mod report;
pub mod workload_tuples;

pub use figures::*;
pub use fixture::*;
