//! Regenerates Figure 7: "Throughput for various numbers of cached sessions
//! in OKWS, compared with Apache and Mod-Apache" — plus the sharded
//! extension: the same sweep on `shards × lanes` deployments
//! (`deploy_sharded`), throughput measured against the busiest shard's
//! modeled clock.
//!
//! Usage: `cargo run --release -p asbestos-bench --bin fig7_throughput [--quick]`

use asbestos_bench::{
    baseline_throughputs, okws_sweep_point, okws_sweep_point_sharded, quick_mode, sweep_sessions,
};

/// `shards × lanes` points for the sharded series.
const SHARDED_CONFIGS: [(usize, usize); 2] = [(2, 2), (4, 4)];

fn main() {
    println!("# Figure 7: throughput (connections/second)");
    println!("# (paper: Mod-Apache ≈ 2800; Apache ≈ 1400; OKWS ≈ 1600 at 1 session");
    println!("#  falling to ≈ 700 at 10000; OKWS beats Apache until ≳1000 sessions)");
    println!("{:>22} {:>14}", "server", "conns/sec");

    let (apache, mod_apache) = baseline_throughputs(1);
    for (name, thr) in [("Mod-Apache", mod_apache), ("Apache", apache)] {
        println!("{name:>22} {thr:>14.0}");
    }
    for sessions in sweep_sessions() {
        let point = okws_sweep_point(sessions, 1000 + sessions as u64);
        println!(
            "{:>22} {:>14.0}",
            format!("OKWS {} sessions", point.sessions),
            point.throughput
        );
    }

    // The sharded series (ROADMAP: fig7 on the sharded kernel). A
    // reduced session sweep: the paper's axis is session count, ours
    // adds the shards × lanes dimension on top.
    println!();
    println!("# Sharded OKWS (same workload on deploy_sharded; busiest-shard clock)");
    println!("{:>22} {:>14}", "server", "conns/sec");
    let sharded_sessions: &[usize] = if quick_mode() {
        &[1, 100]
    } else {
        &[1, 100, 1000]
    };
    for &(shards, lanes) in &SHARDED_CONFIGS {
        for &sessions in sharded_sessions {
            let point = okws_sweep_point_sharded(sessions, 2000 + sessions as u64, shards, lanes);
            println!(
                "{:>22} {:>14.0}",
                format!("OKWS {shards}x{lanes} {sessions} sess"),
                point.throughput
            );
        }
    }
}
