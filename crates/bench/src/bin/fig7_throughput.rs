//! Regenerates Figure 7: "Throughput for various numbers of cached sessions
//! in OKWS, compared with Apache and Mod-Apache."
//!
//! Usage: `cargo run --release -p asbestos-bench --bin fig7_throughput [--quick]`

use asbestos_bench::{baseline_throughputs, okws_sweep_point, sweep_sessions};

fn main() {
    println!("# Figure 7: throughput (connections/second)");
    println!("# (paper: Mod-Apache ≈ 2800; Apache ≈ 1400; OKWS ≈ 1600 at 1 session");
    println!("#  falling to ≈ 700 at 10000; OKWS beats Apache until ≳1000 sessions)");
    println!("{:>22} {:>14}", "server", "conns/sec");

    let (apache, mod_apache) = baseline_throughputs(1);
    for (name, thr) in [("Mod-Apache", mod_apache), ("Apache", apache)] {
        println!("{name:>22} {thr:>14.0}");
    }
    for sessions in sweep_sessions() {
        let point = okws_sweep_point(sessions, 1000 + sessions as u64);
        println!(
            "{:>22} {:>14.0}",
            format!("OKWS {} sessions", point.sessions),
            point.throughput
        );
    }
}
