//! Regenerates Figure 6: "Memory used by active and cached Web sessions as
//! a function of the number of sessions."
//!
//! Usage: `cargo run --release -p asbestos-bench --bin fig6_memory [--quick]`

use asbestos_bench::{fig6_baseline, fig6_memory, quick_mode};

fn main() {
    let sweep: Vec<usize> = if quick_mode() {
        vec![0, 100, 250, 500, 1000]
    } else {
        vec![
            0, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10_000,
        ]
    };

    println!("# Figure 6: memory used by active and cached Web sessions");
    println!("# (paper: ~1.5 pages per cached session; ~8 extra pages per active session)");
    println!(
        "{:>10} {:>16} {:>16}",
        "sessions", "cached (pages)", "active (pages)"
    );

    let baseline = fig6_baseline(4242);
    let mut rows = Vec::new();
    for &n in &sweep {
        let cached = if n == 0 {
            baseline
        } else {
            fig6_memory(n, false, 4242).pages
        };
        let active = if n == 0 {
            baseline
        } else {
            fig6_memory(n, true, 4242).pages
        };
        println!("{n:>10} {cached:>16} {active:>16}");
        rows.push((n, cached, active));
    }

    // Per-session slopes over the measured range.
    if let (Some(&(n0, c0, a0)), Some(&(n1, c1, a1))) = (rows.first(), rows.last()) {
        if n1 > n0 {
            let span = (n1 - n0) as f64;
            println!("#");
            println!(
                "# measured: {:.2} pages/cached session (paper: ~1.5)",
                (c1 as f64 - c0 as f64) / span
            );
            println!(
                "# measured: {:.2} pages/active session (paper: ~9.5 = 1.5 + 8)",
                (a1 as f64 - a0 as f64) / span
            );
        }
    }
}
