//! Regenerates Figure 8: "The median and 90th percentile latencies of
//! requests to various server configurations."
//!
//! Usage: `cargo run --release -p asbestos-bench --bin fig8_latency [--quick]`

use asbestos_bench::{baseline_latencies, okws_latency, okws_latency_sharded, quick_mode};

fn main() {
    println!("# Figure 8: request latency at concurrency 4 (microseconds)");
    println!("# (paper: Mod-Apache 999/1015; Apache 3374/5262;");
    println!("#  OKWS-1 1875/2384; OKWS-1000 3414/6767)");
    println!(
        "{:>22} {:>12} {:>16}",
        "server", "median (us)", "90th pct (us)"
    );

    for row in baseline_latencies(2) {
        println!(
            "{:>22} {:>12.0} {:>16.0}",
            row.server, row.median_us, row.p90_us
        );
    }
    let batches = if quick_mode() { 50 } else { 250 };
    for sessions in [1usize, 1000] {
        let row = okws_latency(sessions, batches, 3000 + sessions as u64);
        println!(
            "{:>22} {:>12.0} {:>16.0}",
            row.server, row.median_us, row.p90_us
        );
    }
    // Beyond the paper: the same closed loop on the scaled deployment
    // (sharded kernel, multi-lane netd, per-lane completion polling).
    for (shards, lanes) in [(1usize, 1usize), (4, 4)] {
        let row = okws_latency_sharded(1000, batches, 3500, shards, lanes);
        println!(
            "{:>22} {:>12.0} {:>16.0}",
            row.server, row.median_us, row.p90_us
        );
    }
}
