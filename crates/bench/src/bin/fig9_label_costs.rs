//! Regenerates Figure 9: "The average cost in Kcycles/connection of various
//! Asbestos components, as the number of cached sessions increases."
//!
//! Usage: `cargo run --release -p asbestos-bench --bin fig9_label_costs [--quick]`

use asbestos_bench::{okws_sweep_point, sweep_sessions};
use asbestos_kernel::Category;

fn main() {
    println!("# Figure 9: Kcycles/connection by component vs cached sessions");
    println!("# (paper: linear growth; Kernel IPC overtakes Network ≈ 3000 sessions");
    println!("#  and equals OKWS ≈ 7500; total ≈ 1750 at 1 session, ≈ 4000 at 10000)");
    print!("{:>10}", "sessions");
    for cat in Category::ALL {
        print!(" {:>12}", cat.name());
    }
    println!(" {:>12}", "Total");

    for sessions in sweep_sessions() {
        let point = okws_sweep_point(sessions, 9000 + sessions as u64);
        print!("{:>10}", point.sessions);
        let mut total = 0.0;
        for k in point.kcycles_per_conn {
            print!(" {k:>12.0}");
            total += k;
        }
        println!(" {total:>12.0}");
    }
}
