//! Regenerates Figure 9: "The average cost in Kcycles/connection of various
//! Asbestos components, as the number of cached sessions increases."
//!
//! Two sweeps: the paper-faithful configuration (delivery cache disabled),
//! whose Kernel IPC cost grows linearly with cached sessions exactly as
//! §9.3 reports, and the same workload with the delivery-decision cache
//! enabled, showing how much of that degradation the cache removes.
//!
//! Usage: `cargo run --release -p asbestos-bench --bin fig9_label_costs [--quick]`

use asbestos_bench::{okws_sweep_point_with_cache, sweep_sessions};
use asbestos_kernel::{Category, DEFAULT_DELIVERY_CACHE_CAP};

fn print_sweep(cache_capacity: usize) -> Vec<(usize, f64)> {
    print!("{:>10}", "sessions");
    for cat in Category::ALL {
        print!(" {:>12}", cat.name());
    }
    println!(" {:>12}", "Total");

    let mut totals = Vec::new();
    for sessions in sweep_sessions() {
        let point = okws_sweep_point_with_cache(sessions, 9000 + sessions as u64, cache_capacity);
        print!("{:>10}", point.sessions);
        let mut total = 0.0;
        for k in point.kcycles_per_conn {
            print!(" {k:>12.0}");
            total += k;
        }
        println!(" {total:>12.0}");
        totals.push((sessions, total));
    }
    totals
}

fn main() {
    println!("# Figure 9: Kcycles/connection by component vs cached sessions");
    println!("# (paper: linear growth; Kernel IPC overtakes Network ≈ 3000 sessions");
    println!("#  and equals OKWS ≈ 7500; total ≈ 1750 at 1 session, ≈ 4000 at 10000)");
    println!();
    println!("## delivery cache OFF (paper-faithful linear scaling)");
    let off = print_sweep(0);
    println!();
    println!("## delivery cache ON (default bound: {DEFAULT_DELIVERY_CACHE_CAP} decisions)");
    let on = print_sweep(DEFAULT_DELIVERY_CACHE_CAP);
    println!();
    println!("## cache effect (total Kcycles/connection, off / on)");
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "sessions", "off", "on", "ratio"
    );
    for ((sessions, off_total), (_, on_total)) in off.iter().zip(on.iter()) {
        println!(
            "{sessions:>10} {off_total:>12.0} {on_total:>12.0} {:>7.2}x",
            off_total / on_total.max(1.0)
        );
    }
}
