//! Measurement routines, one per figure in §9.

use asbestos_baseline::{apache_cgi, mod_apache, run_closed_loop, UnixCosts};
use asbestos_kernel::{Category, CYCLES_PER_SEC};

use crate::fixture::{deploy, BenchEnv, CONNS_PER_USER, LATENCY_CONCURRENCY};

// ---------------------------------------------------------------------
// Figure 6: memory use.
// ---------------------------------------------------------------------

/// One point of Figure 6.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// Number of Web sessions created.
    pub sessions: usize,
    /// Total allocated memory in 4 KiB pages (kernel structures plus user
    /// frames, as the paper measures).
    pub pages: usize,
}

/// Measures total memory after creating `sessions` store-service sessions.
///
/// `active` reproduces the worst-case variant: "we repeated the previous
/// experiment but modified the worker so that it does not ever unmap
/// memory, call ep_clean or call ep_exit" (§9.1).
pub fn fig6_memory(sessions: usize, active: bool, seed: u64) -> Fig6Point {
    let mut env = deploy(seed, sessions, !active);
    // Paper-faithful configuration: the delivery-decision cache retains
    // (and is billed for) effect labels, which the paper's kernel does not
    // have; disable it so the figure measures the paper's structures.
    env.kernel.set_delivery_cache_capacity(0);
    // ~1 KiB of session state per user, like the paper's toy service.
    env.build_sessions("store", Some("x".repeat(512).as_str()));
    env.kernel.run();
    let pages = env.kernel.kmem_report().total_pages();
    Fig6Point { sessions, pages }
}

/// The baseline memory of a deployment with no sessions (for computing
/// per-session slopes in EXPERIMENTS.md).
pub fn fig6_baseline(seed: u64) -> usize {
    let mut env = deploy(seed, 0, true);
    env.kernel.set_delivery_cache_capacity(0);
    env.kernel.run();
    env.kernel.kmem_report().total_pages()
}

// ---------------------------------------------------------------------
// Figures 7 and 9 share one sweep: throughput and cycle breakdown.
// ---------------------------------------------------------------------

/// One point of the Figure 7 / Figure 9 sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Cached sessions in the system.
    pub sessions: usize,
    /// Completed connections.
    pub connections: u64,
    /// Connections per second of simulated 2.8 GHz time (Figure 7's y-axis).
    pub throughput: f64,
    /// Average Kcycles per connection, per category, in
    /// `[OKDB, OKWS, Kernel IPC, Network, Other]` order (Figure 9's
    /// y-axis).
    pub kcycles_per_conn: [f64; 5],
}

/// Runs the §9.2.1 workload at one session count: every user connects
/// [`CONNS_PER_USER`] times (the first connection authenticates and forks
/// the session event process; the rest hit the session table).
///
/// Paper-faithful configuration: the delivery-decision cache is disabled,
/// so Kernel IPC cost scales linearly with cached sessions as §9.3
/// reports. `fig9_label_costs` additionally sweeps the cache-enabled
/// configuration via [`okws_sweep_point_with_cache`].
pub fn okws_sweep_point(sessions: usize, seed: u64) -> SweepPoint {
    okws_sweep_point_with_cache(sessions, seed, 0)
}

/// [`okws_sweep_point`] with an explicit delivery-cache bound (0 disables
/// the cache — the paper-faithful configuration whose Kernel IPC cost
/// grows linearly with cached sessions; the default bound shows how much
/// of Figure 9's degradation the decision cache removes).
pub fn okws_sweep_point_with_cache(
    sessions: usize,
    seed: u64,
    cache_capacity: usize,
) -> SweepPoint {
    let mut env = deploy(seed, sessions, true);
    env.kernel.set_delivery_cache_capacity(cache_capacity);
    let start = env.kernel.cycle_snapshot();
    let mut connections = 0u64;
    for round in 0..CONNS_PER_USER {
        for user in 0..sessions {
            env.request_ok("bench", user, &[]);
            connections += 1;
        }
        let _ = round;
    }
    let end = env.kernel.cycle_snapshot();
    let elapsed = end.now() - start.now();
    let throughput = connections as f64 / (elapsed as f64 / CYCLES_PER_SEC as f64);
    let mut kcycles = [0.0; 5];
    for (i, &cat) in Category::ALL.iter().enumerate() {
        let delta = end.total(cat) - start.total(cat);
        kcycles[i] = delta as f64 / 1_000.0 / connections as f64;
    }
    SweepPoint {
        sessions,
        connections,
        throughput,
        kcycles_per_conn: kcycles,
    }
}

/// The §9.2.1 workload on the sharded kernel (ROADMAP: "fig7/fig8 on the
/// sharded kernel"): same request mix as [`okws_sweep_point`], run on a
/// `shards × lanes` deployment via [`crate::fixture::deploy_sharded`].
///
/// Throughput uses the **busiest shard's** cycle advance as the elapsed
/// denominator ([`asbestos_kernel::Kernel::elapsed_cycles`]): shards
/// model parallel cores, so the slowest one bounds the modeled wall
/// clock. On `1 × 1` this is exactly [`okws_sweep_point`]'s denominator,
/// making the series directly comparable. Cache disabled, like the
/// paper-faithful single-shard sweep.
pub fn okws_sweep_point_sharded(
    sessions: usize,
    seed: u64,
    shards: usize,
    lanes: usize,
) -> SweepPoint {
    let mut env = crate::fixture::deploy_sharded(seed, sessions, true, shards, lanes);
    env.kernel.set_cache_capacity(0);
    let start = env.kernel.cycle_snapshot();
    let elapsed_before = env.kernel.elapsed_cycles();
    let mut connections = 0u64;
    for _round in 0..CONNS_PER_USER {
        for user in 0..sessions {
            env.request_ok("bench", user, &[]);
            connections += 1;
        }
    }
    let end = env.kernel.cycle_snapshot();
    let elapsed = (env.kernel.elapsed_cycles() - elapsed_before).max(1);
    let throughput = connections as f64 / (elapsed as f64 / CYCLES_PER_SEC as f64);
    let mut kcycles = [0.0; 5];
    for (i, &cat) in Category::ALL.iter().enumerate() {
        let delta = end.total(cat) - start.total(cat);
        kcycles[i] = delta as f64 / 1_000.0 / connections as f64;
    }
    SweepPoint {
        sessions,
        connections,
        throughput,
        kcycles_per_conn: kcycles,
    }
}

/// Figure 7's baseline rows: Apache and Mod-Apache throughput at their
/// paper concurrency sweet spots (400 and 16 connections, §9.2.1).
pub fn baseline_throughputs(seed: u64) -> (f64, f64) {
    let costs = UnixCosts::default();
    let apache = run_closed_loop(&apache_cgi(&costs), 400, 20_000, seed);
    let module = run_closed_loop(&mod_apache(&costs), 16, 20_000, seed);
    (apache.throughput(), module.throughput())
}

// ---------------------------------------------------------------------
// Figure 8: latency.
// ---------------------------------------------------------------------

/// One row of Figure 8.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Server configuration name.
    pub server: String,
    /// Median latency, microseconds.
    pub median_us: f64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: f64,
}

/// Measures OKWS latency with the paper's concurrency of 4 (§9.2.2).
///
/// A closed loop keeps [`LATENCY_CONCURRENCY`] requests outstanding: each
/// completion immediately triggers a replacement, so requests stagger into
/// steady state the way a real load generator's do. Like the §9.2.1
/// workload, a quarter of the measured requests open new sessions, so
/// session-creation cost (idd, database, handle minting) shows up in the
/// tail exactly as §9.2.2 describes.
pub fn okws_latency(sessions: usize, samples: usize, seed: u64) -> Fig8Row {
    let mut env = deploy(seed, sessions + samples, true);
    // Paper-faithful configuration, like `okws_sweep_point`: no delivery
    // cache, so latency tracks the paper's label-walk costs.
    env.kernel.set_delivery_cache_capacity(0);
    // Pre-build the cached sessions the configuration calls for.
    for user in 0..sessions {
        env.request_ok("bench", user, &[]);
    }
    env.client.driver.reset_log();

    let mut fresh_user = sessions;
    let mut cached_rr = 0usize;
    let mut issued = 0usize;
    let mut issue_next = |env: &mut BenchEnv, issued: &mut usize| {
        // Every fourth request is a fresh login (§9.2.1's 1:3 ratio).
        let user = if (*issued).is_multiple_of(LATENCY_CONCURRENCY) {
            let u = fresh_user;
            fresh_user += 1;
            u
        } else {
            cached_rr += 1;
            cached_rr % sessions.max(1)
        };
        *issued += 1;
        env.issue("bench", user, &[])
    };

    // Prime the pipeline.
    for _ in 0..LATENCY_CONCURRENCY {
        issue_next(&mut env, &mut issued);
    }
    // Closed loop: poll frequently; top the window back up per completion.
    let mut completed_seen = 0usize;
    let mut stalled = 0u32;
    while completed_seen < samples {
        for _ in 0..40 {
            if !env.kernel.step() {
                break;
            }
        }
        env.client.driver.poll(&env.kernel);
        let done = env.client.driver.completed();
        while issued - done < LATENCY_CONCURRENCY && issued < sessions + samples {
            issue_next(&mut env, &mut issued);
        }
        if done == completed_seen && env.kernel.queue_len() == 0 {
            stalled += 1;
            assert!(
                stalled < 100,
                "latency workload stalled at {done} completions"
            );
        } else {
            stalled = 0;
        }
        completed_seen = done;
    }
    env.kernel.run();
    env.client.driver.poll(&env.kernel);

    let lat = env.client.driver.latencies_us();
    assert!(
        lat.len() >= samples,
        "latency workload lost requests: {} of {issued}",
        lat.len()
    );
    let median = asbestos_net::percentile(&lat, 50.0).unwrap_or(0.0);
    let p90 = asbestos_net::percentile(&lat, 90.0).unwrap_or(0.0);
    Fig8Row {
        server: format!(
            "OKWS, {} session{}",
            sessions,
            if sessions == 1 { "" } else { "s" }
        ),
        median_us: median,
        p90_us: p90,
    }
}

/// [`okws_latency`] on a sharded kernel with a multi-lane netd front
/// end — the Figure 8 closed loop ported onto the scaled deployment.
///
/// Completions are collected with the per-lane ring walk
/// ([`asbestos_net::ClientDriver::poll_lane`]): each netd lane owns the
/// connections the RSS demux hashed to it, so the load generator polls
/// every lane each scheduling quantum, the way a real multi-queue NIC
/// client would. Latency is virtual-cycle, so the row is deterministic
/// under its seed; `shards = lanes = 1` reproduces [`okws_latency`]'s
/// configuration with the lane-structured poll.
pub fn okws_latency_sharded(
    sessions: usize,
    samples: usize,
    seed: u64,
    shards: usize,
    lanes: usize,
) -> Fig8Row {
    let mut env = crate::fixture::deploy_sharded(seed, sessions + samples, true, shards, lanes);
    env.kernel.set_delivery_cache_capacity(0);
    for user in 0..sessions {
        env.request_ok("bench", user, &[]);
    }
    env.client.driver.reset_log();

    let mut fresh_user = sessions;
    let mut cached_rr = 0usize;
    let mut issued = 0usize;
    let mut issue_next = |env: &mut BenchEnv, issued: &mut usize| {
        let user = if (*issued).is_multiple_of(LATENCY_CONCURRENCY) {
            let u = fresh_user;
            fresh_user += 1;
            u
        } else {
            cached_rr += 1;
            cached_rr % sessions.max(1)
        };
        *issued += 1;
        env.issue("bench", user, &[])
    };

    for _ in 0..LATENCY_CONCURRENCY {
        issue_next(&mut env, &mut issued);
    }
    let mut completed_seen = 0usize;
    let mut stalled = 0u32;
    while completed_seen < samples {
        for _ in 0..40 {
            if !env.kernel.step() {
                break;
            }
        }
        for lane in 0..env.client.driver.lanes() {
            env.client.driver.poll_lane(&env.kernel, lane);
        }
        let done = env.client.driver.completed();
        while issued - done < LATENCY_CONCURRENCY && issued < sessions + samples {
            issue_next(&mut env, &mut issued);
        }
        if done == completed_seen && env.kernel.queue_len() == 0 {
            stalled += 1;
            assert!(
                stalled < 100,
                "sharded latency workload stalled at {done} completions"
            );
        } else {
            stalled = 0;
        }
        completed_seen = done;
    }
    env.kernel.run();
    for lane in 0..env.client.driver.lanes() {
        env.client.driver.poll_lane(&env.kernel, lane);
    }

    let lat = env.client.driver.latencies_us();
    assert!(
        lat.len() >= samples,
        "sharded latency workload lost requests: {} of {issued}",
        lat.len()
    );
    let median = asbestos_net::percentile(&lat, 50.0).unwrap_or(0.0);
    let p90 = asbestos_net::percentile(&lat, 90.0).unwrap_or(0.0);
    Fig8Row {
        server: format!("OKWS, {sessions} sessions, {shards}x{lanes}"),
        median_us: median,
        p90_us: p90,
    }
}

/// Figure 8's baseline rows at concurrency 4.
pub fn baseline_latencies(seed: u64) -> Vec<Fig8Row> {
    let costs = UnixCosts::default();
    let mut rows = Vec::new();
    for model in [mod_apache(&costs), apache_cgi(&costs)] {
        let run = run_closed_loop(&model, LATENCY_CONCURRENCY, 8_000, seed);
        rows.push(Fig8Row {
            server: model.name.to_string(),
            median_us: run.percentile_us(50.0),
            p90_us: run.percentile_us(90.0),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Shared output helpers.
// ---------------------------------------------------------------------

/// The session counts Figure 7 and Figure 9 sweep.
pub const SWEEP_SESSIONS: [usize; 7] = [1, 100, 1000, 3000, 5000, 7500, 10_000];

/// A smaller sweep for quick runs (`--quick`).
pub const QUICK_SWEEP_SESSIONS: [usize; 4] = [1, 100, 500, 1000];

/// Parses a `--quick` flag from args.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The sweep to use given the flag.
pub fn sweep_sessions() -> Vec<usize> {
    if quick_mode() {
        QUICK_SWEEP_SESSIONS.to_vec()
    } else {
        SWEEP_SESSIONS.to_vec()
    }
}

/// Returns a `BenchEnv` suitable for microbenches (one user, one session).
pub fn micro_env(seed: u64) -> BenchEnv {
    let mut env = deploy(seed, 1, true);
    env.request_ok("bench", 0, &[]);
    env
}
