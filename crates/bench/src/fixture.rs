//! Standard OKWS deployments and workloads for the evaluation.

use asbestos_kernel::Kernel;
use asbestos_okws::logic::{EchoStore, ParamLength};
use asbestos_okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};

/// The paper's client concurrency for the latency experiment (§9.2.2).
pub const LATENCY_CONCURRENCY: usize = 4;

/// Connections per user in the throughput workload (§9.2.1: "each user
/// connected to its session exactly four times").
pub const CONNS_PER_USER: usize = 4;

/// A deployed OKWS with its kernel and client.
pub struct BenchEnv {
    /// The kernel everything runs in.
    pub kernel: Kernel,
    /// The deployment.
    pub okws: Okws,
    /// The HTTP client driver.
    pub client: OkwsClient,
    /// Configured usernames (passwords are `pw-{name}`).
    pub users: Vec<String>,
}

/// Username for user `i`.
pub fn user_name(i: usize) -> String {
    format!("u{i}")
}

fn password(name: &str) -> String {
    format!("pw-{name}")
}

/// Deploys OKWS with `users` accounts and the given service mix.
///
/// * `"bench"` runs [`ParamLength`] — §9.2's parameterized-response
///   service (144-byte responses by default).
/// * `"store"` runs [`EchoStore`] — §9.1's ~1 KiB session-state service.
///
/// `tidy` controls the workers' `ep_clean` discipline (Figure 6's
/// cached-vs-active experiments).
pub fn deploy(seed: u64, users: usize, tidy: bool) -> BenchEnv {
    deploy_sharded(seed, users, tidy, 1, 1)
}

/// Deploys OKWS on a sharded kernel with a multi-lane netd front end.
/// `shards = 1, lanes = 1` is the paper-faithful configuration
/// ([`deploy`]); higher counts are the scaling series of
/// `BENCH_okws_shards.json`.
pub fn deploy_sharded(
    seed: u64,
    users: usize,
    tidy: bool,
    shards: usize,
    lanes: usize,
) -> BenchEnv {
    let mut kernel = Kernel::new_sharded(seed, shards);
    let mut config = OkwsConfig::new(80).sharded(shards).lanes(lanes);
    let bench = ServiceSpec::new("bench", || Box::new(ParamLength));
    let store = ServiceSpec::new("store", || Box::new(EchoStore::new()));
    config
        .services
        .push(if tidy { bench } else { bench.untidy() });
    config
        .services
        .push(if tidy { store } else { store.untidy() });
    for i in 0..users {
        let name = user_name(i);
        let pw = password(&name);
        config.users.push((name, pw));
    }
    let okws = Okws::start(&mut kernel, config);
    let client = OkwsClient::new(&okws);
    BenchEnv {
        kernel,
        okws,
        client,
        users: (0..users).map(user_name).collect(),
    }
}

impl BenchEnv {
    /// Issues one request for `user` against `service` and returns the
    /// driver request index (run the kernel to completion separately).
    pub fn issue(&mut self, service: &str, user_idx: usize, extra: &[(&str, &str)]) -> usize {
        let user = user_name(user_idx);
        let pw = password(&user);
        self.client
            .request(&mut self.kernel, service, &user, &pw, extra)
    }

    /// Issues a request and runs to completion; panics on a missing or
    /// non-200 response (the benches must not silently measure failures).
    pub fn request_ok(&mut self, service: &str, user_idx: usize, extra: &[(&str, &str)]) {
        let idx = self.issue(service, user_idx, extra);
        self.kernel.run();
        self.client.driver.poll(&self.kernel);
        let (status, _body) = self
            .client
            .parse_response(idx)
            .unwrap_or_else(|| panic!("request {idx} for user {user_idx} got no response"));
        assert_eq!(status, 200, "request {idx} for user {user_idx} failed");
    }

    /// Establishes one session per user on `service` (the session-building
    /// phase of every experiment). Uses `data` as the stored state for
    /// store-service sessions.
    pub fn build_sessions(&mut self, service: &str, data: Option<&str>) {
        let extra: Vec<(&str, &str)> = match data {
            Some(d) => vec![("data", d)],
            None => vec![],
        };
        for i in 0..self.users.len() {
            self.request_ok(service, i, &extra);
        }
    }
}
