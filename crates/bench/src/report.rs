//! Machine-readable benchmark reports.
//!
//! Perf-tracking benches (`scale_shards`, `ablation_delivery_cache`)
//! write a small JSON file at the repository root — `BENCH_shards.json`,
//! `BENCH_delivery_cache.json` — so the perf trajectory is tracked in
//! version control across PRs. The writer is deliberately dependency-free
//! (the container vendors no serde): reports are flat lists of numeric /
//! string fields, which is all a trend line needs.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One measurement row: a name plus flat key→value fields.
pub struct BenchRow {
    /// Row identifier (e.g. `"shards=4/cache=off"`).
    pub name: String,
    /// Numeric fields, in insertion order.
    pub fields: Vec<(String, f64)>,
}

/// A whole report: schema name plus rows.
pub struct BenchReport {
    name: &'static str,
    rows: Vec<BenchRow>,
    summary: Vec<(String, f64)>,
}

impl BenchReport {
    /// Creates an empty report called `name`.
    pub fn new(name: &'static str) -> BenchReport {
        BenchReport {
            name,
            rows: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Appends one measurement row.
    pub fn push_row(&mut self, name: impl Into<String>, fields: &[(&str, f64)]) {
        self.rows.push(BenchRow {
            name: name.into(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Sets a headline summary field (e.g. the 1→4 shard speedup).
    pub fn push_summary(&mut self, key: impl Into<String>, value: f64) {
        self.summary.push((key.into(), value));
    }

    /// Renders the report as JSON (stable field order, 3 decimal places).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.0}")
            } else {
                format!("{v:.3}")
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.name);
        let _ = writeln!(out, "  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = row
                .fields
                .iter()
                .map(|(k, v)| format!("\"{k}\": {}", num(*v)))
                .collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", {}}}{comma}",
                row.name,
                fields.join(", ")
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"summary\": {{");
        for (i, (k, v)) in self.summary.iter().enumerate() {
            let comma = if i + 1 < self.summary.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{k}\": {}{comma}", num(*v));
        }
        let _ = writeln!(out, "  }}");
        let _ = write!(out, "}}");
        out
    }

    /// Writes `BENCH_<suffix>.json` at the repository root and reports the
    /// path. Call only from real measurement runs — `--test` mode numbers
    /// are meaningless and must not overwrite tracked results.
    pub fn write_at_repo_root(&self, suffix: &str) {
        let path: PathBuf = [
            env!("CARGO_MANIFEST_DIR"),
            "..",
            "..",
            &format!("BENCH_{suffix}.json"),
        ]
        .iter()
        .collect();
        match std::fs::write(&path, self.to_json() + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("could not write {}: {err}", path.display()),
        }
    }
}

/// True when the bench binary runs in `--test` mode (CI smoke): bodies
/// execute once and no JSON must be written.
pub fn bench_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Reads the committed `BENCH_<suffix>.json` at the repository root, or
/// `None` when no baseline has been committed yet (first run).
pub fn read_committed(suffix: &str) -> Option<String> {
    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "..",
        "..",
        &format!("BENCH_{suffix}.json"),
    ]
    .iter()
    .collect();
    std::fs::read_to_string(path).ok()
}

/// Extracts field `key` from the row named `row` in a report produced by
/// [`BenchReport::to_json`]. The format is this crate's own flat writer
/// output — one row object per line — so a line scan is a full parser
/// for it; a row or key that is not present yields `None`.
pub fn committed_field(json: &str, row: &str, key: &str) -> Option<f64> {
    let row_tag = format!("\"name\": \"{row}\"");
    let key_tag = format!("\"{key}\": ");
    for line in json.lines() {
        if !line.contains(&row_tag) {
            continue;
        }
        let rest = &line[line.find(&key_tag)? + key_tag.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        return rest[..end].parse().ok();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let mut r = BenchReport::new("demo");
        r.push_row("a=1", &[("msgs_per_sec", 1234.5678), ("count", 3.0)]);
        r.push_summary("speedup", 2.5);
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"msgs_per_sec\": 1234.568"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"speedup\": 2.500"));
    }

    #[test]
    fn committed_field_round_trips() {
        let mut r = BenchReport::new("demo");
        r.push_row("base/4x4", &[("p99_us", 1234.5678), ("goodput_rps", 42.0)]);
        let json = r.to_json();
        assert_eq!(committed_field(&json, "base/4x4", "p99_us"), Some(1234.568));
        assert_eq!(
            committed_field(&json, "base/4x4", "goodput_rps"),
            Some(42.0)
        );
        assert_eq!(committed_field(&json, "base/4x4", "missing"), None);
        assert_eq!(committed_field(&json, "other", "p99_us"), None);
    }
}
