//! Federation at scale: the Baseline scenario measured across a
//! multi-kernel cluster, kernels {1,2} × shards {1,4}.
//!
//! Each row is one deployment point of the federated engine
//! (`asbestos_loadgen::run_federated`): front end on kernel 0, workers
//! on the rest, every request/response crossing the switch as serialized
//! frames with labels in wire form. Alongside the usual latency and
//! goodput fields, each row records what the wire saw — frames, bytes,
//! relayed `Forward`s, and bytes per request — so the serialization cost
//! of federation is tracked in version control, not just its latency.
//!
//! Real runs (`cargo bench -p asbestos-bench --bench cluster`) write
//! `BENCH_cluster.json` at the repo root; `--test` mode (CI smoke) runs
//! the same full-size rows (the sweep is small) and writes nothing.
//!
//! **Always-on regression gate:** the `baseline-fed/k2/4x4` row — two
//! kernels, four shards each — is checked against the committed
//! `BENCH_cluster.json`: fresh p99 may not exceed the committed value by
//! more than [`GATE_SLACK`], and goodput may not fall below
//! committed/[`GATE_SLACK`]. The run is deterministic under its seed, so
//! the slack only absorbs deliberate retunes riding along with a PR;
//! silent regressions on the federated hot path (codec, gateway, switch)
//! fail CI.

use asbestos_bench::report::{bench_test_mode, committed_field, read_committed, BenchReport};
use asbestos_loadgen::{run_federated, Baseline, FederatedReport};
use criterion::{criterion_group, criterion_main, Criterion};

/// Multiplicative slack on the gate: measured p99 ≤ committed × slack,
/// measured goodput ≥ committed ÷ slack.
const GATE_SLACK: f64 = 1.25;

/// The federation sweep: kernel count × per-kernel shard count (lanes
/// track shards, as in the latency bench's deployment grid).
const SWEEP: [(usize, usize); 4] = [(1, 1), (1, 4), (2, 1), (2, 4)];

fn push_row(report: &mut BenchReport, fed: &FederatedReport) {
    let r = &fed.report;
    println!(
        "k{} {} | wire: {} frames, {} bytes, {} forwards",
        fed.kernels,
        r.summary_line(),
        fed.wire_frames,
        fed.wire_bytes,
        fed.forwarded
    );
    let per_req = if r.issued > 0 {
        fed.wire_bytes as f64 / r.issued as f64
    } else {
        0.0
    };
    report.push_row(
        format!("baseline-fed/k{}/{}x{}", fed.kernels, r.shards, r.lanes),
        &[
            ("kernels", fed.kernels as f64),
            ("users", r.users as f64),
            ("issued", r.issued as f64),
            ("completed", r.completed as f64),
            ("goodput_rps", r.goodput_rps),
            ("p50_us", r.fresh.p50_us),
            ("p99_us", r.fresh.p99_us),
            ("p999_us", r.fresh.p999_us),
            ("mean_us", r.fresh.mean_us),
            ("max_us", r.fresh.max_us),
            ("elapsed_us", r.elapsed_us),
            ("shard_imbalance", r.shard_imbalance),
            ("wire_frames", fed.wire_frames as f64),
            ("wire_bytes", fed.wire_bytes as f64),
            ("forwarded", fed.forwarded as f64),
            ("wire_bytes_per_req", per_req),
        ],
    );
}

fn bench_cluster(c: &mut Criterion) {
    let test_mode = bench_test_mode();
    let mut report = BenchReport::new("cluster");
    let mut gate_row: Option<FederatedReport> = None;

    for (kernels, shards) in SWEEP {
        let mut scenario = Baseline {
            users: 64,
            requests: 512,
            shards,
            lanes: shards,
        };
        let fed = run_federated(&mut scenario, kernels, 0xFED0);
        let r = &fed.report;
        assert_eq!(r.completed, r.issued, "federated baseline lost requests");
        assert_eq!(r.retries, 0, "sub-capacity traffic must never shed");
        if kernels > 1 {
            assert!(
                fed.forwarded as usize >= r.issued,
                "requests never crossed the switch"
            );
        }
        if (kernels, shards) == (2, 4) {
            gate_row = Some(fed.clone());
        }
        push_row(&mut report, &fed);
    }

    // The always-on gate against the committed federated baseline.
    let fresh = gate_row.expect("the k2/4x4 row always runs");
    report.push_summary("gate_p99_us", fresh.report.fresh.p99_us);
    report.push_summary("gate_goodput_rps", fresh.report.goodput_rps);
    match read_committed("cluster") {
        Some(json) => {
            let committed_p99 = committed_field(&json, "baseline-fed/k2/4x4", "p99_us")
                .expect("committed BENCH_cluster.json has the gate row's p99_us");
            let committed_goodput = committed_field(&json, "baseline-fed/k2/4x4", "goodput_rps")
                .expect("committed BENCH_cluster.json has the gate row's goodput_rps");
            println!(
                "gate: p99 {:.1}us vs committed {committed_p99:.1}us, \
                 goodput {:.0} rps vs committed {committed_goodput:.0} rps",
                fresh.report.fresh.p99_us, fresh.report.goodput_rps
            );
            assert!(
                fresh.report.fresh.p99_us <= committed_p99 * GATE_SLACK,
                "federated baseline k2/4x4 p99 regressed: {:.1}us vs committed \
                 {:.1}us (slack {GATE_SLACK}x) — if the change is intentional, \
                 rerun `cargo bench -p asbestos-bench --bench cluster` and \
                 commit the refreshed BENCH_cluster.json",
                fresh.report.fresh.p99_us,
                committed_p99
            );
            assert!(
                fresh.report.goodput_rps >= committed_goodput / GATE_SLACK,
                "federated baseline k2/4x4 goodput regressed: {:.0} rps vs \
                 committed {:.0} rps (slack {GATE_SLACK}x) — if the change is \
                 intentional, rerun `cargo bench -p asbestos-bench --bench \
                 cluster` and commit the refreshed BENCH_cluster.json",
                fresh.report.goodput_rps,
                committed_goodput
            );
        }
        None => println!("no committed BENCH_cluster.json — gate skipped (first run)"),
    }

    if !test_mode {
        report.write_at_repo_root("cluster");
    }

    // Keep the benchmark visible in `--test` listings.
    c.bench_function("cluster/federated-baseline", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
