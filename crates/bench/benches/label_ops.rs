//! Microbenchmarks of the label algebra: `⊑`/`⊔`/`⊓` and the fused
//! delivery check at the label sizes the OKWS evaluation produces
//! (§5.6's linear scaling, measured on the host).

use asbestos_labels::{ops, Handle, Label, Level};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn label_with_entries(n: usize, level: Level) -> Label {
    let pairs: Vec<(Handle, Level)> = (0..n)
        .map(|i| (Handle::from_raw(i as u64 * 7 + 1), level))
        .collect();
    Label::from_pairs(Level::L1, &pairs)
}

fn bench_leq(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_leq");
    for &n in &[1usize, 64, 1024, 10_000, 20_000] {
        let a = label_with_entries(n, Level::Star);
        let b = label_with_entries(n, Level::L3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.leq(black_box(&b))))
        });
    }
    group.finish();
}

fn bench_lub(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_lub");
    for &n in &[64usize, 1024, 10_000] {
        let a = label_with_entries(n, Level::Star);
        let b = label_with_entries(n, Level::L3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.lub(black_box(&b))))
        });
    }
    group.finish();
}

fn bench_lub_fast_path(c: &mut Criterion) {
    // The §5.6 min/max fast path: L ⊔ {⋆} clones instead of merging.
    let big = label_with_entries(10_000, Level::L3);
    let bottom = Label::bottom();
    c.bench_function("label_lub_fast_path_10000", |bench| {
        bench.iter(|| black_box(big.lub(black_box(&bottom))))
    });
}

fn bench_delivery_check(c: &mut Criterion) {
    // The kernel's hot path: E_S ⊑ (Q_R ⊔ D_R) ⊓ V ⊓ p_R with a
    // netd-shaped receive label (one taint handle raised per session).
    let mut group = c.benchmark_group("check_delivery");
    for &sessions in &[1usize, 1000, 10_000] {
        let es = label_with_entries(4, Level::L3);
        let qr = {
            let pairs: Vec<(Handle, Level)> = (0..sessions)
                .map(|i| (Handle::from_raw(i as u64 * 7 + 1), Level::L3))
                .collect();
            Label::from_pairs(Level::L2, &pairs)
        };
        let dr = Label::bottom();
        let v = Label::top();
        let pr = Label::top();
        group.bench_with_input(
            BenchmarkId::from_parameter(sessions),
            &sessions,
            |bench, _| bench.iter(|| black_box(ops::check_delivery(&es, &qr, &dr, &v, &pr))),
        );
    }
    group.finish();
}

fn bench_contamination(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_contamination");
    for &n in &[64usize, 1024, 10_000] {
        let qs = label_with_entries(n, Level::Star);
        let ds = Label::top();
        let es = label_with_entries(4, Level::L3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(ops::apply_receive_contamination(&qs, &ds, &es)))
        });
    }
    group.finish();
}

fn bench_handle_alloc(c: &mut Criterion) {
    use asbestos_labels::HandleAllocator;
    c.bench_function("handle_alloc", |bench| {
        let mut alloc = HandleAllocator::new(7);
        bench.iter(|| black_box(alloc.alloc()))
    });
}

criterion_group!(
    benches,
    bench_leq,
    bench_lub,
    bench_lub_fast_path,
    bench_delivery_check,
    bench_contamination,
    bench_handle_alloc
);
criterion_main!(benches);
