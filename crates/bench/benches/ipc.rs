//! IPC round-trip microbenchmarks: kernel send/deliver costs in host time
//! (the virtual-cycle costs are what the figures use; these measure the
//! simulator itself).

use asbestos_kernel::util::{service_with_start, Recorder};
use asbestos_kernel::{Category, Kernel, Label, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_send_deliver(c: &mut Criterion) {
    c.bench_function("ipc_send_deliver", |bench| {
        let mut kernel = Kernel::new(1);
        let (rec, _log) = Recorder::new("r.port");
        kernel.spawn("receiver", Category::Other, Box::new(rec));
        let port = kernel.global_env("r.port").unwrap().as_handle().unwrap();
        bench.iter(|| {
            kernel.inject(port, Value::U64(7));
            black_box(kernel.run())
        });
    });
}

fn bench_ping_pong(c: &mut Criterion) {
    c.bench_function("ipc_ping_pong", |bench| {
        let mut kernel = Kernel::new(2);
        let (rec, _log) = Recorder::new("sink.port");
        kernel.spawn("sink", Category::Other, Box::new(rec));
        kernel.spawn(
            "echo",
            Category::Other,
            service_with_start(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("echo.port", Value::Handle(p));
                },
                |sys, msg| {
                    let sink = sys.env("sink.port").unwrap().as_handle().unwrap();
                    sys.send(sink, msg.body.clone()).unwrap();
                },
            ),
        );
        let port = kernel.global_env("echo.port").unwrap().as_handle().unwrap();
        bench.iter(|| {
            kernel.inject(port, Value::U64(1));
            black_box(kernel.run())
        });
    });
}

criterion_group!(benches, bench_send_deliver, bench_ping_pong);
criterion_main!(benches);
