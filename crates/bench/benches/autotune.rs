//! Self-tuning runtime versus every static configuration.
//!
//! The PR 7 acceptance bench. One request pipeline — the repeated-tuple
//! kernel workload feeding per-request durable WAL appends — is run
//! under every static (delivery-cache capacity × WAL group-commit
//! batch) configuration and once with the tuner armed, on two user
//! populations:
//!
//! * **zipf** — per-user send rates follow `1/rank^s` (s = 1.1) with
//!   senders pinned `user % shards`, so shard 0 hosts the heavy ranks
//!   and cliffs while the rest idle. The regime every static knob
//!   setting is wrong for somewhere.
//! * **uniform** — the balanced PR 3 regime; the tuner has nothing to
//!   fix and must cost (approximately) nothing.
//!
//! The tuned run starts from the *worst* static corner — the thrashing
//! 16-entry cache and the sync-per-record batch — and must climb out by
//! itself: the cache loop grows each shard's bound out of thrash, the
//! steal loop migrates hot sink processes (whole per-port queues and
//! all) off shard 0, and the WAL loop grows the group-commit batch
//! under the append pressure. Statics keep whatever they were given.
//!
//! **Metric.** `wall_msgs_per_sec`: delivered messages over the sum of
//! the kernel term (per round, the busiest shard's measured
//! `busy_nanos` advance — shards model parallel cores, so the busiest
//! shard bounds an adequately-cored host's wall clock) and the WAL term
//! (host-elapsed time of the round's durable appends). Both terms are
//! where the respective knobs bite: a thrashing cache and a hot shard
//! inflate the kernel term, an undersized group commit inflates the WAL
//! term. Every configuration runs the sequential sweep (`workers = 1`)
//! so shard drain windows never overlap and per-shard `busy_nanos` is a
//! true attribution on any host; the tuned run arms the loop through
//! the explicit [`asbestos_kernel::Kernel::set_tuning_enabled`]
//! override, which exists precisely for this.
//!
//! **Always-on gates** (test mode and full runs alike):
//! * zipf: tuned strictly beats every static cell.
//! * uniform: tuned ≥ 0.95× the best static cell.
//!
//! Real runs (`cargo bench -p asbestos-bench --bench autotune`) write
//! `BENCH_autotune.json` at the repo root; `--test` mode (CI smoke)
//! runs a short sweep and writes nothing.

use asbestos_bench::report::{bench_test_mode, BenchReport};
use asbestos_bench::workload_tuples::{
    deploy_repeated_tuple, trigger_round, PayloadMode, TupleWorkload,
};
use asbestos_db::{DurableDb, SqlValue};
use asbestos_kernel::{DefaultPolicy, DEFAULT_DELIVERY_CACHE_CAP};
use asbestos_store::MemDev;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Concurrent user sessions (32 distinct delivery tuples — deliberately
/// more than [`SMALL_CAP`] so the small cache genuinely thrashes).
const USERS: usize = 32;
/// Explicit label entries per user (the Figure 4 evaluation cost paid
/// on every cache miss).
const ENTRIES: u64 = 48;
/// Mean messages per user per round (the Zipf mode redistributes the
/// total across ranks, keeping it fixed).
const BURST: usize = 64;
/// Per-delivery synthetic service work on the sink's shard — the cost
/// that actually migrates when a port is stolen.
const SINK_SPIN: u32 = 600;
/// Zipf exponent for the skewed population.
const ZIPF_S: f64 = 1.1;
/// Kernel shards.
const SHARDS: usize = 4;
/// One durable mutation logged per this many delivered messages.
const LOG_EVERY: u64 = 8;

/// The static delivery-cache capacities swept: a cache too small for
/// the *per-shard* user population (8 users per shard at 4 shards, so a
/// 4-entry LRU thrashes), and the deploy-time default.
const STATIC_CAPS: [usize; 2] = [SMALL_CAP, DEFAULT_DELIVERY_CACHE_CAP];
const SMALL_CAP: usize = 4;
/// The static WAL group-commit batches swept.
const STATIC_BATCHES: [usize; 3] = [1, 32, 256];

/// Rounds the tuner (and every static, identically) gets to reach
/// steady state before measurement starts.
const WARM_ROUNDS: usize = 8;
/// Measured rounds (full run; test mode shortens).
const ROUNDS: usize = 16;

/// One cell of the sweep: `None` batch/cap fields never occur — a cell
/// is either fully static or the tuned configuration.
#[derive(Clone, Copy)]
enum Config {
    Static { cache_cap: usize, batch: usize },
    Tuned,
}

impl Config {
    fn label(&self) -> String {
        match self {
            Config::Static { cache_cap, batch } => format!("static/cap={cache_cap}/batch={batch}"),
            Config::Tuned => "tuned".into(),
        }
    }
}

struct Measured {
    wall_msgs_per_sec: f64,
    delivered: u64,
    kernel_secs: f64,
    wal_secs: f64,
    steals: u64,
    cache_resizes: u64,
    wal_grows: u64,
    wal_shrinks: u64,
    /// Per-shard final cache capacity / queue-depth HWM / PortQueueFull
    /// drops (the hot-shard collapse observables, per shard per row).
    per_shard: Vec<(usize, u64, u64)>,
}

/// Builds the workload for one population.
fn workload(zipf_s: f64) -> TupleWorkload {
    TupleWorkload {
        users: USERS,
        entries: ENTRIES,
        burst: BURST,
        handle_base: 0x10_0000,
        handle_stride: 0x1000,
        per_user_sinks: true,
        cross_shard: false,
        payload: PayloadMode::None,
        zipf_s,
        sink_spin: SINK_SPIN,
    }
}

/// The tuner thresholds for this bench. Same policy, same logic as the
/// deploy default — scaled to the bench's sub-millisecond observation
/// windows (one window per drain round; a production window sees far
/// more traffic): the activity floor drops accordingly, and the
/// imbalance detector is made stricter (1.5× mean for 3 consecutive
/// windows) because short windows wear proportionally more host-timer
/// jitter — the Zipf hot shard sits at ~1.6× mean, well past it, while
/// balanced-load jitter stays under it.
fn bench_policy() -> DefaultPolicy {
    let mut p = DefaultPolicy::default();
    p.min_busy_nanos = 30_000;
    p.steal_ratio = 1.5;
    p.steal_patience = 3;
    p
}

/// Runs one configuration over one population; returns the measurement.
fn run_config(cfg: Config, zipf_s: f64, rounds: usize) -> Measured {
    let w = workload(zipf_s);
    let (cache_cap, tuned) = match cfg {
        Config::Static { cache_cap, .. } => (cache_cap, false),
        // Tuned starts from the worst static cache corner and must grow
        // out of it.
        Config::Tuned => (SMALL_CAP, true),
    };
    let (mut kernel, triggers) = deploy_repeated_tuple(0xBEEF, SHARDS, cache_cap, &w);
    // Sequential sweep on every configuration: one worker means shard
    // drain windows never overlap, so per-shard `busy_nanos` attributes
    // each nanosecond to the shard that actually spent it — on any host,
    // including single-core CI. The tuned run arms the loop through the
    // explicit override (ambient tuning stays off under the sequential
    // sweep so the golden suites hold).
    kernel.set_worker_threads(1);
    kernel.set_tuning_enabled(tuned);
    if tuned {
        kernel.set_tune_policy(Box::new(bench_policy()));
    }

    // The durable side: one WAL'd mutation per LOG_EVERY deliveries,
    // group-committed per the configuration. The table is cleared and
    // the WAL compacted at a fixed bound so per-sync cost reaches a
    // steady state instead of growing with run length.
    let mut db = DurableDb::open(Box::new(MemDev::new()));
    db.apply_ddl("CREATE TABLE req (v)");
    db.flush();
    db.set_compact_threshold(256 * 1024);
    match cfg {
        Config::Static { batch, .. } => db.set_group_commit(batch),
        Config::Tuned => db.set_group_commit_auto(1, 256),
    }

    // Per-round samples (measured rounds only). The score reads the
    // *fastest* round: the host may run more worker threads than cores,
    // in which case OS preemption lands inside random shards' drain
    // windows and inflates that round's busiest-shard figure by a
    // scheduler-dependent amount — every round wears some of it, so
    // sums and medians both measure the scheduler more than the kernel.
    // Each measured round performs identical work, so the least-
    // preempted round is the cleanest observation of the true cost,
    // exactly like taking the best of N timing runs.
    let mut kernel_rounds: Vec<u64> = Vec::new();
    let mut wal_rounds: Vec<u64> = Vec::new();
    let mut delivered_measured = 0u64;
    let mut last_delivered = kernel.stats().delivered;
    for round in 0..(WARM_ROUNDS + rounds) {
        let busy_before: Vec<u64> = (0..SHARDS).map(|i| kernel.shard(i).busy_nanos()).collect();
        trigger_round(&mut kernel, &triggers);
        let busiest = (0..SHARDS)
            .map(|i| kernel.shard(i).busy_nanos() - busy_before[i])
            .max()
            .unwrap_or(0);
        let delivered = kernel.stats().delivered - last_delivered;
        last_delivered = kernel.stats().delivered;

        // Append the round's mutations and clear the table; syncs fire
        // whenever the group-commit batch fills (no forced round-end
        // flush — that would hand every configuration a free under-
        // filled sync and hide exactly the latency/amortization
        // trade-off the batch knob controls).
        let records = delivered / LOG_EVERY;
        let wal_start = Instant::now();
        for i in 0..records {
            db.worker_exec("INSERT INTO req VALUES (?)", &[SqlValue::Int(i as i64)], 1);
        }
        db.worker_exec("DELETE FROM req", &[], 1);
        let wal = wal_start.elapsed().as_nanos() as u64;

        if round >= WARM_ROUNDS {
            kernel_rounds.push(busiest);
            wal_rounds.push(wal);
            delivered_measured += delivered;
        }
    }

    let fastest = |xs: &[u64]| -> u64 { xs.iter().copied().min().unwrap_or(0) };
    let kernel_nanos = fastest(&kernel_rounds) * rounds as u64;
    let wal_nanos = fastest(&wal_rounds) * rounds as u64;
    let total_secs = (kernel_nanos + wal_nanos) as f64 / 1e9;
    let (wal_grows, wal_shrinks) = db.group_commit_transitions();
    let stats = kernel.stats();
    Measured {
        wall_msgs_per_sec: delivered_measured as f64 / total_secs,
        delivered: delivered_measured,
        kernel_secs: kernel_nanos as f64 / 1e9,
        wal_secs: wal_nanos as f64 / 1e9,
        steals: stats.steals,
        cache_resizes: stats.cache_resizes,
        wal_grows,
        wal_shrinks,
        per_shard: (0..SHARDS)
            .map(|i| {
                let s = kernel.shard(i).stats();
                (
                    kernel.shard(i).delivery_cache_capacity(),
                    s.queue_depth_hwm,
                    s.dropped_queue_full,
                )
            })
            .collect(),
    }
}

fn bench_autotune(c: &mut Criterion) {
    let test_mode = bench_test_mode();
    let rounds = if test_mode { 6 } else { ROUNDS };

    let mut report = BenchReport::new("autotune");
    for (pop, zipf_s) in [("zipf", ZIPF_S), ("uniform", 0.0)] {
        let mut statics: Vec<(String, f64)> = Vec::new();
        let mut tuned_wall = 0.0;
        let mut configs: Vec<Config> = Vec::new();
        for &cache_cap in &STATIC_CAPS {
            for &batch in &STATIC_BATCHES {
                configs.push(Config::Static { cache_cap, batch });
            }
        }
        configs.push(Config::Tuned);

        for cfg in configs {
            let m = run_config(cfg, zipf_s, rounds);
            let label = cfg.label();
            println!(
                "autotune/{pop}/{label}: {:.0} wall msg/s \
                 (kernel {:.1} ms, wal {:.1} ms, steals {}, cache resizes {}, \
                 wal grows/shrinks {}/{})",
                m.wall_msgs_per_sec,
                m.kernel_secs * 1e3,
                m.wal_secs * 1e3,
                m.steals,
                m.cache_resizes,
                m.wal_grows,
                m.wal_shrinks,
            );
            let mut fields = vec![
                ("wall_msgs_per_sec".to_string(), m.wall_msgs_per_sec),
                ("delivered".to_string(), m.delivered as f64),
                ("kernel_secs".to_string(), m.kernel_secs),
                ("wal_secs".to_string(), m.wal_secs),
                ("steals".to_string(), m.steals as f64),
                ("cache_resizes".to_string(), m.cache_resizes as f64),
                ("wal_batch_grows".to_string(), m.wal_grows as f64),
                ("wal_batch_shrinks".to_string(), m.wal_shrinks as f64),
                ("shards".to_string(), SHARDS as f64),
                ("users".to_string(), USERS as f64),
                ("zipf_s".to_string(), zipf_s),
            ];
            for (i, &(cap, hwm, drops)) in m.per_shard.iter().enumerate() {
                fields.push((format!("cache_cap_s{i}"), cap as f64));
                fields.push((format!("queue_depth_hwm_s{i}"), hwm as f64));
                fields.push((format!("port_queue_full_s{i}"), drops as f64));
            }
            let borrowed: Vec<(&str, f64)> = fields.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            report.push_row(format!("{pop}/{label}"), &borrowed);

            match cfg {
                Config::Static { .. } => statics.push((label, m.wall_msgs_per_sec)),
                Config::Tuned => tuned_wall = m.wall_msgs_per_sec,
            }
        }

        let (best_label, best_static) = statics
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .cloned()
            .unwrap();
        let ratio = tuned_wall / best_static;
        println!(
            "autotune/{pop}: tuned {tuned_wall:.0} vs best static [{best_label}] \
             {best_static:.0} → {ratio:.2}x"
        );
        report.push_summary(format!("{pop}_tuned_over_best_static"), ratio);

        // The always-on gates.
        match pop {
            "zipf" => {
                for (label, wall) in &statics {
                    assert!(
                        tuned_wall > *wall,
                        "tuned must strictly beat every static on the skewed population: \
                         tuned {tuned_wall:.0} ≤ {label} {wall:.0} msg/s"
                    );
                }
            }
            _ => {
                assert!(
                    ratio >= 0.95,
                    "tuning must not regress the uniform population: \
                     tuned/best-static was {ratio:.3}x (floor 0.95x)"
                );
            }
        }
    }

    if !test_mode {
        report.write_at_repo_root("autotune");
    }

    // Keep the benchmark visible in `--test` listings.
    c.bench_function("autotune/sweep", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_autotune);
criterion_main!(benches);
