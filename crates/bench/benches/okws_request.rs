//! End-to-end OKWS request benchmarks: one full HTTP request through netd,
//! ok-demux, a worker event process, and back — at 1 and 1000 cached
//! sessions (host time for the whole simulated pipeline), plus the
//! sharded multi-lane series.
//!
//! **Sharded series** (`BENCH_okws_shards.json`): request wall throughput
//! of the full OKWS pipeline at (shards × netd lanes) ∈ {1×1, 2×2, 4×1,
//! 4×4}. Each round issues one pipelined request per user and runs the
//! kernel to quiescence; throughput denominators follow `scale_shards`:
//!
//! * `virtual_req_per_sec` — completed requests over the busiest shard's
//!   virtual cycle advance (each shard models one 2.8 GHz core);
//! * `wall_req_per_sec` — completed requests over the busiest shard's
//!   *measured busy nanoseconds* (real host time its drain loop ran) —
//!   what an adequately-cored host's wall clock would show, and the
//!   acceptance series: 4-shard/4-lane must beat 1-shard/1-lane ≥ 1.5×
//!   (≥ 1.0× enforced even in CI `--test` mode);
//! * `elapsed_req_per_sec` — end-to-end host elapsed time, recorded so
//!   coordinator overhead stays visible (on a single-core host this
//!   column cannot show parallel speedup).
//!
//! The 4×1 row keeps the *motivation* measurable: a sharded kernel whose
//! netd is still one process leaves the front end serial, and its wall
//! number shows exactly what the multi-queue refactor removes.

use asbestos_bench::report::{bench_test_mode, BenchReport};
use asbestos_bench::{deploy, deploy_sharded, BenchEnv};
use asbestos_kernel::CYCLES_PER_SEC;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench_cached_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("okws_cached_request");
    group.sample_size(20);
    for &sessions in &[1usize, 1000] {
        let mut env = deploy(77, sessions, true);
        // Build every session once.
        for i in 0..sessions {
            env.request_ok("bench", i, &[]);
        }
        let mut rr = 0usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(sessions),
            &sessions,
            |bench, _| {
                bench.iter(|| {
                    rr = (rr + 1) % sessions;
                    env.request_ok("bench", rr, &[]);
                    black_box(env.kernel.now())
                })
            },
        );
    }
    group.finish();
}

fn bench_new_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("okws_new_session");
    group.sample_size(10);
    group.bench_function("request", |bench| {
        // Fresh users drawn from a large pre-registered pool; if a run ever
        // exhausts the pool, the tail iterations degrade to cached hits
        // rather than failing.
        let pool = 50_000;
        let mut env = deploy(78, pool, true);
        let mut next = 0usize;
        bench.iter(|| {
            let user = next % pool;
            next += 1;
            env.request_ok("bench", user, &[]);
            black_box(env.kernel.now())
        });
    });
    group.finish();
}

fn bench_store_roundtrip(c: &mut Criterion) {
    c.bench_function("okws_store_roundtrip", |bench| {
        let mut env = deploy(79, 1, true);
        env.request_ok("store", 0, &[("data", "seed")]);
        bench.iter(|| {
            env.request_ok("store", 0, &[("data", "next")]);
            black_box(env.kernel.now())
        });
    });
}

/// Users (= concurrent pipelined connections per round) in the sharded
/// series.
const LANE_USERS: usize = 32;
/// Measured rounds per configuration.
const LANE_ROUNDS: usize = 24;

/// One pipelined round: a request per user issued up front, then the
/// kernel runs to quiescence — the regime where independent lanes can
/// actually overlap.
fn lane_round(env: &mut BenchEnv) {
    let users = env.users.len();
    for u in 0..users {
        env.issue("bench", u, &[]);
    }
    env.kernel.run();
    env.client.driver.poll(&env.kernel);
    assert_eq!(
        env.client.driver.completed(),
        users,
        "a pipelined round must complete every request"
    );
    env.client.driver.reset_log();
}

/// Request throughput of one (shards, lanes) configuration:
/// `(virtual, wall, elapsed)` requests/sec.
fn lane_throughput(shards: usize, lanes: usize, rounds: usize) -> (f64, f64, f64) {
    let mut env = deploy_sharded(88, LANE_USERS, true, shards, lanes);
    env.build_sessions("bench", None);
    env.client.driver.reset_log();
    // Warm round: session event processes exist, credential cache is hot,
    // the worker pool is built, decision caches converge.
    lane_round(&mut env);
    let cycles_before: Vec<u64> = (0..shards)
        .map(|i| env.kernel.shard(i).clock().now())
        .collect();
    let busy_before: Vec<u64> = (0..shards)
        .map(|i| env.kernel.shard(i).busy_nanos())
        .collect();
    let start = Instant::now();
    for _ in 0..rounds {
        lane_round(&mut env);
    }
    let elapsed = start.elapsed();
    let requests = (rounds * LANE_USERS) as f64;
    let busiest_cycles = (0..shards)
        .map(|i| env.kernel.shard(i).clock().now() - cycles_before[i])
        .max()
        .unwrap_or(1)
        .max(1);
    let busiest_nanos = (0..shards)
        .map(|i| env.kernel.shard(i).busy_nanos() - busy_before[i])
        .max()
        .unwrap_or(1)
        .max(1);
    (
        requests / (busiest_cycles as f64 / CYCLES_PER_SEC as f64),
        requests / (busiest_nanos as f64 / 1e9),
        requests / elapsed.as_secs_f64(),
    )
}

fn bench_lane_scaling(c: &mut Criterion) {
    let test_mode = bench_test_mode();
    // Test mode still averages several rounds: the smoke gate compares
    // two host-time figures, and on a shared CI box a short run is too
    // exposed to scheduler noise (the measured margin is ~2x; averaging
    // 6 rounds keeps a noisy-neighbor stall from eating it).
    let rounds = if test_mode { 6 } else { LANE_ROUNDS };

    let mut report = BenchReport::new("okws_shards");
    let mut wall = Vec::new();
    for &(shards, lanes) in &[(1usize, 1usize), (2, 2), (4, 1), (4, 4)] {
        let (virt, w, elapsed) = lane_throughput(shards, lanes, rounds);
        println!(
            "okws_request/shards={shards}/lanes={lanes}: {virt:.0} virtual req/s, \
             {w:.0} wall req/s, {elapsed:.0} elapsed req/s"
        );
        report.push_row(
            format!("shards={shards}/lanes={lanes}"),
            &[
                ("shards", shards as f64),
                ("lanes", lanes as f64),
                ("virtual_req_per_sec", virt),
                ("wall_req_per_sec", w),
                ("elapsed_req_per_sec", elapsed),
                ("users", LANE_USERS as f64),
            ],
        );
        wall.push(((shards, lanes), w));
    }

    let at = |s: usize, l: usize| {
        wall.iter()
            .find(|((ws, wl), _)| *ws == s && *wl == l)
            .map(|(_, v)| *v)
    };
    if let (Some(base), Some(full)) = (at(1, 1), at(4, 4)) {
        let speedup = full / base;
        println!("okws_request/speedup 1×1 → 4×4 (wall): {speedup:.2}x");
        report.push_summary("wall_speedup_4shard_4lane", speedup);
        if let Some(serial) = at(4, 1) {
            report.push_summary("wall_speedup_4shard_1lane", serial / base);
        }
        // CI smoke gate: the multi-queue front end must never lose to the
        // single netd.
        assert!(
            speedup >= 1.0,
            "multi-queue regression: 4-shard/4-lane OKWS wall throughput fell below \
             1-shard/1-lane ({speedup:.2}x)"
        );
        if !test_mode {
            assert!(
                speedup >= 1.5,
                "the multi-queue front end must scale the request path: 1×1 → 4×4 \
                 wall speedup was {speedup:.2}x (acceptance bar: 1.5x)"
            );
        }
    }

    if !test_mode {
        report.write_at_repo_root("okws_shards");
    }

    // Keep the series visible in `--test` listings.
    c.bench_function("okws_request/lane_scaling", |b| b.iter(|| ()));
}

criterion_group!(
    benches,
    bench_cached_request,
    bench_new_session,
    bench_store_roundtrip,
    bench_lane_scaling
);
criterion_main!(benches);
