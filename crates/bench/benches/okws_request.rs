//! End-to-end OKWS request benchmarks: one full HTTP request through netd,
//! ok-demux, a worker event process, and back — at 1 and 1000 cached
//! sessions (host time for the whole simulated pipeline).

use asbestos_bench::deploy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cached_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("okws_cached_request");
    group.sample_size(20);
    for &sessions in &[1usize, 1000] {
        let mut env = deploy(77, sessions, true);
        // Build every session once.
        for i in 0..sessions {
            env.request_ok("bench", i, &[]);
        }
        let mut rr = 0usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(sessions),
            &sessions,
            |bench, _| {
                bench.iter(|| {
                    rr = (rr + 1) % sessions;
                    env.request_ok("bench", rr, &[]);
                    black_box(env.kernel.now())
                })
            },
        );
    }
    group.finish();
}

fn bench_new_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("okws_new_session");
    group.sample_size(10);
    group.bench_function("request", |bench| {
        // Fresh users drawn from a large pre-registered pool; if a run ever
        // exhausts the pool, the tail iterations degrade to cached hits
        // rather than failing.
        let pool = 50_000;
        let mut env = deploy(78, pool, true);
        let mut next = 0usize;
        bench.iter(|| {
            let user = next % pool;
            next += 1;
            env.request_ok("bench", user, &[]);
            black_box(env.kernel.now())
        });
    });
    group.finish();
}

fn bench_store_roundtrip(c: &mut Criterion) {
    c.bench_function("okws_store_roundtrip", |bench| {
        let mut env = deploy(79, 1, true);
        env.request_ok("store", 0, &[("data", "seed")]);
        bench.iter(|| {
            env.request_ok("store", 0, &[("data", "next")]);
            black_box(env.kernel.now())
        });
    });
}

criterion_group!(
    benches,
    bench_cached_request,
    bench_new_session,
    bench_store_roundtrip
);
criterion_main!(benches);
