//! Ablation: event processes versus forked processes per user — the §6
//! motivation. Compares per-session memory and per-session setup cost
//! between the two isolation models.

use asbestos_baseline::{UnixCosts, UnixSim};
use asbestos_kernel::util::ep_service_fn;
use asbestos_kernel::{Category, Kernel, Label, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Creates one event-process session (the Asbestos model).
fn bench_session_event_process(c: &mut Criterion) {
    c.bench_function("ablation_session_ep", |bench| {
        let mut kernel = Kernel::new(91);
        kernel.spawn_ep_service(
            "worker",
            Category::Okws,
            ep_service_fn(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("w.port", Value::Handle(p));
                },
                |sys, _msg| {
                    // ~1 KiB of session state, like §9.1's toy service.
                    sys.mem_write(0x40000, &[9u8; 1024]).unwrap();
                },
            ),
        );
        let port = kernel.global_env("w.port").unwrap().as_handle().unwrap();
        bench.iter(|| {
            kernel.inject(port, Value::Unit);
            black_box(kernel.run())
        });
    });
}

/// Creates one forked-process session (the conventional model §6 rejects:
/// "forking a separate process per user provides isolation, but may have
/// low performance due to operating system overheads, such as memory").
fn bench_session_fork(c: &mut Criterion) {
    c.bench_function("ablation_session_fork", |bench| {
        let mut sim = UnixSim::new(UnixCosts::default());
        bench.iter(|| {
            let (child, cycles) = sim.fork(1, 96);
            black_box((child, cycles))
        });
    });
}

/// Prints the memory comparison as a one-shot "bench" (criterion requires
/// a timing body; the numbers of interest are the byte totals asserted
/// here, mirroring §6's 44-byte EP vs 320-byte process + address space).
fn bench_memory_comparison(c: &mut Criterion) {
    c.bench_function("ablation_memory_accounting", |bench| {
        bench.iter(|| {
            // Event-process model: 1 private page + ~1 KiB kernel state.
            let ep_bytes_per_session = 4096 + asbestos_kernel::EP_STRUCT_BYTES + 600;
            // Fork model: full process image (96 private pages) + process
            // structure.
            let fork_bytes_per_session = 96 * 4096 + asbestos_kernel::PROCESS_STRUCT_BYTES + 600;
            assert!(fork_bytes_per_session > 50 * ep_bytes_per_session);
            black_box((ep_bytes_per_session, fork_bytes_per_session))
        })
    });
}

criterion_group!(
    benches,
    bench_session_event_process,
    bench_session_fork,
    bench_memory_comparison
);
criterion_main!(benches);
