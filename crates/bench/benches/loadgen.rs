//! Scenario latency at scale: the `asbestos-loadgen` workloads measured
//! end to end, plus the Figure 8 closed loop ported to the sharded
//! multi-lane deployment.
//!
//! Each row is one scenario at one deployment point (`1×1` paper-faithful
//! and `4×4` scaled): open-loop arrivals (queueing delay lands in the
//! tail honestly), Zipf-skewed populations, a full reboot-and-login
//! storm, and a credit-armed flood — with p50/p99/p999 over the *fresh*
//! latency series, the shed-then-retried series kept separate, and
//! goodput against busiest-shard wall clock. Everything runs in virtual
//! cycles under fixed seeds, so the numbers are deterministic and can be
//! compared across commits.
//!
//! Real runs (`cargo bench -p asbestos-bench --bench loadgen`) write
//! `BENCH_latency.json` at the repo root; `--test` mode (CI smoke)
//! shrinks every scenario except the gate row and writes nothing.
//!
//! **Always-on regression gate:** the `baseline/4x4` row — which runs at
//! full size even in test mode, so the comparison is like-for-like — is
//! checked against the committed `BENCH_latency.json`: fresh p99 may not
//! exceed the committed value by more than [`GATE_SLACK`], and goodput
//! may not fall below committed/[`GATE_SLACK`]. The run is deterministic,
//! so the slack only absorbs deliberate retunes riding along with a PR;
//! silent latency regressions on the request hot path fail CI.

use asbestos_bench::okws_latency_sharded;
use asbestos_bench::report::{bench_test_mode, committed_field, read_committed, BenchReport};
use asbestos_loadgen::{
    run_scenario, Baseline, LoginStorm, ScenarioReport, SustainedFlood, ZipfChurn,
};
use criterion::{criterion_group, criterion_main, Criterion};

/// Multiplicative slack on the gate: measured p99 ≤ committed × slack,
/// measured goodput ≥ committed ÷ slack.
const GATE_SLACK: f64 = 1.25;

/// The deployment points every scenario runs at.
const DEPLOYMENTS: [(usize, usize); 2] = [(1, 1), (4, 4)];

/// Baseline at full size (the gate row's configuration — identical in
/// test mode and full runs).
fn baseline_full(shards: usize, lanes: usize) -> Baseline {
    Baseline {
        users: 64,
        requests: 512,
        shards,
        lanes,
    }
}

fn push_scenario(report: &mut BenchReport, r: &ScenarioReport) {
    println!("{}", r.summary_line());
    report.push_row(
        format!("{}/{}x{}", r.scenario, r.shards, r.lanes),
        &[
            ("users", r.users as f64),
            ("issued", r.issued as f64),
            ("completed", r.completed as f64),
            ("aborted", r.aborted as f64),
            ("retries", r.retries as f64),
            ("goodput_rps", r.goodput_rps),
            ("p50_us", r.fresh.p50_us),
            ("p99_us", r.fresh.p99_us),
            ("p999_us", r.fresh.p999_us),
            ("mean_us", r.fresh.mean_us),
            ("max_us", r.fresh.max_us),
            ("retried_count", r.retried.count as f64),
            ("retried_p99_us", r.retried.p99_us),
            ("elapsed_us", r.elapsed_us),
            ("shard_imbalance", r.shard_imbalance),
            ("queue_depth_hwm", r.queue_depth_hwm as f64),
        ],
    );
}

fn bench_loadgen(c: &mut Criterion) {
    let test_mode = bench_test_mode();
    let mut report = BenchReport::new("latency");
    let mut gate_row: Option<ScenarioReport> = None;

    for (shards, lanes) in DEPLOYMENTS {
        // Baseline: always full size — it is the gate row at 4×4.
        let r = run_scenario(&mut baseline_full(shards, lanes), 0xBA5E);
        if (shards, lanes) == (4, 4) {
            gate_row = Some(r.clone());
        }
        push_scenario(&mut report, &r);

        // Heavy-tailed churn over a large population: Zipf-ranked users,
        // logouts, and mid-stream disconnects.
        let (users, requests) = if test_mode { (256, 160) } else { (10_000, 600) };
        let r = run_scenario(
            &mut ZipfChurn::new(users, requests, 1.1, shards, lanes),
            0x21BF,
        );
        push_scenario(&mut report, &r);

        // Reboot and make the whole population log back in at once.
        let users = if test_mode { 24 } else { 96 };
        let r = run_scenario(&mut LoginStorm::new(users, shards, lanes), 0x5708);
        push_scenario(&mut report, &r);

        // Credit-armed flood: one attacker at 10× the victim's rate into
        // a touchy edge; sheds retried to completion.
        let requests = if test_mode { 220 } else { 440 };
        let r = run_scenario(
            &mut SustainedFlood {
                requests,
                flood_factor: 10,
                shards,
                lanes,
            },
            0xF100,
        );
        push_scenario(&mut report, &r);

        // Figure 8's closed loop on the same deployment grid.
        let samples = if test_mode { 60 } else { 250 };
        let row = okws_latency_sharded(1000, samples, 3500, shards, lanes);
        println!(
            "{}: median {:.0}us p90 {:.0}us",
            row.server, row.median_us, row.p90_us
        );
        report.push_row(
            format!("fig8/{shards}x{lanes}"),
            &[
                ("sessions", 1000.0),
                ("samples", samples as f64),
                ("median_us", row.median_us),
                ("p90_us", row.p90_us),
            ],
        );
    }

    // The always-on gate against the committed baseline.
    let fresh = gate_row.expect("the 4x4 baseline always runs");
    report.push_summary("gate_p99_us", fresh.fresh.p99_us);
    report.push_summary("gate_goodput_rps", fresh.goodput_rps);
    match read_committed("latency") {
        Some(json) => {
            let committed_p99 = committed_field(&json, "baseline/4x4", "p99_us")
                .expect("committed BENCH_latency.json has the gate row's p99_us");
            let committed_goodput = committed_field(&json, "baseline/4x4", "goodput_rps")
                .expect("committed BENCH_latency.json has the gate row's goodput_rps");
            println!(
                "gate: p99 {:.1}us vs committed {committed_p99:.1}us, \
                 goodput {:.0} rps vs committed {committed_goodput:.0} rps",
                fresh.fresh.p99_us, fresh.goodput_rps
            );
            assert!(
                fresh.fresh.p99_us <= committed_p99 * GATE_SLACK,
                "baseline 4x4 p99 regressed: {:.1}us vs committed {:.1}us \
                 (slack {GATE_SLACK}x) — if the change is intentional, rerun \
                 `cargo bench -p asbestos-bench --bench loadgen` and commit \
                 the refreshed BENCH_latency.json",
                fresh.fresh.p99_us,
                committed_p99
            );
            assert!(
                fresh.goodput_rps >= committed_goodput / GATE_SLACK,
                "baseline 4x4 goodput regressed: {:.0} rps vs committed {:.0} rps \
                 (slack {GATE_SLACK}x) — if the change is intentional, rerun \
                 `cargo bench -p asbestos-bench --bench loadgen` and commit \
                 the refreshed BENCH_latency.json",
                fresh.goodput_rps,
                committed_goodput
            );
        }
        None => println!("no committed BENCH_latency.json — gate skipped (first run)"),
    }

    if !test_mode {
        report.write_at_repo_root("latency");
    }

    // Keep the benchmark visible in `--test` listings.
    c.bench_function("loadgen/scenarios", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_loadgen);
criterion_main!(benches);
