//! Scaling: messages/second versus kernel shard count.
//!
//! The workload is the OKWS repeated-tuple regime from the PR 1 delivery
//! cache ablation — a pool of per-user senders, each carrying a distinct
//! multi-entry taint label, repeatedly bursting at long-lived service
//! ports — partitioned the way a sharded OKWS partitions users: each
//! user's sender and sink live on the same shard (`partitioned` rows), or
//! deliberately on different shards so every message crosses the router
//! (`routed` rows). Both run with the delivery-decision cache on and off;
//! the cache-off configuration is the pure Figure 4 evaluation cost and
//! is the series both scaling acceptance bars read.
//!
//! **Metrics.** Three throughput numbers per configuration:
//!
//! * `virtual_msgs_per_sec` — delivered messages over the busiest
//!   shard's *virtual cycle* advance (each shard models one 2.8 GHz
//!   core, §9's testbed CPU). Deterministic, models only the charged
//!   label/IPC work; the original PR 2 acceptance series.
//! * `wall_msgs_per_sec` — delivered messages over the busiest shard's
//!   *measured busy time* ([`asbestos_kernel::KernelShard::busy_nanos`]):
//!   real host nanoseconds its drain loop ran, including the per-message
//!   costs the cycle model does not charge — router directory lookups,
//!   inbound-channel mutex pushes and pulls, mailbox bookkeeping.
//!   *Not* included: time spent outside the drain loops, i.e. the
//!   scheduler's per-round condvar handshake and the coordinator's
//!   barrier routing — those land in `elapsed_msgs_per_sec` below, which
//!   is the column to watch for handshake regressions. Shards model
//!   parallel cores, so the busiest shard's busy time is what an
//!   adequately-cored host's wall clock would show; measuring per shard
//!   makes the number meaningful on any host, including the single-core
//!   CI container, where end-to-end elapsed time physically cannot show
//!   parallel speedup. This is the PR 3 acceptance series
//!   (`speedup_1_to_4_wall`): under the old spawn-per-round engine it
//!   *degraded* with shard count; the pooled sub-round engine must scale.
//! * `elapsed_msgs_per_sec` — delivered messages over end-to-end host
//!   elapsed time: every coordinator and synchronization overhead
//!   (including the pool handshake), all shards timesharing whatever
//!   cores the host actually has. On a single-core host the ceiling of
//!   this column is the 1-shard number; it is recorded so scheduling
//!   overhead stays visible, not gated.
//!
//! Real measurement runs (`cargo bench -p asbestos-bench --bench
//! scale_shards`) write `BENCH_shards.json` at the repo root so the perf
//! trajectory is tracked across PRs; `--test` mode (CI) runs a short
//! sweep, writes nothing, and enforces the smoke gate: the
//! 4-shard routed cache-off `wall_msgs_per_sec` must not regress below
//! the 1-shard figure.

use asbestos_bench::report::{bench_test_mode, BenchReport};
use asbestos_bench::workload_tuples::{
    deploy_repeated_tuple, trigger_round, PayloadMode, TupleWorkload,
};
use asbestos_kernel::{Handle, Kernel, CYCLES_PER_SEC, DEFAULT_DELIVERY_CACHE_CAP};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Concurrent user sessions (distinct label tuples).
const USERS: usize = 32;
/// Explicit entries per user send label (per-user compartment handles).
const ENTRIES: u64 = 48;
/// Messages per user per round.
const BURST: usize = 64;
/// Measured rounds per configuration.
const ROUNDS: usize = 40;

/// Shard counts swept.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Payload sizes swept in the zero-copy A/B (a small header-sized body
/// and a page-sized one).
const PAYLOAD_SIZES: [usize; 2] = [64, 4096];

/// Deploys [`USERS`] sender/sink pairs over `shards` shards via the
/// shared repeated-tuple builder; `cross_shard` pins each user's sink
/// one shard away from its sender so all traffic rides the router.
fn setup(
    shards: usize,
    cache_capacity: usize,
    cross_shard: bool,
    payload: PayloadMode,
) -> (Kernel, Vec<Handle>) {
    let workload = TupleWorkload {
        users: USERS,
        entries: ENTRIES,
        burst: BURST,
        handle_base: 0x10_0000,
        handle_stride: 0x1000,
        per_user_sinks: true,
        cross_shard,
        payload,
        zipf_s: 0.0,
        sink_spin: 0,
    };
    deploy_repeated_tuple(0xCAFE, shards, cache_capacity, &workload)
}

/// One configuration's measurements: throughput per denominator (see
/// the module docs) plus per-shard delivery-cache hit rates.
struct Measured {
    virt: f64,
    wall: f64,
    elapsed: f64,
    /// Per-shard cache hit rate over the measured rounds (hits over
    /// lookups; 0 when the cache is disabled). The spread across shards
    /// is the ROADMAP "per-shard cache sizing" signal: a shard whose
    /// rate trails its peers is the one adaptive sizing should feed.
    hit_rates: Vec<f64>,
    /// Per-shard mailbox depth high-water mark (lifetime max — the
    /// queueing pressure each shard absorbed) and per-port-bound drops.
    queue_hwms: Vec<u64>,
    port_drops: Vec<u64>,
    /// Per-shard overload-control verdict counters (PR 8): sends
    /// deferred into the retry queue and messages shed. Zero in this
    /// workload's default (backpressure-off) configuration — recorded
    /// so any future regime change shows up in the trajectory.
    deferred: Vec<u64>,
    shed: Vec<u64>,
    /// Swap-drains of the cross-shard inbound queues over the measured
    /// rounds (each drain is one mutex acquisition however many messages
    /// it moves).
    batch_drains: u64,
    /// Mean messages moved per drain — the batching amortization factor.
    batch_mean: f64,
    /// Largest single batch observed (high-water over the whole run,
    /// warm round included).
    batch_max: u64,
}

/// Throughput for one configuration.
fn throughput(
    shards: usize,
    cache_capacity: usize,
    cross_shard: bool,
    rounds: usize,
    payload: PayloadMode,
) -> Measured {
    let (mut kernel, triggers) = setup(shards, cache_capacity, cross_shard, payload);
    // Warm round: converges sink labels and (when enabled) the cache,
    // and builds the worker pool so its lazy creation is not measured.
    trigger_round(&mut kernel, &triggers);
    let stats_before = kernel.stats();
    let before = stats_before.delivered;
    let cache_before: Vec<(u64, u64)> = (0..shards)
        .map(|i| {
            let s = kernel.shard(i).stats();
            (s.cache_hits, s.cache_misses)
        })
        .collect();
    let cycles_before: Vec<u64> = (0..shards).map(|i| kernel.shard(i).clock().now()).collect();
    let busy_before: Vec<u64> = (0..shards).map(|i| kernel.shard(i).busy_nanos()).collect();
    let start = Instant::now();
    for _ in 0..rounds {
        trigger_round(&mut kernel, &triggers);
    }
    let elapsed = start.elapsed();
    let delivered = (kernel.stats().delivered - before) as f64;
    let busiest_cycles = (0..shards)
        .map(|i| kernel.shard(i).clock().now() - cycles_before[i])
        .max()
        .unwrap_or(1)
        .max(1);
    let busiest_nanos = (0..shards)
        .map(|i| kernel.shard(i).busy_nanos() - busy_before[i])
        .max()
        .unwrap_or(1)
        .max(1);
    let virtual_secs = busiest_cycles as f64 / CYCLES_PER_SEC as f64;
    let wall_secs = busiest_nanos as f64 / 1e9;
    let hit_rates: Vec<f64> = (0..shards)
        .map(|i| {
            let s = kernel.shard(i).stats();
            let hits = s.cache_hits - cache_before[i].0;
            let lookups = hits + (s.cache_misses - cache_before[i].1);
            if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            }
        })
        .collect();
    let per_shard = |f: fn(&asbestos_kernel::Stats) -> u64| -> Vec<u64> {
        (0..shards).map(|i| f(kernel.shard(i).stats())).collect()
    };
    let queue_hwms = per_shard(|s| s.queue_depth_hwm);
    let port_drops = per_shard(|s| s.dropped_port_queue_full);
    let deferred = per_shard(|s| s.sent_deferred);
    let shed = per_shard(|s| s.dropped_shed);
    let stats_after = kernel.stats();
    let batch_drains = stats_after.xshard_batch_drains - stats_before.xshard_batch_drains;
    let batched = (stats_after.xshard_subround + stats_after.xshard_barrier)
        - (stats_before.xshard_subround + stats_before.xshard_barrier);
    Measured {
        virt: delivered / virtual_secs,
        wall: delivered / wall_secs,
        elapsed: delivered / elapsed.as_secs_f64(),
        hit_rates,
        queue_hwms,
        port_drops,
        deferred,
        shed,
        batch_drains,
        batch_mean: if batch_drains == 0 {
            0.0
        } else {
            batched as f64 / batch_drains as f64
        },
        batch_max: stats_after.xshard_batch_max,
    }
}

fn bench_scale_shards(c: &mut Criterion) {
    let test_mode = bench_test_mode();
    // Test mode still measures a few rounds: the smoke gate compares two
    // host-time figures, and a single un-averaged round is too exposed
    // to scheduler noise on a shared CI box.
    let rounds = if test_mode { 3 } else { ROUNDS };

    let mut report = BenchReport::new("scale_shards");
    let mut virt_off_partitioned = Vec::new();
    let mut wall_off_routed = Vec::new();
    for &shards in &SHARD_COUNTS {
        for (cache_label, capacity) in [("off", 0), ("on", DEFAULT_DELIVERY_CACHE_CAP)] {
            for (mode_label, cross) in [("partitioned", false), ("routed", true)] {
                let m = throughput(shards, capacity, cross, rounds, PayloadMode::None);
                let (virt, wall, elapsed) = (m.virt, m.wall, m.elapsed);
                println!(
                    "scale_shards/{mode_label}/cache={cache_label}/shards={shards}: \
                     {virt:.0} virtual msg/s, {wall:.0} wall msg/s, {elapsed:.0} elapsed msg/s"
                );
                let mut fields = vec![
                    ("shards".to_string(), shards as f64),
                    ("virtual_msgs_per_sec".to_string(), virt),
                    ("wall_msgs_per_sec".to_string(), wall),
                    ("elapsed_msgs_per_sec".to_string(), elapsed),
                    ("users".to_string(), USERS as f64),
                    ("label_entries".to_string(), ENTRIES as f64),
                    ("burst".to_string(), BURST as f64),
                    // Batch-drain occupancy of the cross-shard inbound
                    // queues: mutex grabs amortized over `batch_mean`
                    // messages each (0 when all traffic is same-shard).
                    ("xshard_batch_drains".to_string(), m.batch_drains as f64),
                    ("xshard_batch_mean".to_string(), m.batch_mean),
                    ("xshard_batch_max".to_string(), m.batch_max as f64),
                ];
                // Per-shard cache hit rates (ROADMAP "per-shard cache
                // sizing" groundwork): recorded for cache-on rows so the
                // trajectory shows where the decision tuples concentrate.
                if capacity > 0 {
                    let mean = m.hit_rates.iter().sum::<f64>() / m.hit_rates.len() as f64;
                    fields.push(("cache_hit_rate_mean".to_string(), mean));
                    for (i, rate) in m.hit_rates.iter().enumerate() {
                        fields.push((format!("cache_hit_rate_s{i}"), *rate));
                    }
                }
                // Per-shard queueing pressure: mailbox-depth high-water
                // marks and per-port-bound drops. The HWM spread is the
                // work-stealing signal (a shard whose backlog towers over
                // its peers is the steal source); drops flag saturation.
                for (i, hwm) in m.queue_hwms.iter().enumerate() {
                    fields.push((format!("queue_depth_hwm_s{i}"), *hwm as f64));
                }
                for (i, drops) in m.port_drops.iter().enumerate() {
                    fields.push((format!("port_queue_full_s{i}"), *drops as f64));
                }
                // Overload-control verdicts per shard (PR 8): deferred
                // sends and shed messages.
                for (i, d) in m.deferred.iter().enumerate() {
                    fields.push((format!("deferred_s{i}"), *d as f64));
                }
                for (i, s) in m.shed.iter().enumerate() {
                    fields.push((format!("shed_s{i}"), *s as f64));
                }
                let borrowed: Vec<(&str, f64)> =
                    fields.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                report.push_row(
                    format!("{mode_label}/cache={cache_label}/shards={shards}"),
                    &borrowed,
                );
                if capacity == 0 && !cross {
                    virt_off_partitioned.push((shards, virt));
                }
                if capacity == 0 && cross {
                    wall_off_routed.push((shards, wall));
                }
            }
        }
    }

    // PR 2 acceptance series: cache-off, partitioned, virtual cycles.
    let at =
        |series: &[(usize, f64)], n: usize| series.iter().find(|(s, _)| *s == n).map(|(_, m)| *m);
    if let (Some(base), Some(four)) = (at(&virt_off_partitioned, 1), at(&virt_off_partitioned, 4)) {
        let speedup = four / base;
        println!(
            "scale_shards/speedup 1→4 shards (cache off, partitioned, virtual): {speedup:.2}x"
        );
        report.push_summary("speedup_1_to_4_cache_off", speedup);
        if !test_mode {
            assert!(
                speedup > 1.0,
                "sharding must scale: 1→4 shard cache-off virtual speedup was {speedup:.2}x"
            );
        }
    }

    // PR 3 acceptance series: cache-off, routed, measured wall time of
    // the busiest shard. The pooled sub-round engine must actually beat
    // the 1-shard engine, not lose to it like the spawn-per-round
    // engine did — and the smoke gate holds in CI test mode too.
    if let (Some(base), Some(four)) = (at(&wall_off_routed, 1), at(&wall_off_routed, 4)) {
        let speedup = four / base;
        println!("scale_shards/speedup 1→4 shards (cache off, routed, wall): {speedup:.2}x");
        report.push_summary("speedup_1_to_4_wall", speedup);
        assert!(
            speedup >= 1.0,
            "wall regression: 4-shard routed cache-off wall throughput fell below 1 shard \
             ({speedup:.2}x)"
        );
        if !test_mode {
            assert!(
                speedup >= 1.5,
                "pooled engine must win on the wall clock: 1→4 routed cache-off wall \
                 speedup was {speedup:.2}x (acceptance bar: 1.5x)"
            );
            for pair in wall_off_routed.windows(2) {
                let ((lo_shards, lo), (hi_shards, hi)) = (pair[0], pair[1]);
                if hi_shards <= 4 {
                    assert!(
                        hi >= lo,
                        "wall throughput must be monotone 1→4: {lo_shards} shards {lo:.0} \
                         msg/s > {hi_shards} shards {hi:.0} msg/s"
                    );
                }
            }
        }
    }

    // PR 6 acceptance series: the zero-copy A/B. Same routed cache-off
    // regime, but every burst message carries a body — either a clone of
    // one shared payload (the zero-copy hot path) or a fresh deep copy
    // per send (the pre-zero-copy behavior, kept as the baseline). The
    // virtual charges are identical by construction; the wall-clock gap
    // is pure memory traffic. Bytes/s is msg/s × body size.
    //
    // The gate reads the 1-shard ratio: with several shard threads
    // timesharing one host core, preemption lands inside other shards'
    // busy windows and swamps the copy cost, while the 1-shard drain
    // loop owns its core and the A/B gap is clean. The 4-shard rows are
    // still recorded for the trajectory.
    for &size in &PAYLOAD_SIZES {
        let mut wall_by_mode = [0.0f64; 2];
        for (slot, (mode_label, mode)) in [
            ("shared", PayloadMode::Shared(size)),
            ("copied", PayloadMode::Copied(size)),
        ]
        .into_iter()
        .enumerate()
        {
            for shards in [1usize, 4] {
                let m = throughput(shards, 0, true, rounds, mode);
                println!(
                    "scale_shards/payload/{mode_label}/size={size}/shards={shards}: \
                     {:.0} wall msg/s, {:.3e} bytes/s",
                    m.wall,
                    m.wall * size as f64
                );
                report.push_row(
                    format!("payload/{mode_label}/size={size}/shards={shards}"),
                    &[
                        ("shards", shards as f64),
                        ("payload_bytes", size as f64),
                        ("virtual_msgs_per_sec", m.virt),
                        ("wall_msgs_per_sec", m.wall),
                        ("wall_bytes_per_sec", m.wall * size as f64),
                        ("elapsed_msgs_per_sec", m.elapsed),
                        ("users", USERS as f64),
                        ("label_entries", ENTRIES as f64),
                        ("burst", BURST as f64),
                        ("xshard_batch_drains", m.batch_drains as f64),
                        ("xshard_batch_mean", m.batch_mean),
                        ("xshard_batch_max", m.batch_max as f64),
                    ],
                );
                if shards == 1 {
                    wall_by_mode[slot] = m.wall;
                }
            }
        }
        let gain = wall_by_mode[0] / wall_by_mode[1];
        println!("scale_shards/payload zero-copy gain at {size} B (1 shard, wall): {gain:.2}x");
        report.push_summary(format!("payload_zero_copy_gain_{size}"), gain);
        // Smoke bar (always on): never slower than the copying baseline
        // at header size, strictly faster at page size. Full-run bar:
        // the page-size win must be ≥ 1.1x; the thresholds are looser in
        // test mode only because 3-round samples wear scheduler noise.
        let (floor, label) = match (size, test_mode) {
            (4096, false) => (1.1, "full-run page-size bar"),
            (4096, true) => (1.0 + f64::EPSILON, "smoke page-size bar"),
            (_, false) => (0.95, "full-run header-size bar"),
            (_, true) => (0.9, "smoke header-size bar"),
        };
        assert!(
            gain >= floor,
            "zero-copy payloads must pay for themselves ({label}): \
             shared/copied wall ratio at {size} B was {gain:.3}x (floor {floor:.2}x)"
        );
    }

    if !test_mode {
        report.write_at_repo_root("shards");
    }

    // Keep the benchmark visible in `--test` listings.
    c.bench_function("scale_shards/sweep", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_scale_shards);
criterion_main!(benches);
