//! Scaling: messages/second versus kernel shard count.
//!
//! The workload is the OKWS repeated-tuple regime from the PR 1 delivery
//! cache ablation — a pool of per-user senders, each carrying a distinct
//! multi-entry taint label, repeatedly bursting at long-lived service
//! ports — partitioned the way a sharded OKWS partitions users: each
//! user's sender and sink live on the same shard (`partitioned` rows), or
//! deliberately on different shards so every message crosses the router
//! (`routed` rows). Both run with the delivery-decision cache on and off;
//! the cache-off configuration is the pure Figure 4 evaluation cost and
//! is the series the ≥ 1× 1→4 scaling acceptance bar reads.
//!
//! **Metric.** Like every paper figure in this repo, throughput is
//! measured on the virtual cycle clock: each shard models one 2.8 GHz
//! core (§9's testbed CPU), so the parallel system's elapsed time is the
//! *maximum* of the per-shard cycle clocks, and `virtual_msgs_per_sec`
//! is delivered messages divided by that. This is the number the 1→4
//! scaling acceptance bar reads: it is deterministic and reflects the
//! modeled hardware, not the benchmark host (the CI container is
//! single-core, where wall-clock parallel speedup is physically
//! impossible). Host wall-clock throughput is also recorded, as
//! `wall_msgs_per_sec`, to keep thread/router overhead visible.
//!
//! Real measurement runs (`cargo bench -p asbestos-bench --bench
//! scale_shards`) write `BENCH_shards.json` at the repo root so the perf
//! trajectory is tracked across PRs; `--test` mode (CI) runs each
//! configuration once and writes nothing.

use asbestos_bench::report::{bench_test_mode, BenchReport};
use asbestos_bench::workload_tuples::{deploy_repeated_tuple, trigger_round, TupleWorkload};
use asbestos_kernel::{Handle, Kernel, CYCLES_PER_SEC, DEFAULT_DELIVERY_CACHE_CAP};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Concurrent user sessions (distinct label tuples).
const USERS: usize = 32;
/// Explicit entries per user send label (per-user compartment handles).
const ENTRIES: u64 = 48;
/// Messages per user per round.
const BURST: usize = 64;
/// Measured rounds per configuration.
const ROUNDS: usize = 40;

/// Shard counts swept.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deploys [`USERS`] sender/sink pairs over `shards` shards via the
/// shared repeated-tuple builder; `cross_shard` pins each user's sink
/// one shard away from its sender so all traffic rides the router.
fn setup(shards: usize, cache_capacity: usize, cross_shard: bool) -> (Kernel, Vec<Handle>) {
    let workload = TupleWorkload {
        users: USERS,
        entries: ENTRIES,
        burst: BURST,
        handle_base: 0x10_0000,
        handle_stride: 0x1000,
        per_user_sinks: true,
        cross_shard,
    };
    deploy_repeated_tuple(0xCAFE, shards, cache_capacity, &workload)
}

/// One round: every user bursts at its sink; runs to idle.
fn round(kernel: &mut Kernel, triggers: &[Handle]) {
    trigger_round(kernel, triggers);
}

/// Steady-state throughput for one configuration: `(virtual msg/s, wall
/// msg/s)`. Virtual elapsed time is the busiest shard's cycle-clock
/// advance — shards model parallel cores, so the slowest one bounds the
/// simulated wall clock.
fn throughput(
    shards: usize,
    cache_capacity: usize,
    cross_shard: bool,
    rounds: usize,
) -> (f64, f64) {
    let (mut kernel, triggers) = setup(shards, cache_capacity, cross_shard);
    // Warm round: converges sink labels and (when enabled) the cache.
    round(&mut kernel, &triggers);
    let before = kernel.stats().delivered;
    let cycles_before: Vec<u64> = (0..shards).map(|i| kernel.shard(i).clock().now()).collect();
    let start = Instant::now();
    for _ in 0..rounds {
        round(&mut kernel, &triggers);
    }
    let elapsed = start.elapsed();
    let delivered = (kernel.stats().delivered - before) as f64;
    let busiest_cycles = (0..shards)
        .map(|i| kernel.shard(i).clock().now() - cycles_before[i])
        .max()
        .unwrap_or(1)
        .max(1);
    let virtual_secs = busiest_cycles as f64 / CYCLES_PER_SEC as f64;
    (delivered / virtual_secs, delivered / elapsed.as_secs_f64())
}

fn bench_scale_shards(c: &mut Criterion) {
    let test_mode = bench_test_mode();
    let rounds = if test_mode { 1 } else { ROUNDS };

    let mut report = BenchReport::new("scale_shards");
    let mut off_by_shards = Vec::new();
    for &shards in &SHARD_COUNTS {
        for (cache_label, capacity) in [("off", 0), ("on", DEFAULT_DELIVERY_CACHE_CAP)] {
            for (mode_label, cross) in [("partitioned", false), ("routed", true)] {
                let (virt, wall) = throughput(shards, capacity, cross, rounds);
                println!(
                    "scale_shards/{mode_label}/cache={cache_label}/shards={shards}: \
                     {virt:.0} virtual msg/s, {wall:.0} wall msg/s"
                );
                report.push_row(
                    format!("{mode_label}/cache={cache_label}/shards={shards}"),
                    &[
                        ("shards", shards as f64),
                        ("virtual_msgs_per_sec", virt),
                        ("wall_msgs_per_sec", wall),
                        ("users", USERS as f64),
                        ("label_entries", ENTRIES as f64),
                        ("burst", BURST as f64),
                    ],
                );
                if capacity == 0 && !cross {
                    off_by_shards.push((shards, virt));
                }
            }
        }
    }

    // The acceptance series: cache-off, user-partitioned, 1 → 4 shards.
    let base = off_by_shards.iter().find(|(s, _)| *s == 1).map(|(_, m)| *m);
    let four = off_by_shards.iter().find(|(s, _)| *s == 4).map(|(_, m)| *m);
    if let (Some(base), Some(four)) = (base, four) {
        let speedup = four / base;
        println!(
            "scale_shards/speedup 1→4 shards (cache off, partitioned, virtual): {speedup:.2}x"
        );
        report.push_summary("speedup_1_to_4_cache_off", speedup);
        if !test_mode {
            assert!(
                speedup > 1.0,
                "sharding must scale: 1→4 shard cache-off virtual speedup was {speedup:.2}x"
            );
        }
    }

    if !test_mode {
        report.write_at_repo_root("shards");
    }

    // Keep the benchmark visible in `--test` listings.
    c.bench_function("scale_shards/sweep", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_scale_shards);
criterion_main!(benches);
