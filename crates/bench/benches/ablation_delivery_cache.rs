//! Ablation: the delivery-decision cache on OKWS-style repeated traffic.
//!
//! The workload models the Figure 9 regime: a pool of per-user senders,
//! each carrying a distinct multi-entry taint label (the per-user `uT`/`uG`
//! handles OKWS accumulates), repeatedly hitting one long-lived service
//! port. Every user's delivery tuple repeats exactly — §5.6's observation
//! that labels are highly repetitive — so after one warm round the cached
//! kernel serves every Figure 4 evaluation from the decision cache, while
//! the uncached kernel re-walks labels whose size grows with the user
//! population.
//!
//! `delivery_cache/throughput_ratio` prints the measured messages/second
//! with the cache on and off; the acceptance bar is ≥ 2× on this workload.

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, Value, DEFAULT_DELIVERY_CACHE_CAP};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

/// Concurrent user sessions (distinct label tuples).
const USERS: usize = 16;
/// Explicit entries per user send label (per-user compartment handles).
const ENTRIES: u64 = 32;
/// Messages per user per round.
const BURST: usize = 32;

/// Deploys one sink service plus [`USERS`] senders whose send labels carry
/// disjoint [`ENTRIES`]-handle taints; returns the senders' trigger ports.
fn setup(cache_capacity: usize) -> (Kernel, Vec<Handle>) {
    let mut kernel = Kernel::new(0xCAFE);
    kernel.set_delivery_cache_capacity(cache_capacity);

    kernel.spawn(
        "sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            |_sys, _msg| {},
        ),
    );
    let sink = kernel.global_env("sink.port").unwrap().as_handle().unwrap();
    let sink_pid = kernel.find_process("sink").unwrap();
    // The sink accepts arbitrary contamination, like a service that has
    // raised its receive label for every registered user.
    kernel.set_process_labels(sink_pid, None, Some(Label::top()));

    let mut trigger_ports = Vec::new();
    for user in 0..USERS {
        let name = format!("user{user}");
        let key = format!("{name}.port");
        let publish_key = key.clone();
        kernel.spawn(
            &name,
            Category::Other,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&publish_key, Value::Handle(p));
                },
                move |sys, _msg| {
                    for i in 0..BURST {
                        sys.send(sink, Value::U64(i as u64)).unwrap();
                    }
                },
            ),
        );
        trigger_ports.push(kernel.global_env(&key).unwrap().as_handle().unwrap());
        // The user's session taint: ENTRIES distinct compartment handles.
        let pid = kernel.find_process(&name).unwrap();
        let pairs: Vec<(Handle, Level)> = (0..ENTRIES)
            .map(|j| {
                (
                    Handle::from_raw(0x1000 + user as u64 * 0x100 + j),
                    Level::L2,
                )
            })
            .collect();
        kernel.set_process_labels(pid, Some(Label::from_pairs(Level::L1, &pairs)), None);
    }
    (kernel, trigger_ports)
}

/// One round: every user bursts at the sink; runs to idle.
fn round(kernel: &mut Kernel, triggers: &[Handle]) {
    for &port in triggers {
        kernel.inject(port, Value::Unit);
    }
    kernel.run();
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery_cache");
    for (label, capacity) in [("off", 0), ("on", DEFAULT_DELIVERY_CACHE_CAP)] {
        let (mut kernel, triggers) = setup(capacity);
        // Warm round: converges the sink's labels and (when enabled)
        // populates the cache, so the measurement sees steady state.
        round(&mut kernel, &triggers);
        group.bench_with_input(BenchmarkId::new("round", label), &(), |b, ()| {
            b.iter(|| round(&mut kernel, &triggers))
        });
    }
    group.finish();
}

/// Measures both configurations head-to-head and prints the throughput
/// ratio (the ≥ 2× acceptance number for this ablation).
fn bench_throughput_ratio(c: &mut Criterion) {
    let throughput = |capacity: usize| {
        let (mut kernel, triggers) = setup(capacity);
        round(&mut kernel, &triggers);
        let delivered_before = kernel.stats().delivered;
        let rounds = 200;
        let start = Instant::now();
        for _ in 0..rounds {
            round(&mut kernel, &triggers);
        }
        let elapsed = start.elapsed();
        let delivered = kernel.stats().delivered - delivered_before;
        let hit_rate = {
            let s = kernel.stats();
            s.cache_hits as f64 / (s.cache_hits + s.cache_misses).max(1) as f64
        };
        (delivered as f64 / elapsed.as_secs_f64(), hit_rate)
    };
    let (off, _) = throughput(0);
    let (on, hit_rate) = throughput(DEFAULT_DELIVERY_CACHE_CAP);
    println!(
        "delivery_cache/throughput: off {off:.0} msg/s, on {on:.0} msg/s, ratio {:.2}x (hit rate {:.1}%)",
        on / off,
        hit_rate * 100.0
    );
    // Keep the benchmark visible in `--test` listings.
    c.bench_function("delivery_cache/throughput_ratio", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_delivery, bench_throughput_ratio);
criterion_main!(benches);
