//! Ablation: the delivery-decision cache on OKWS-style repeated traffic.
//!
//! The workload models the Figure 9 regime: a pool of per-user senders,
//! each carrying a distinct multi-entry taint label (the per-user `uT`/`uG`
//! handles OKWS accumulates), repeatedly hitting one long-lived service
//! port. Every user's delivery tuple repeats exactly — §5.6's observation
//! that labels are highly repetitive — so after one warm round the cached
//! kernel serves every Figure 4 evaluation from the decision cache, while
//! the uncached kernel re-walks labels whose size grows with the user
//! population.
//!
//! `delivery_cache/throughput_ratio` prints the measured messages/second
//! with the cache on and off; the acceptance bar is ≥ 2× on this workload.

use asbestos_bench::report::{bench_test_mode, BenchReport};
use asbestos_bench::workload_tuples::{
    deploy_repeated_tuple, trigger_round, PayloadMode, TupleWorkload,
};
use asbestos_kernel::{Handle, Kernel, DEFAULT_DELIVERY_CACHE_CAP};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

/// Concurrent user sessions (distinct label tuples).
const USERS: usize = 16;
/// Explicit entries per user send label (per-user compartment handles).
const ENTRIES: u64 = 32;
/// Messages per user per round.
const BURST: usize = 32;

/// The Figure 9 topology: every user bursts at one shared, long-lived
/// service port on a single-shard kernel.
const WORKLOAD: TupleWorkload = TupleWorkload {
    users: USERS,
    entries: ENTRIES,
    burst: BURST,
    handle_base: 0x1000,
    handle_stride: 0x100,
    per_user_sinks: false,
    cross_shard: false,
    payload: PayloadMode::None,
    zipf_s: 0.0,
    sink_spin: 0,
};

/// Deploys the shared-sink repeated-tuple workload (see
/// `asbestos_bench::workload_tuples`); returns the trigger ports.
fn setup(cache_capacity: usize) -> (Kernel, Vec<Handle>) {
    deploy_repeated_tuple(0xCAFE, 1, cache_capacity, &WORKLOAD)
}

/// One round: every user bursts at the sink; runs to idle.
fn round(kernel: &mut Kernel, triggers: &[Handle]) {
    trigger_round(kernel, triggers);
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery_cache");
    for (label, capacity) in [("off", 0), ("on", DEFAULT_DELIVERY_CACHE_CAP)] {
        let (mut kernel, triggers) = setup(capacity);
        // Warm round: converges the sink's labels and (when enabled)
        // populates the cache, so the measurement sees steady state.
        round(&mut kernel, &triggers);
        group.bench_with_input(BenchmarkId::new("round", label), &(), |b, ()| {
            b.iter(|| round(&mut kernel, &triggers))
        });
    }
    group.finish();
}

/// Measures both configurations head-to-head and prints the throughput
/// ratio (the ≥ 2× acceptance number for this ablation).
fn bench_throughput_ratio(c: &mut Criterion) {
    let throughput = |capacity: usize| {
        let (mut kernel, triggers) = setup(capacity);
        round(&mut kernel, &triggers);
        let delivered_before = kernel.stats().delivered;
        let rounds = 200;
        let start = Instant::now();
        for _ in 0..rounds {
            round(&mut kernel, &triggers);
        }
        let elapsed = start.elapsed();
        let delivered = kernel.stats().delivered - delivered_before;
        let hit_rate = {
            let s = kernel.stats();
            s.cache_hits as f64 / (s.cache_hits + s.cache_misses).max(1) as f64
        };
        (delivered as f64 / elapsed.as_secs_f64(), hit_rate)
    };
    let (off, _) = throughput(0);
    let (on, hit_rate) = throughput(DEFAULT_DELIVERY_CACHE_CAP);
    println!(
        "delivery_cache/throughput: off {off:.0} msg/s, on {on:.0} msg/s, ratio {:.2}x (hit rate {:.1}%)",
        on / off,
        hit_rate * 100.0
    );
    if !bench_test_mode() {
        // Track the perf trajectory across PRs at the repo root.
        let mut report = BenchReport::new("ablation_delivery_cache");
        report.push_row(
            "cache=off",
            &[
                ("msgs_per_sec", off),
                ("users", USERS as f64),
                ("entries", ENTRIES as f64),
            ],
        );
        report.push_row(
            "cache=on",
            &[
                ("msgs_per_sec", on),
                ("hit_rate", hit_rate),
                ("users", USERS as f64),
                ("entries", ENTRIES as f64),
            ],
        );
        report.push_summary("throughput_ratio", on / off);
        report.push_summary("hit_rate", hit_rate);
        report.write_at_repo_root("delivery_cache");
    }
    // Keep the benchmark visible in `--test` listings.
    c.bench_function("delivery_cache/throughput_ratio", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_delivery, bench_throughput_ratio);
criterion_main!(benches);
