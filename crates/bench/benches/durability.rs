//! Durability: commit throughput vs group-commit batch size, and
//! recovery time vs WAL length.
//!
//! Two series, both through the real `DurableDb` statement path (parse,
//! policy rewrite, engine execute, WAL append):
//!
//! * **Commit throughput.** Statements per second at group-commit batch
//!   sizes 1→256, on the in-memory failpoint device (sync is a memcpy
//!   bookkeeping op — isolates the WAL framing cost) and on the real
//!   tempfile device (sync is `fsync` — shows what batching actually
//!   buys on hardware).
//! * **Recovery.** Time for `DurableDb::open` — scan, CRC-check, and
//!   replay the committed prefix — as the WAL grows.
//!
//! Real runs write `BENCH_durability.json` at the repo root. `--test`
//! mode (CI) runs a tiny sweep, writes nothing, and always enforces the
//! correctness gate: the recovered database must be byte-identical to
//! the live one that wrote the log.

use asbestos_bench::report::{bench_test_mode, BenchReport};
use asbestos_db::{DurableDb, SqlValue};
use asbestos_store::{BlockDev, FileDev, MemDev};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Group-commit batch sizes swept.
const BATCHES: [usize; 5] = [1, 4, 16, 64, 256];

/// Statements per configuration (real runs).
const COMMIT_STMTS: usize = 20_000;
const COMMIT_STMTS_FILE: usize = 2_000;

/// WAL lengths for the recovery series (committed statements).
const RECOVERY_LENS: [usize; 3] = [1_000, 5_000, 20_000];

fn fresh_db(dev: Box<dyn BlockDev>) -> DurableDb {
    let mut db = DurableDb::open(dev);
    // Large compaction bound: these series measure the WAL itself.
    db.set_compact_threshold(usize::MAX);
    assert!(db.apply_ddl("CREATE TABLE events (seq, payload)"));
    db.flush();
    db
}

fn insert(db: &mut DurableDb, i: usize) {
    db.worker_exec(
        "INSERT INTO events VALUES (?, ?)",
        &[
            SqlValue::Int(i as i64),
            SqlValue::Text(format!("payload-{i}")),
        ],
        (i % 7) as i64 + 1,
    )
    .expect("bench write accepted");
}

/// Statements/second with the given batch size on `dev`.
fn commit_throughput(dev: Box<dyn BlockDev>, batch: usize, stmts: usize) -> f64 {
    let mut db = fresh_db(dev);
    db.set_group_commit(batch);
    let start = Instant::now();
    for i in 0..stmts {
        insert(&mut db, i);
    }
    db.flush();
    stmts as f64 / start.elapsed().as_secs_f64()
}

/// `(open_ms, stmts/sec)` recovering a WAL of `stmts` committed records,
/// plus the correctness gate against the live state.
fn recovery_time(stmts: usize) -> (f64, f64) {
    let dev = MemDev::new();
    let mut db = fresh_db(Box::new(dev.clone()));
    db.set_group_commit(64);
    for i in 0..stmts {
        insert(&mut db, i);
    }
    db.flush();
    let live = db.snapshot_bytes();
    drop(db);
    let start = Instant::now();
    let recovered = DurableDb::open(Box::new(dev));
    let elapsed = start.elapsed();
    // The always-on correctness gate: recovery must reproduce the live
    // state exactly (replayed the whole committed prefix, nothing else).
    assert_eq!(
        recovered.snapshot_bytes(),
        live,
        "recovered state diverged from the live database"
    );
    assert_eq!(recovered.recovery().skipped, 0);
    (
        elapsed.as_secs_f64() * 1e3,
        stmts as f64 / elapsed.as_secs_f64(),
    )
}

fn bench_durability(c: &mut Criterion) {
    let test_mode = bench_test_mode();
    let (mem_stmts, file_stmts) = if test_mode {
        (256, 64)
    } else {
        (COMMIT_STMTS, COMMIT_STMTS_FILE)
    };

    let mut report = BenchReport::new("durability");
    let mut batch1_mem = 0.0;
    let mut batch_max_mem = 0.0;
    for &batch in &BATCHES {
        let mem = commit_throughput(Box::new(MemDev::new()), batch, mem_stmts);
        let filedev = FileDev::temp();
        let file = commit_throughput(filedev.clone_dev(), batch, file_stmts);
        filedev.destroy();
        println!(
            "durability/commit/batch={batch}: {mem:.0} stmts/s (memdev), {file:.0} stmts/s (filedev+fsync)"
        );
        report.push_row(
            format!("commit/batch={batch}"),
            &[
                ("batch", batch as f64),
                ("memdev_stmts_per_sec", mem),
                ("filedev_stmts_per_sec", file),
            ],
        );
        if batch == 1 {
            batch1_mem = mem;
        }
        batch_max_mem = mem.max(batch_max_mem);
    }
    if batch1_mem > 0.0 {
        report.push_summary("group_commit_speedup_memdev", batch_max_mem / batch1_mem);
    }

    let recovery_lens: Vec<usize> = if test_mode {
        vec![256]
    } else {
        RECOVERY_LENS.to_vec()
    };
    for &stmts in &recovery_lens {
        let (ms, rate) = recovery_time(stmts);
        println!("durability/recovery/wal={stmts}: {ms:.2} ms ({rate:.0} stmts/s replay)");
        report.push_row(
            format!("recovery/wal={stmts}"),
            &[
                ("wal_stmts", stmts as f64),
                ("recover_ms", ms),
                ("replay_stmts_per_sec", rate),
            ],
        );
    }

    if !test_mode {
        report.write_at_repo_root("durability");
    }

    // Keep the benchmark visible in `--test` listings.
    c.bench_function("durability/sweep", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
