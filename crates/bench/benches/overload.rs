//! Overload: open-loop flood goodput, backpressure off versus on.
//!
//! The PR 8 acceptance bench. One deterministic single-shard kernel
//! hosts a sink service (charging [`SINK_CYCLES`] of useful work per
//! delivered message, queue bounded at [`PORT_QUEUE`]) and an
//! open-loop source that bursts a fixed offered rate at it every tick
//! — open-loop meaning the offered rate never waits for completions,
//! the regime where naive queueing cliffs. Every send attempt charges
//! [`SEND_CYCLES`] (the syscall/marshal cost a real sender pays whether
//! or not the message survives).
//!
//! Two passes over the same offered-rate sweep (PORT_QUEUE/4 up to
//! 5·PORT_QUEUE/2):
//!
//! * **bp=off** — the pre-PR 8 kernel: sends into a full queue drop
//!   silently and the sender never learns. Past saturation every extra
//!   offered message still burns [`SEND_CYCLES`] to produce nothing, so
//!   goodput *falls* as offered load rises — the congestion-collapse
//!   cliff.
//! * **bp=on** — credit-window backpressure: the tail of a burst is
//!   deferred (parked and flushed, still completing) until the
//!   per-activation quota runs out, then the sender sees
//!   `Err(WouldBlock)` and backs off for the rest of the tick. Wasted
//!   work is bounded by the credit window, so goodput *plateaus*.
//!
//! **Metric.** `goodput_msgs_per_sec`: sink completions over the
//! shard's virtual-cycle advance (each shard models one 2.8 GHz core,
//! §9's testbed CPU). Fully deterministic — no host timing — which is
//! what lets the gates run always-on, in CI test mode and full runs
//! alike:
//!
//! * bp=on goodput at the maximum offered rate ≥ 0.8× its own peak
//!   across the sweep (the plateau holds);
//! * bp=off goodput at the maximum offered rate < 0.75× its own peak
//!   (the cliff this PR exists to fix stays demonstrated).
//!
//! Real runs (`cargo bench -p asbestos-bench --bench overload`) write
//! `BENCH_overload.json` at the repo root with both series side by
//! side; `--test` mode (CI smoke) runs a short sweep and writes
//! nothing.

use asbestos_bench::report::{bench_test_mode, BenchReport};
use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Kernel, Label, Value, CYCLES_PER_SEC};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::{Arc, Mutex};

/// Sink port queue bound — deliberately tight so the sweep straddles
/// saturation within a few dozen messages per tick.
const PORT_QUEUE: usize = 64;
/// Virtual cycles the source charges per send *attempt* (paid even for
/// messages that a full queue then silently drops).
const SEND_CYCLES: u64 = 400;
/// Virtual cycles of useful work per delivered message.
const SINK_CYCLES: u64 = 400;
/// Offered rates swept: PORT_QUEUE/4 up to 5·PORT_QUEUE/2.
const OFFERED: [usize; 6] = [16, 32, 64, 96, 128, 160];
/// Measured ticks per point (full run; test mode shortens).
const TICKS: usize = 24;
/// Warm ticks: lets the AIMD window reach its steady state before
/// measurement starts.
const WARM_TICKS: usize = 4;

/// One sweep point's measurements.
struct Measured {
    goodput: f64,
    completed: u64,
    /// Sends the source actually attempted (it stops early on
    /// `WouldBlock`, so under backpressure this undershoots
    /// offered × ticks — that unsent remainder is the saved waste).
    attempted: u64,
    would_blocks: u64,
    deferred: u64,
    dropped: u64,
    flushed: u64,
}

/// Runs one (backpressure, offered rate) point on a fresh kernel.
fn run_point(backpressure: bool, rate: usize, ticks: usize) -> Measured {
    let mut kernel = Kernel::new_sharded(0x0F_100D, 1);
    kernel.set_port_queue_limit(PORT_QUEUE);
    kernel.set_backpressure(backpressure);

    // The sink: charge the useful work, count the completion.
    let done = Arc::new(Mutex::new(0u64));
    let d2 = done.clone();
    kernel.spawn(
        "sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            move |sys, _msg| {
                sys.charge(SINK_CYCLES);
                *d2.lock().unwrap() += 1;
            },
        ),
    );
    let sink = kernel.global_env("sink.port").unwrap().as_handle().unwrap();

    // The open-loop source: every tick, burst `rate` sends. Each
    // attempt pays SEND_CYCLES up front; on WouldBlock the source backs
    // off for the rest of the tick — the graceful-degradation move the
    // credit signal exists to enable. With backpressure off, send never
    // errs and the full burst is paid every tick.
    let counters = Arc::new(Mutex::new((0u64, 0u64))); // (attempted, would_blocks)
    let c2 = counters.clone();
    kernel.spawn(
        "source",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("source.tick", Value::Handle(p));
            },
            move |sys, _msg| {
                for _ in 0..rate {
                    sys.charge(SEND_CYCLES);
                    let mut c = c2.lock().unwrap();
                    c.0 += 1;
                    match sys.send(sink, Value::U64(1)) {
                        Ok(_) => {}
                        Err(_) => {
                            c.1 += 1;
                            break;
                        }
                    }
                }
            },
        ),
    );
    let tick = kernel
        .global_env("source.tick")
        .unwrap()
        .as_handle()
        .unwrap();

    let run_tick = |kernel: &mut Kernel| {
        kernel.inject(tick, Value::Unit);
        // Bounded: a backpressure livelock should fail fast, not hang.
        kernel.run_limited(10_000_000);
    };

    for _ in 0..WARM_TICKS {
        run_tick(&mut kernel);
    }
    let cycles_before = kernel.shard(0).clock().now();
    let done_before = *done.lock().unwrap();
    let (att_before, wb_before) = *counters.lock().unwrap();
    let stats_before = kernel.stats();
    for _ in 0..ticks {
        run_tick(&mut kernel);
    }
    let cycles = (kernel.shard(0).clock().now() - cycles_before).max(1);
    let completed = *done.lock().unwrap() - done_before;
    let (attempted, would_blocks) = {
        let (a, w) = *counters.lock().unwrap();
        (a - att_before, w - wb_before)
    };
    let stats = kernel.stats();
    Measured {
        goodput: completed as f64 / (cycles as f64 / CYCLES_PER_SEC as f64),
        completed,
        attempted,
        would_blocks,
        deferred: stats.sent_deferred - stats_before.sent_deferred,
        dropped: stats.dropped_port_queue_full - stats_before.dropped_port_queue_full,
        flushed: stats.retry_flushed - stats_before.retry_flushed,
    }
}

fn bench_overload(c: &mut Criterion) {
    let test_mode = bench_test_mode();
    let ticks = if test_mode { 6 } else { TICKS };

    let mut report = BenchReport::new("overload");
    // (peak, at-max-offered) goodput per mode, for the gates.
    let mut series: Vec<(bool, f64, f64)> = Vec::new();
    for bp in [false, true] {
        let mode = if bp { "on" } else { "off" };
        let mut peak = 0.0f64;
        let mut at_max = 0.0f64;
        for &rate in &OFFERED {
            let m = run_point(bp, rate, ticks);
            println!(
                "overload/bp={mode}/offered={rate}: {:.0} goodput msg/s \
                 ({} completed, {} attempted, {} wouldblock, {} deferred, \
                 {} dropped, {} flushed)",
                m.goodput,
                m.completed,
                m.attempted,
                m.would_blocks,
                m.deferred,
                m.dropped,
                m.flushed
            );
            report.push_row(
                format!("bp={mode}/offered={rate}"),
                &[
                    ("offered_per_tick", rate as f64),
                    ("goodput_msgs_per_sec", m.goodput),
                    ("completed", m.completed as f64),
                    ("attempted", m.attempted as f64),
                    ("would_blocks", m.would_blocks as f64),
                    ("deferred", m.deferred as f64),
                    ("dropped_port_queue_full", m.dropped as f64),
                    ("retry_flushed", m.flushed as f64),
                    ("port_queue", PORT_QUEUE as f64),
                    ("ticks", ticks as f64),
                ],
            );
            peak = peak.max(m.goodput);
            if rate == *OFFERED.last().unwrap() {
                at_max = m.goodput;
            }
        }
        series.push((bp, peak, at_max));
    }

    // The always-on gates: the sweep is virtual-cycle deterministic, so
    // these hold bit-for-bit in test mode and full runs alike.
    for (bp, peak, at_max) in series {
        let ratio = at_max / peak;
        let mode = if bp { "on" } else { "off" };
        println!("overload/bp={mode}: goodput@max/peak = {ratio:.3}");
        report.push_summary(format!("bp_{mode}_at_max_over_peak"), ratio);
        report.push_summary(format!("bp_{mode}_peak_goodput"), peak);
        if bp {
            assert!(
                ratio >= 0.8,
                "backpressure must hold the plateau: goodput at max offered \
                 was {ratio:.3}x of peak (floor 0.8x)"
            );
        } else {
            assert!(
                ratio < 0.75,
                "the bp-off cliff vanished ({ratio:.3}x of peak): either the \
                 workload no longer saturates or drops became free — \
                 retune the sweep so the baseline stays demonstrated"
            );
        }
    }

    if !test_mode {
        report.write_at_repo_root("overload");
    }

    // Keep the benchmark visible in `--test` listings.
    c.bench_function("overload/sweep", |b| b.iter(|| ()));
}

criterion_group!(benches, bench_overload);
criterion_main!(benches);
