//! Event-process microbenchmarks: creation, resume, and copy-on-write
//! page costs (§6.2's efficiency claims, measured on the simulator).

use asbestos_kernel::util::ep_service_fn;
use asbestos_kernel::{Category, Kernel, Label, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ep_create(c: &mut Criterion) {
    c.bench_function("ep_create_and_run", |bench| {
        let mut kernel = Kernel::new(3);
        kernel.spawn_ep_service(
            "worker",
            Category::Okws,
            ep_service_fn(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("w.port", Value::Handle(p));
                },
                |sys, _msg| {
                    let n = sys.mem_read_u64(0x1000).unwrap();
                    sys.mem_write_u64(0x1000, n + 1).unwrap();
                },
            ),
        );
        let port = kernel.global_env("w.port").unwrap().as_handle().unwrap();
        bench.iter(|| {
            kernel.inject(port, Value::Unit);
            black_box(kernel.run())
        });
    });
}

fn bench_ep_resume(c: &mut Criterion) {
    c.bench_function("ep_resume", |bench| {
        let mut kernel = Kernel::new(4);
        kernel.spawn_ep_service(
            "worker",
            Category::Okws,
            ep_service_fn(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("w.port", Value::Handle(p));
                },
                |sys, _msg| {
                    // First activation creates a session port and reports it.
                    if sys.is_new_ep() {
                        let p = sys.new_port(Label::top());
                        sys.set_port_label(p, Label::top()).unwrap();
                        sys.publish_env("session.port", Value::Handle(p));
                    }
                    let n = sys.mem_read_u64(0x1000).unwrap();
                    sys.mem_write_u64(0x1000, n + 1).unwrap();
                },
            ),
        );
        let base = kernel.global_env("w.port").unwrap().as_handle().unwrap();
        kernel.inject(base, Value::Unit);
        kernel.run();
        let session = kernel
            .global_env("session.port")
            .unwrap()
            .as_handle()
            .unwrap();
        bench.iter(|| {
            kernel.inject(session, Value::Unit);
            black_box(kernel.run())
        });
    });
}

fn bench_cow_write(c: &mut Criterion) {
    // Cost of dirtying a base-backed page in an event process (one page
    // copy) and reverting it with ep_clean.
    c.bench_function("ep_cow_first_write_then_clean", |bench| {
        let mut kernel = Kernel::new(5);
        kernel.spawn_ep_service(
            "worker",
            Category::Okws,
            ep_service_fn(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("w.port", Value::Handle(p));
                    sys.mem_write(0x0, &[7u8; 4096]).unwrap();
                },
                |sys, _msg| {
                    sys.mem_write(0x10, b"dirty").unwrap();
                    sys.ep_clean(0x0, 4096).unwrap();
                },
            ),
        );
        let port = kernel.global_env("w.port").unwrap().as_handle().unwrap();
        bench.iter(|| {
            kernel.inject(port, Value::Unit);
            black_box(kernel.run())
        });
    });
}

criterion_group!(benches, bench_ep_create, bench_ep_resume, bench_cow_write);
criterion_main!(benches);
