//! Database microbenchmarks: the SQLite-substitute engine's point lookups,
//! scans, and writes — the OKDB cost of Figure 9 at the engine level.

use asbestos_db::{Database, SqlValue};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn users_db(n: usize, indexed: bool) -> Database {
    let mut db = Database::new();
    db.run("CREATE TABLE okws_users (name, pw)").unwrap();
    if indexed {
        db.run("CREATE INDEX ON okws_users (name)").unwrap();
    }
    for i in 0..n {
        db.run_with_params(
            "INSERT INTO okws_users VALUES (?, ?)",
            &[
                SqlValue::Text(format!("u{i}")),
                SqlValue::Text(format!("pw{i}")),
            ],
        )
        .unwrap();
    }
    db
}

fn bench_login_lookup(c: &mut Criterion) {
    // The idd authentication query, at the user counts of the sweep. The
    // unindexed variant is what OKWS runs (the paper's "unoptimized
    // SQLite" behaviour); the indexed variant shows what the engine could
    // do — the gap is Figure 9's OKDB growth.
    let mut group = c.benchmark_group("login_lookup_scan");
    for &n in &[100usize, 1000, 10_000] {
        let mut db = users_db(n, false);
        let params = [
            SqlValue::Text(format!("u{}", n / 2)),
            SqlValue::Text(format!("pw{}", n / 2)),
        ];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    db.run_with_params(
                        "SELECT name FROM okws_users WHERE name = ? AND pw = ?",
                        &params,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("login_lookup_indexed");
    for &n in &[100usize, 1000, 10_000] {
        let mut db = users_db(n, true);
        let params = [
            SqlValue::Text(format!("u{}", n / 2)),
            SqlValue::Text(format!("pw{}", n / 2)),
        ];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    db.run_with_params(
                        "SELECT name FROM okws_users WHERE name = ? AND pw = ?",
                        &params,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("insert_row", |bench| {
        let mut db = Database::new();
        db.run("CREATE TABLE t (k, v)").unwrap();
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            black_box(
                db.run_with_params(
                    "INSERT INTO t VALUES (?, ?)",
                    &[SqlValue::Int(i as i64), SqlValue::Text("value".into())],
                )
                .unwrap(),
            )
        });
    });
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("sql_parse_select", |bench| {
        bench.iter(|| {
            black_box(
                asbestos_db::parse("SELECT owner, bio FROM profiles WHERE owner = ? AND bio != ''")
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_login_lookup, bench_insert, bench_parse);
criterion_main!(benches);
