//! Ablation: the §5.6 chunked, min/max-cached label representation versus
//! a naive `BTreeMap` implementation, over the operation mix the kernel
//! actually performs. Validates the paper's representation choice.

use asbestos_labels::naive::NaiveLabel;
use asbestos_labels::{Handle, Label, Level};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn chunked(n: usize, level: Level) -> Label {
    let pairs: Vec<(Handle, Level)> = (0..n)
        .map(|i| (Handle::from_raw(i as u64 * 3 + 1), level))
        .collect();
    Label::from_pairs(Level::L1, &pairs)
}

fn naive(n: usize, level: Level) -> NaiveLabel {
    let mut l = NaiveLabel::new(Level::L1);
    for i in 0..n {
        l.set(Handle::from_raw(i as u64 * 3 + 1), level);
    }
    l
}

/// The kernel's delivery-time mix: one ⊑ against a big receive label, one
/// ⊔ for the decontamination effect, one point update.
fn bench_delivery_mix(c: &mut Criterion) {
    for &n in &[1024usize, 10_000] {
        let mut group = c.benchmark_group(format!("ablation_delivery_mix_{n}"));

        let es_c = chunked(4, Level::L3);
        let qr_c = chunked(n, Level::L3);
        let dr_c = Label::bottom();
        group.bench_function("chunked", |bench| {
            bench.iter(|| {
                let ok = es_c.leq(&qr_c);
                let merged = qr_c.lub(&dr_c); // fast path applies
                let mut updated = merged.clone();
                updated.set(Handle::from_raw(5), Level::L2);
                black_box((ok, updated.entry_count()))
            })
        });

        let es_n = naive(4, Level::L3);
        let qr_n = naive(n, Level::L3);
        let dr_n = NaiveLabel::new(Level::Star);
        group.bench_function("naive", |bench| {
            bench.iter(|| {
                let ok = es_n.leq(&qr_n);
                let merged = qr_n.lub(&dr_n); // no fast path: full rebuild
                let mut updated = merged.clone();
                updated.set(Handle::from_raw(5), Level::L2);
                black_box((ok, updated.entry_count()))
            })
        });
        group.finish();
    }
}

/// Clone cost: chunked labels share chunks (Arc bumps); naive labels deep-
/// copy the whole map. This is the §5.6 copy-on-write claim.
fn bench_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_clone");
    for &n in &[1024usize, 10_000] {
        let c_label = chunked(n, Level::L3);
        let n_label = naive(n, Level::L3);
        group.bench_with_input(BenchmarkId::new("chunked", n), &n, |bench, _| {
            bench.iter(|| black_box(c_label.clone()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| black_box(n_label.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delivery_mix, bench_clone);
criterion_main!(benches);
