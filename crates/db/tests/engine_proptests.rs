//! Property tests for the SQL engine: equivalence against a flat key-value
//! oracle under random operation sequences, plus no-panic parsing.

use std::collections::BTreeMap;

use asbestos_db::{parse, Database, SqlValue};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum DbOp {
    /// `INSERT INTO kv VALUES (k, v)` — duplicate keys allowed; the oracle
    /// keeps multiset semantics via a Vec.
    Insert { k: u8, v: i64 },
    /// `SELECT v FROM kv WHERE k = ?`.
    Lookup { k: u8 },
    /// `UPDATE kv SET v = ? WHERE k = ?`.
    Update { k: u8, v: i64 },
    /// `DELETE FROM kv WHERE k = ?`.
    Delete { k: u8 },
    /// `SELECT v FROM kv WHERE v >= ?` (range over values).
    Range { min: i64 },
}

fn arb_op() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        (any::<u8>(), -50i64..50).prop_map(|(k, v)| DbOp::Insert { k: k % 24, v }),
        any::<u8>().prop_map(|k| DbOp::Lookup { k: k % 24 }),
        (any::<u8>(), -50i64..50).prop_map(|(k, v)| DbOp::Update { k: k % 24, v }),
        any::<u8>().prop_map(|k| DbOp::Delete { k: k % 24 }),
        (-50i64..50).prop_map(|min| DbOp::Range { min }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_oracle(ops in prop::collection::vec(arb_op(), 0..80), indexed in any::<bool>()) {
        let mut db = Database::new();
        db.run("CREATE TABLE kv (k, v)").unwrap();
        if indexed {
            db.run("CREATE INDEX ON kv (k)").unwrap();
        }
        // Oracle: key → multiset of values (insertion-ordered).
        let mut oracle: BTreeMap<String, Vec<i64>> = BTreeMap::new();

        for op in ops {
            match op {
                DbOp::Insert { k, v } => {
                    let key = format!("k{k}");
                    db.run_with_params(
                        "INSERT INTO kv VALUES (?, ?)",
                        &[SqlValue::Text(key.clone()), SqlValue::Int(v)],
                    )
                    .unwrap();
                    oracle.entry(key).or_default().push(v);
                }
                DbOp::Lookup { k } => {
                    let key = format!("k{k}");
                    let result = db
                        .run_with_params(
                            "SELECT v FROM kv WHERE k = ?",
                            &[SqlValue::Text(key.clone())],
                        )
                        .unwrap();
                    let mut got: Vec<i64> = result
                        .rows
                        .iter()
                        .map(|r| r[0].as_int().unwrap())
                        .collect();
                    got.sort_unstable();
                    let mut expect = oracle.get(&key).cloned().unwrap_or_default();
                    expect.sort_unstable();
                    prop_assert_eq!(got, expect);
                }
                DbOp::Update { k, v } => {
                    let key = format!("k{k}");
                    let result = db
                        .run_with_params(
                            "UPDATE kv SET v = ? WHERE k = ?",
                            &[SqlValue::Int(v), SqlValue::Text(key.clone())],
                        )
                        .unwrap();
                    let entry = oracle.entry(key).or_default();
                    prop_assert_eq!(result.affected, entry.len());
                    for slot in entry.iter_mut() {
                        *slot = v;
                    }
                }
                DbOp::Delete { k } => {
                    let key = format!("k{k}");
                    let result = db
                        .run_with_params(
                            "DELETE FROM kv WHERE k = ?",
                            &[SqlValue::Text(key.clone())],
                        )
                        .unwrap();
                    let removed = oracle.remove(&key).unwrap_or_default();
                    prop_assert_eq!(result.affected, removed.len());
                }
                DbOp::Range { min } => {
                    let result = db
                        .run_with_params(
                            "SELECT v FROM kv WHERE v >= ?",
                            &[SqlValue::Int(min)],
                        )
                        .unwrap();
                    let mut got: Vec<i64> = result
                        .rows
                        .iter()
                        .map(|r| r[0].as_int().unwrap())
                        .collect();
                    got.sort_unstable();
                    let mut expect: Vec<i64> = oracle
                        .values()
                        .flatten()
                        .copied()
                        .filter(|&v| v >= min)
                        .collect();
                    expect.sort_unstable();
                    prop_assert_eq!(got, expect);
                }
            }
        }
        // Row count agrees at the end.
        let total: usize = oracle.values().map(Vec::len).sum();
        prop_assert_eq!(db.table("kv").unwrap().len(), total);
    }

    #[test]
    fn parser_never_panics(sql in "\\PC{0,100}") {
        let _ = parse(&sql);
    }

    #[test]
    fn snapshot_roundtrips_random_contents(
        rows in prop::collection::vec(
            (any::<u8>(), prop::option::of(-1000i64..1000), prop::collection::vec(any::<u8>(), 0..16)),
            0..40,
        ),
    ) {
        let mut db = Database::new();
        db.run("CREATE TABLE t (k, n, b)").unwrap();
        for (k, n, b) in &rows {
            db.run_with_params(
                "INSERT INTO t VALUES (?, ?, ?)",
                &[
                    SqlValue::Text(format!("k{k}")),
                    n.map(SqlValue::Int).unwrap_or(SqlValue::Null),
                    SqlValue::Blob(b.clone()),
                ],
            )
            .unwrap();
        }
        let bytes = asbestos_db::snapshot(&db);
        let mut restored = asbestos_db::restore(&bytes).expect("roundtrip");
        let before = db.run("SELECT * FROM t").unwrap();
        let after = restored.run("SELECT * FROM t").unwrap();
        prop_assert_eq!(before.rows, after.rows);
    }

    #[test]
    fn restore_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = asbestos_db::restore(&bytes);
    }

    #[test]
    fn lexer_handles_any_ascii(sql in "[ -~]{0,100}") {
        let _ = asbestos_db::lexer::lex(&sql);
    }
}
