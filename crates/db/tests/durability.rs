//! Durability policy tests: crash-at-every-offset recovery at the
//! database layer, stale-handle rejection after reboot, and the
//! recovery covert-channel regression.
//!
//! `ASBESTOS_CRASH_SWEEP_SEED` reseeds the randomized batch shapes, as
//! in `asbestos-store`'s sweeps.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_db::{DbMsg, DbProxy, DurableDb, SqlValue, DB_PORT_ENV, DB_TRUSTED_ENV};
use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, CostModel, Handle, Kernel, Label, Level, SendArgs, Value};
use asbestos_store::MemDev;

fn sweep_seed() -> u64 {
    std::env::var("ASBESTOS_CRASH_SWEEP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xD0_D6E5)
}

// ---------------------------------------------------------------------
// Crash sweep at the database layer.
// ---------------------------------------------------------------------

/// The tentpole acceptance property, at statement granularity: tear the
/// WAL at **every byte offset** and the recovered database must equal
/// the state after some whole number of committed batches — never a
/// fractional batch, never a row from an unacknowledged statement.
#[test]
fn crash_at_every_record_boundary_recovers_a_committed_prefix() {
    let mut seed = sweep_seed();
    let dev = MemDev::new();
    let mut db = DurableDb::open(Box::new(dev.clone()));
    db.set_group_commit(usize::MAX); // explicit flush = batch boundary

    // `prefix_states[k]` = snapshot after k committed batches (batch 1
    // is the DDL); `boundaries[k]` = WAL length at that point.
    let mut prefix_states = vec![asbestos_db::snapshot(&asbestos_db::Database::new())];
    let mut boundaries = vec![0usize];
    db.apply_ddl("CREATE TABLE notes (author, body)");
    db.flush();
    prefix_states.push(db.snapshot_bytes());
    boundaries.push(dev.dump("wal.00000000").len());
    for batch in 0..10 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(batch);
        let n = 1 + (seed >> 33) % 4;
        for i in 0..n {
            db.worker_exec(
                "INSERT INTO notes VALUES (?, ?)",
                &[
                    SqlValue::Text(format!("author-{batch}")),
                    SqlValue::Int(i as i64),
                ],
                (batch % 3) as i64 + 1,
            )
            .expect("worker write accepted");
        }
        db.flush();
        prefix_states.push(db.snapshot_bytes());
        boundaries.push(dev.dump("wal.00000000").len());
    }

    let wal = dev.dump("wal.00000000");
    for cut in 0..=wal.len() {
        let torn = dev.fork();
        torn.truncate_object("wal.00000000", cut);
        let recovered = DurableDb::open(Box::new(torn));
        // Largest committed batch count whose commit marker fits the cut.
        let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(
            recovered.snapshot_bytes(),
            prefix_states[expect],
            "cut at byte {cut}: expected exactly {expect} committed batches"
        );
        assert_eq!(recovered.recovery().skipped, 0, "cut at byte {cut}");
    }
}

// ---------------------------------------------------------------------
// Kernel-level harness (a compact variant of proxy_policy.rs's).
// ---------------------------------------------------------------------

type MsgLog = Arc<Mutex<Vec<DbMsg>>>;

fn spawn_trusted(kernel: &mut Kernel) {
    kernel.spawn(
        "trusted",
        Category::Okdb,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env(DB_TRUSTED_ENV, Value::Handle(p));
                sys.publish_env("trusted.cmd", Value::Handle(p));
            },
            move |sys, msg| {
                if let Some(DbMsg::AdminPort { port }) = DbMsg::from_value(&msg.body) {
                    sys.set_env("admin", Value::Handle(port));
                    return;
                }
                let Some(items) = msg.body.as_list() else {
                    return;
                };
                match items.first().and_then(Value::as_str) {
                    Some("ddl") => {
                        let sql = items[1].as_str().unwrap().to_string();
                        let admin = sys.env("admin").unwrap().as_handle().unwrap();
                        sys.send(admin, DbMsg::Ddl { sql }.to_value()).unwrap();
                    }
                    // ["raw-query", sql]: an admin-port Query (the
                    // read-only arm) with arbitrary SQL — the mutation-
                    // smuggling regression drives this.
                    Some("raw-query") => {
                        let sql = items[1].as_str().unwrap().to_string();
                        let admin = sys.env("admin").unwrap().as_handle().unwrap();
                        let reply = sys.env("trusted.cmd").unwrap().as_handle().unwrap();
                        sys.send(
                            admin,
                            DbMsg::Query {
                                sql,
                                params: vec![],
                                reply,
                            }
                            .to_value(),
                        )
                        .unwrap();
                    }
                    Some("bind") => {
                        // ["bind", user, worker_cmd]: mint fresh per-boot
                        // handles, register them with the proxy, hand the
                        // worker its credentials (§7.2 step 6).
                        let user = items[1].as_str().unwrap().to_string();
                        let worker_cmd = items[2].as_handle().unwrap();
                        let ut = sys.new_handle();
                        let ug = sys.new_handle();
                        let admin = sys.env("admin").unwrap().as_handle().unwrap();
                        sys.send_args(
                            admin,
                            DbMsg::Bind {
                                user: user.clone(),
                                taint: ut,
                                grant: ug,
                                reply: None,
                            }
                            .to_value(),
                            &SendArgs::new()
                                .grant(Label::from_pairs(Level::L3, &[(ut, Level::Star)])),
                        )
                        .unwrap();
                        let creds = Value::List(vec![
                            Value::Str("creds".into()),
                            Value::Str(user),
                            Value::Handle(ut),
                            Value::Handle(ug),
                        ]);
                        let args = SendArgs::new()
                            .grant(Label::from_pairs(Level::L3, &[(ug, Level::Star)]))
                            .contaminate(Label::from_pairs(Level::Star, &[(ut, Level::L3)]))
                            .raise_recv(Label::from_pairs(Level::Star, &[(ut, Level::L3)]));
                        sys.send_args(worker_cmd, creds, &args).unwrap();
                    }
                    _ => {}
                }
            },
        ),
    );
}

fn spawn_worker(kernel: &mut Kernel, name: &'static str) -> MsgLog {
    let log: MsgLog = Arc::new(Mutex::new(Vec::new()));
    let log2 = log.clone();
    kernel.spawn(
        name,
        Category::Okws,
        service_with_start(
            move |sys| {
                let cmd = sys.new_port(Label::top());
                sys.set_port_label(cmd, Label::top()).unwrap();
                sys.publish_env(&format!("{name}.cmd"), Value::Handle(cmd));
                let reply = sys.new_port(Label::top());
                sys.set_port_label(reply, Label::top()).unwrap();
                sys.set_env("reply", Value::Handle(reply));
            },
            move |sys, msg| {
                if let Some(db_msg) = DbMsg::from_value(&msg.body) {
                    log2.lock().unwrap().push(db_msg);
                    return;
                }
                let Some(items) = msg.body.as_list() else {
                    return;
                };
                match items.first().and_then(Value::as_str) {
                    Some("creds") => {
                        sys.set_env("user", items[1].clone());
                        sys.set_env("ut", items[2].clone());
                        sys.set_env("ug", items[3].clone());
                    }
                    // ["exec", sql] — V from stored creds.
                    // ["exec-as", sql, user, ut, ug] — V from explicit
                    // (possibly stale) handle values.
                    Some("exec") | Some("exec-as") => {
                        let sql = items[1].as_str().unwrap().to_string();
                        let (user, ut, ug) = if items[0].as_str() == Some("exec") {
                            (
                                sys.env("user").unwrap().as_str().unwrap().to_string(),
                                sys.env("ut").unwrap().as_handle().unwrap(),
                                sys.env("ug").unwrap().as_handle().unwrap(),
                            )
                        } else {
                            (
                                items[2].as_str().unwrap().to_string(),
                                items[3].as_handle().unwrap(),
                                items[4].as_handle().unwrap(),
                            )
                        };
                        let reply = sys.env("reply").unwrap().as_handle().unwrap();
                        let db = sys.env(DB_PORT_ENV).unwrap().as_handle().unwrap();
                        let my_ut_level = sys.send_label().get(ut);
                        let v = Label::from_pairs(Level::L2, &[(ut, my_ut_level), (ug, Level::L0)]);
                        let _ = sys.send_args(
                            db,
                            DbMsg::Exec {
                                user,
                                sql,
                                params: vec![],
                                reply: Some(reply),
                            }
                            .to_value(),
                            &SendArgs::new().verify(v),
                        );
                    }
                    Some("query") => {
                        let sql = items[1].as_str().unwrap().to_string();
                        let reply = sys.env("reply").unwrap().as_handle().unwrap();
                        let db = sys.env(DB_PORT_ENV).unwrap().as_handle().unwrap();
                        sys.send(
                            db,
                            DbMsg::Query {
                                sql,
                                params: vec![],
                                reply,
                            }
                            .to_value(),
                        )
                        .unwrap();
                    }
                    _ => {}
                }
            },
        ),
    );
    log
}

fn cmd(kernel: &Kernel, name: &str) -> Handle {
    kernel
        .global_env(&format!("{name}.cmd"))
        .unwrap()
        .as_handle()
        .unwrap()
}

fn inject_list(kernel: &mut Kernel, port: Handle, items: Vec<Value>) {
    kernel.inject(port, Value::List(items));
    kernel.run();
}

/// Boots a kernel (at the given epoch) with trusted party, durable proxy
/// over `dev`, and two workers; binds both users.
fn boot(seed: u64, epoch: u64, dev: &MemDev) -> (Kernel, MsgLog, MsgLog) {
    let mut kernel = Kernel::with_boot_epoch(seed, CostModel::default(), 1, epoch);
    spawn_trusted(&mut kernel);
    kernel.spawn(
        "ok-dbproxy",
        Category::Okdb,
        Box::new(DbProxy::with_store(Box::new(dev.clone()))),
    );
    let alice_log = spawn_worker(&mut kernel, "alice-worker");
    let bob_log = spawn_worker(&mut kernel, "bob-worker");
    kernel.run();
    let trusted = cmd(&kernel, "trusted");
    inject_list(
        &mut kernel,
        trusted,
        vec!["ddl".into(), "CREATE TABLE store (k, v)".into()],
    );
    for (user, worker) in [("alice", "alice-worker"), ("bob", "bob-worker")] {
        let wc = cmd(&kernel, worker);
        inject_list(
            &mut kernel,
            trusted,
            vec!["bind".into(), user.into(), Value::Handle(wc)],
        );
    }
    (kernel, alice_log, bob_log)
}

fn worker_exec(kernel: &mut Kernel, worker: &str, sql: &str) {
    let c = cmd(kernel, worker);
    inject_list(kernel, c, vec!["exec".into(), sql.into()]);
}

fn worker_query(kernel: &mut Kernel, worker: &str, sql: &str) {
    let c = cmd(kernel, worker);
    inject_list(kernel, c, vec!["query".into(), sql.into()]);
}

// ---------------------------------------------------------------------
// Stale handles and the re-bind path.
// ---------------------------------------------------------------------

#[test]
fn stale_pre_reboot_handles_are_rejected_after_recovery() {
    let dev = MemDev::new();

    // Boot 1: alice writes a row; remember her boot-1 handle values.
    let (mut k1, alice_log, _bob) = boot(71, 1, &dev);
    worker_exec(
        &mut k1,
        "alice-worker",
        "INSERT INTO store VALUES ('c', 'red')",
    );
    assert_eq!(
        alice_log.lock().unwrap().last(),
        Some(&DbMsg::ExecR {
            ok: true,
            affected: 1
        })
    );
    let alice_pid = k1.find_process("alice-worker").unwrap();
    let stale: Vec<Handle> = k1
        .process(alice_pid)
        .env
        .iter()
        .filter(|(key, _)| *key == "ut" || *key == "ug")
        .filter_map(|(_, v)| v.as_handle())
        .collect();
    assert_eq!(stale.len(), 2);
    let (stale_ut, stale_ug) = (stale[1], stale[0]); // env is sorted: ug, ut
    drop(k1); // crash: no teardown — acked writes are already durable

    // Boot 2 (fresh epoch): recover, and let MALLORY-as-bob present
    // alice's *stale* boot-1 handles before alice re-binds.
    let (mut k2, alice_log2, bob_log2) = boot(71, 2, &dev);
    let bob_cmd = cmd(&k2, "bob-worker");
    let drops_before = k2.stats().dropped_label_check;
    inject_list(
        &mut k2,
        bob_cmd,
        vec![
            "exec-as".into(),
            "DELETE FROM store".into(),
            "alice".into(),
            Value::Handle(stale_ut),
            Value::Handle(stale_ug),
        ],
    );
    // The claim `V(stale_ug) = 0` requires holding the handle at ⋆;
    // nobody in this boot does, so the kernel drops the message at the
    // proxy's door (discretionary integrity survives the reboot).
    assert!(
        bob_log2.lock().unwrap().is_empty(),
        "stale-credential write must not even reach the proxy"
    );
    assert!(k2.stats().dropped_label_check > drops_before);

    // Alice's fresh boot-2 credentials reconnect to her recovered row.
    worker_query(&mut k2, "alice-worker", "SELECT v FROM store WHERE k = 'c'");
    assert_eq!(
        *alice_log2.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["red".into()]
            },
            DbMsg::Done
        ]
    );
    // And she can still write (the uid re-bind is fully functional).
    alice_log2.lock().unwrap().clear();
    worker_exec(
        &mut k2,
        "alice-worker",
        "UPDATE store SET v = 'blue' WHERE k = 'c'",
    );
    assert_eq!(
        alice_log2.lock().unwrap().last(),
        Some(&DbMsg::ExecR {
            ok: true,
            affected: 1
        })
    );
}

#[test]
fn rebind_order_does_not_matter_after_reboot() {
    // The owners table — not bind arrival order — connects users to
    // their rows: rebind bob FIRST after the reboot and alice still gets
    // her own data.
    let dev = MemDev::new();
    let (mut k1, alice_log, bob_log) = boot(72, 1, &dev);
    worker_exec(
        &mut k1,
        "alice-worker",
        "INSERT INTO store VALUES ('c', 'red')",
    );
    worker_exec(
        &mut k1,
        "bob-worker",
        "INSERT INTO store VALUES ('c', 'blue')",
    );
    assert_eq!(alice_log.lock().unwrap().len(), 1);
    assert_eq!(bob_log.lock().unwrap().len(), 1);
    drop(k1);

    // Boot 2 binds in REVERSE order (bob, then alice).
    let mut k2 = Kernel::with_boot_epoch(72, CostModel::default(), 1, 2);
    spawn_trusted(&mut k2);
    k2.spawn(
        "ok-dbproxy",
        Category::Okdb,
        Box::new(DbProxy::with_store(Box::new(dev.clone()))),
    );
    let alice_log2 = spawn_worker(&mut k2, "alice-worker");
    let bob_log2 = spawn_worker(&mut k2, "bob-worker");
    k2.run();
    let trusted = cmd(&k2, "trusted");
    for (user, worker) in [("bob", "bob-worker"), ("alice", "alice-worker")] {
        let wc = cmd(&k2, worker);
        inject_list(
            &mut k2,
            trusted,
            vec!["bind".into(), user.into(), Value::Handle(wc)],
        );
    }
    worker_query(&mut k2, "alice-worker", "SELECT v FROM store WHERE k = 'c'");
    assert_eq!(
        *alice_log2.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["red".into()]
            },
            DbMsg::Done
        ]
    );
    worker_query(&mut k2, "bob-worker", "SELECT v FROM store WHERE k = 'c'");
    assert_eq!(
        *bob_log2.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["blue".into()]
            },
            DbMsg::Done
        ]
    );
}

#[test]
fn admin_query_arm_cannot_smuggle_mutations() {
    // Regression: the admin Query arm executes SQL without redo logging
    // (reads need no log). A mutation smuggled through it would change
    // memory but not the WAL, so the recovered state would silently
    // diverge from what the deployment observably ran with. The arm must
    // refuse anything but SELECT.
    let dev = MemDev::new();
    let (mut k1, alice_log, _bob) = boot(74, 1, &dev);
    worker_exec(
        &mut k1,
        "alice-worker",
        "INSERT INTO store VALUES ('c', 'red')",
    );
    let trusted = cmd(&k1, "trusted");
    inject_list(
        &mut k1,
        trusted,
        vec!["raw-query".into(), "DELETE FROM store".into()],
    );
    // In-memory state is untouched...
    alice_log.lock().unwrap().clear();
    worker_query(&mut k1, "alice-worker", "SELECT v FROM store WHERE k = 'c'");
    assert_eq!(
        *alice_log.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["red".into()]
            },
            DbMsg::Done
        ],
        "the smuggled DELETE must not have executed"
    );
    drop(k1);
    // ...and so is the recovered state (memory ≡ WAL, always).
    let (mut k2, alice_log2, _bob2) = boot(74, 2, &dev);
    worker_query(&mut k2, "alice-worker", "SELECT v FROM store WHERE k = 'c'");
    assert_eq!(
        *alice_log2.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["red".into()]
            },
            DbMsg::Done
        ]
    );
}

// ---------------------------------------------------------------------
// Covert-channel regression: recovery leaks nothing across labels.
// ---------------------------------------------------------------------

#[test]
fn recovery_reveals_nothing_about_other_users_rows() {
    // Two worlds, identical except alice's recovered data volume: in
    // world 1 alice committed five rows before the crash; in world 2
    // none. Bob's entire observable reply stream after recovery must be
    // byte-identical — he cannot learn whether alice's rows were
    // recovered, how many there were, or in what order they replayed.
    let observe_bob = |alice_rows: usize| -> Vec<DbMsg> {
        let dev = MemDev::new();
        let (mut k1, alice_log, bob_log) = boot(73, 1, &dev);
        for i in 0..alice_rows {
            worker_exec(
                &mut k1,
                "alice-worker",
                &format!("INSERT INTO store VALUES ('a{i}', 'secret')"),
            );
        }
        worker_exec(
            &mut k1,
            "bob-worker",
            "INSERT INTO store VALUES ('b', 'mine')",
        );
        assert_eq!(alice_log.lock().unwrap().len(), alice_rows);
        drop(k1);

        let (mut k2, _alice_log2, bob_log2) = boot(73, 2, &dev);
        let _ = bob_log;
        worker_query(&mut k2, "bob-worker", "SELECT v FROM store");
        let log = bob_log2.lock().unwrap().clone();
        log
    };
    let with_alice_data = observe_bob(5);
    let without_alice_data = observe_bob(0);
    assert_eq!(
        with_alice_data, without_alice_data,
        "bob's post-recovery view must be independent of alice's data"
    );
    assert_eq!(
        with_alice_data,
        vec![
            DbMsg::Row {
                values: vec!["mine".into()]
            },
            DbMsg::Done
        ]
    );
}
