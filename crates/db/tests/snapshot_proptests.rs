//! Property tests for the snapshot codec: adversarial bytes never panic,
//! and round-trips are identities for every `SqlValue` shape.

use asbestos_db::{restore, snapshot, Database, SnapshotError, SqlValue};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = SqlValue> {
    prop_oneof![
        Just(SqlValue::Null),
        any::<i64>().prop_map(SqlValue::Int),
        // Includes empty strings and multi-byte UTF-8.
        "[a-z0-9 _é☃'%-]{0,16}".prop_map(SqlValue::Text),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(SqlValue::Blob),
    ]
}

fn arb_db() -> impl Strategy<Value = Vec<(String, Vec<Vec<SqlValue>>)>> {
    // Up to 3 tables, 1–3 columns each, up to 8 rows.
    prop::collection::vec(
        (
            1usize..4,
            prop::collection::vec(prop::collection::vec(arb_value(), 3..4), 0..8),
        ),
        0..3,
    )
    .prop_map(|tables| {
        tables
            .into_iter()
            .enumerate()
            .map(|(i, (ncols, rows))| {
                let rows = rows
                    .into_iter()
                    .map(|mut r| {
                        r.truncate(ncols);
                        r
                    })
                    .collect();
                (format!("t{i}"), rows)
            })
            .collect()
    })
}

fn build(tables: &[(String, Vec<Vec<SqlValue>>)]) -> Database {
    let mut db = Database::new();
    for (name, rows) in tables {
        let ncols = rows.first().map_or(2, Vec::len).max(1);
        let cols: Vec<String> = (0..ncols).map(|c| format!("c{c}")).collect();
        db.run(&format!("CREATE TABLE {name} ({})", cols.join(", ")))
            .unwrap();
        for row in rows {
            let placeholders: Vec<&str> = row.iter().map(|_| "?").collect();
            db.run_with_params(
                &format!("INSERT INTO {name} VALUES ({})", placeholders.join(", ")),
                row,
            )
            .unwrap();
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Round-trip identity over arbitrary databases covering every
    /// `SqlValue` tag (NULL, extreme ints, empty and multi-byte text,
    /// empty and binary blobs).
    #[test]
    fn roundtrip_identity(tables in arb_db()) {
        let db = build(&tables);
        let bytes = snapshot(&db);
        let restored = restore(&bytes).expect("a fresh snapshot restores");
        // Snapshot-of-restore is byte-identical: the codec is canonical.
        prop_assert_eq!(snapshot(&restored), bytes);
    }

    /// Every truncation of a valid snapshot either restores cleanly or
    /// returns a `SnapshotError` — never panics, never fabricates rows
    /// beyond what the prefix encodes.
    #[test]
    fn truncations_never_panic(tables in arb_db(), permille in 0u32..1000) {
        let db = build(&tables);
        let bytes = snapshot(&db);
        let cut = bytes.len() * permille as usize / 1000;
        match restore(&bytes[..cut]) {
            Ok(recovered) => {
                // A shorter prefix can only decode to fewer-or-equal rows.
                let orig: usize = db.table_names().iter().map(|t| db.table(t).unwrap().len()).sum();
                let got: usize = recovered
                    .table_names()
                    .iter()
                    .map(|t| recovered.table(t).unwrap().len())
                    .sum();
                prop_assert!(got <= orig);
            }
            Err(
                SnapshotError::BadMagic
                | SnapshotError::BadVersion(_)
                | SnapshotError::Truncated
                | SnapshotError::BadTag(_)
                | SnapshotError::BadText,
            ) => {}
        }
    }

    /// Arbitrary byte flips never panic: restore returns *something* —
    /// `Ok` with whatever the flipped bytes legally encode, or an error.
    #[test]
    fn byte_flips_never_panic(
        tables in arb_db(),
        flips in prop::collection::vec((any::<usize>(), any::<u8>()), 1..6),
    ) {
        let db = build(&tables);
        let mut bytes = snapshot(&db);
        if !bytes.is_empty() {
            let len = bytes.len();
            for (idx, mask) in flips {
                bytes[idx % len] ^= mask | 1; // nonzero mask: a real flip
            }
            let _ = restore(&bytes); // must not panic or hang
        }
    }

    /// Fully random byte soup never panics either.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = restore(&bytes);
    }
}

/// Pinned, non-random round-trip for every tag at its edge values (the
/// proptest generator covers the space; this pins the corners forever).
#[test]
fn all_sqlvalue_tags_round_trip_at_edges() {
    let mut db = Database::new();
    db.run("CREATE TABLE edges (v)").unwrap();
    let edge_values = vec![
        SqlValue::Null,
        SqlValue::Int(0),
        SqlValue::Int(i64::MIN),
        SqlValue::Int(i64::MAX),
        SqlValue::Text(String::new()),
        SqlValue::Text("ünïcødé \u{1F512} taint".into()),
        SqlValue::Blob(Vec::new()),
        SqlValue::Blob((0..=255).collect()),
    ];
    for v in &edge_values {
        db.run_with_params("INSERT INTO edges VALUES (?)", std::slice::from_ref(v))
            .unwrap();
    }
    let mut restored = restore(&snapshot(&db)).unwrap();
    let rows = restored.run("SELECT v FROM edges").unwrap().rows;
    let got: Vec<SqlValue> = rows.into_iter().map(|mut r| r.remove(0)).collect();
    assert_eq!(got, edge_values);
}
