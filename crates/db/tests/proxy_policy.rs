//! ok-dbproxy policy tests: the §7.5 write gate and per-row taint, plus the
//! §7.6 decentralized declassification flow, all through real processes.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_db::{spawn_dbproxy, DbMsg, DB_PORT_ENV, DB_TRUSTED_ENV};
use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, SendArgs, Value};

/// Spawns the trusted identity party (idd's role in this crate's tests):
/// receives the proxy's admin-port grant, binds users, and issues worker
/// credentials on command.
fn spawn_trusted(kernel: &mut Kernel) {
    kernel.spawn(
        "trusted",
        Category::Okdb,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                // Publish directly under the env key the proxy reads.
                sys.publish_env(DB_TRUSTED_ENV, Value::Handle(p));
                sys.publish_env("trusted.cmd", Value::Handle(p));
            },
            move |sys, msg| {
                if let Some(DbMsg::AdminPort { port }) = DbMsg::from_value(&msg.body) {
                    sys.set_env("admin", Value::Handle(port));
                    return;
                }
                let Some(items) = msg.body.as_list() else {
                    return;
                };
                match items.first().and_then(Value::as_str) {
                    Some("ddl") => {
                        let sql = items[1].as_str().unwrap().to_string();
                        let admin = sys.env("admin").unwrap().as_handle().unwrap();
                        sys.send(admin, DbMsg::Ddl { sql }.to_value()).unwrap();
                    }
                    Some("bind") => {
                        // ["bind", user, worker_cmd]: mint handles, register
                        // them with the proxy, and give the worker the
                        // §7.2 step-6 treatment (uG ⋆, contaminate uT 3).
                        let user = items[1].as_str().unwrap().to_string();
                        let worker_cmd = items[2].as_handle().unwrap();
                        let ut = sys.new_handle();
                        let ug = sys.new_handle();
                        sys.set_env(&format!("ut.{user}"), Value::Handle(ut));
                        sys.set_env(&format!("ug.{user}"), Value::Handle(ug));
                        let admin = sys.env("admin").unwrap().as_handle().unwrap();
                        // §7.5: grant the proxy uT ⋆ with the binding.
                        sys.send_args(
                            admin,
                            DbMsg::Bind {
                                user: user.clone(),
                                taint: ut,
                                grant: ug,
                                reply: None,
                            }
                            .to_value(),
                            &SendArgs::new()
                                .grant(Label::from_pairs(Level::L3, &[(ut, Level::Star)])),
                        )
                        .unwrap();
                        let creds = Value::List(vec![
                            Value::Str("creds".into()),
                            Value::Str(user),
                            Value::Handle(ut),
                            Value::Handle(ug),
                        ]);
                        let args = SendArgs::new()
                            .grant(Label::from_pairs(Level::L3, &[(ug, Level::Star)]))
                            .contaminate(Label::from_pairs(Level::Star, &[(ut, Level::L3)]))
                            .raise_recv(Label::from_pairs(Level::Star, &[(ut, Level::L3)]));
                        sys.send_args(worker_cmd, creds, &args).unwrap();
                    }
                    Some("bind-declassifier") => {
                        // ["bind-declassifier", user, worker_cmd]: §7.6 — a
                        // declassifier for an existing user gets the *same*
                        // handles, but uT at ⋆ instead of contamination.
                        let user = items[1].as_str().unwrap().to_string();
                        let worker_cmd = items[2].as_handle().unwrap();
                        let ut = sys.env(&format!("ut.{user}")).unwrap().as_handle().unwrap();
                        let ug = sys.env(&format!("ug.{user}")).unwrap().as_handle().unwrap();
                        let creds = Value::List(vec![
                            Value::Str("creds".into()),
                            Value::Str(user),
                            Value::Handle(ut),
                            Value::Handle(ug),
                        ]);
                        // Grant ⋆ for both handles and raise the receive
                        // label: holding ⋆ resists contamination but does
                        // not by itself admit tainted messages.
                        let args = SendArgs::new()
                            .grant(Label::from_pairs(
                                Level::L3,
                                &[(ut, Level::Star), (ug, Level::Star)],
                            ))
                            .raise_recv(Label::from_pairs(Level::Star, &[(ut, Level::L3)]));
                        sys.send_args(worker_cmd, creds, &args).unwrap();
                    }
                    _ => {}
                }
            },
        ),
    );
}

/// Spawns a worker process for `user`; returns its command port key and a
/// shared log of database replies it received.
fn spawn_worker(kernel: &mut Kernel, name: &'static str) -> Arc<Mutex<Vec<DbMsg>>> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let log2 = log.clone();
    kernel.spawn(
        name,
        Category::Okws,
        service_with_start(
            move |sys| {
                let cmd = sys.new_port(Label::top());
                sys.set_port_label(cmd, Label::top()).unwrap();
                sys.publish_env(&format!("{name}.cmd"), Value::Handle(cmd));
                let reply = sys.new_port(Label::top());
                sys.set_port_label(reply, Label::top()).unwrap();
                sys.set_env("reply", Value::Handle(reply));
            },
            move |sys, msg| {
                if let Some(db_msg) = DbMsg::from_value(&msg.body) {
                    log2.lock().unwrap().push(db_msg);
                    return;
                }
                let Some(items) = msg.body.as_list() else {
                    return;
                };
                match items.first().and_then(Value::as_str) {
                    Some("creds") => {
                        sys.set_env("user", items[1].clone());
                        sys.set_env("ut", items[2].clone());
                        sys.set_env("ug", items[3].clone());
                    }
                    Some("exec") | Some("exec-noverify") => {
                        let sql = items[1].as_str().unwrap().to_string();
                        let user = sys.env("user").unwrap().as_str().unwrap().to_string();
                        let reply = sys.env("reply").unwrap().as_handle().unwrap();
                        let db = sys.env(DB_PORT_ENV).unwrap().as_handle().unwrap();
                        let body = DbMsg::Exec {
                            user,
                            sql,
                            params: vec![],
                            reply: Some(reply),
                        }
                        .to_value();
                        if items[0].as_str() == Some("exec") {
                            let ut = sys.env("ut").unwrap().as_handle().unwrap();
                            let ug = sys.env("ug").unwrap().as_handle().unwrap();
                            // V names the credentials explicitly (§5.4): the
                            // worker's own taint level for uT (3 normally,
                            // ⋆ for declassifiers) and uG 0.
                            let my_ut_level = sys.send_label().get(ut);
                            let v =
                                Label::from_pairs(Level::L2, &[(ut, my_ut_level), (ug, Level::L0)]);
                            sys.send_args(db, body, &SendArgs::new().verify(v)).unwrap();
                        } else {
                            sys.send(db, body).unwrap();
                        }
                    }
                    Some("query") => {
                        let sql = items[1].as_str().unwrap().to_string();
                        let reply = sys.env("reply").unwrap().as_handle().unwrap();
                        let db = sys.env(DB_PORT_ENV).unwrap().as_handle().unwrap();
                        sys.send(
                            db,
                            DbMsg::Query {
                                sql,
                                params: vec![],
                                reply,
                            }
                            .to_value(),
                        )
                        .unwrap();
                    }
                    _ => {}
                }
            },
        ),
    );
    log
}

fn cmd(kernel: &Kernel, name: &str) -> Handle {
    kernel
        .global_env(&format!("{name}.cmd"))
        .unwrap()
        .as_handle()
        .unwrap()
}

/// A worker's observed reply stream.
type MsgLog = Arc<Mutex<Vec<DbMsg>>>;

/// Full environment: trusted party, proxy, two user workers, store table.
fn setup(seed: u64) -> (Kernel, MsgLog, MsgLog) {
    let mut kernel = Kernel::new(seed);
    spawn_trusted(&mut kernel);
    spawn_dbproxy(&mut kernel);
    let alice_log = spawn_worker(&mut kernel, "alice-worker");
    let bob_log = spawn_worker(&mut kernel, "bob-worker");
    kernel.run();
    let trusted = cmd(&kernel, "trusted");
    let alice_cmd = cmd(&kernel, "alice-worker");
    let bob_cmd = cmd(&kernel, "bob-worker");
    kernel.inject(
        trusted,
        Value::List(vec!["ddl".into(), "CREATE TABLE store (k, v)".into()]),
    );
    kernel.inject(
        trusted,
        Value::List(vec![
            "bind".into(),
            "alice".into(),
            Value::Handle(alice_cmd),
        ]),
    );
    kernel.inject(
        trusted,
        Value::List(vec!["bind".into(), "bob".into(), Value::Handle(bob_cmd)]),
    );
    kernel.run();
    (kernel, alice_log, bob_log)
}

fn exec(kernel: &mut Kernel, worker: &str, sql: &str) {
    let c = cmd(kernel, worker);
    kernel.inject(c, Value::List(vec!["exec".into(), sql.into()]));
    kernel.run();
}

fn query(kernel: &mut Kernel, worker: &str, sql: &str) {
    let c = cmd(kernel, worker);
    kernel.inject(c, Value::List(vec!["query".into(), sql.into()]));
    kernel.run();
}

#[test]
fn verified_writes_land_with_owner_id() {
    let (mut kernel, alice_log, _bob) = setup(61);
    exec(
        &mut kernel,
        "alice-worker",
        "INSERT INTO store VALUES ('color', 'red')",
    );
    assert_eq!(
        alice_log.lock().unwrap().last(),
        Some(&DbMsg::ExecR {
            ok: true,
            affected: 1
        })
    );
    // Read back: one tainted row plus the untainted Done.
    alice_log.lock().unwrap().clear();
    query(&mut kernel, "alice-worker", "SELECT k, v FROM store");
    let log = alice_log.lock().unwrap();
    assert_eq!(
        *log,
        vec![
            DbMsg::Row {
                values: vec!["color".into(), "red".into()]
            },
            DbMsg::Done,
        ]
    );
}

#[test]
fn unverified_writes_are_refused() {
    let (mut kernel, alice_log, _bob) = setup(62);
    let c = cmd(&kernel, "alice-worker");
    kernel.inject(
        c,
        Value::List(vec![
            "exec-noverify".into(),
            "INSERT INTO store VALUES ('k', 'v')".into(),
        ]),
    );
    kernel.run();
    assert_eq!(
        alice_log.lock().unwrap().last(),
        Some(&DbMsg::ExecR {
            ok: false,
            affected: 0
        })
    );
    // Nothing landed.
    alice_log.lock().unwrap().clear();
    query(&mut kernel, "alice-worker", "SELECT k FROM store");
    assert_eq!(*alice_log.lock().unwrap(), vec![DbMsg::Done]);
}

#[test]
fn user_id_column_is_unreachable() {
    let (mut kernel, alice_log, _bob) = setup(63);
    exec(
        &mut kernel,
        "alice-worker",
        "INSERT INTO store VALUES ('c', 'red')",
    );
    alice_log.lock().unwrap().clear();
    // Neither writes nor reads may mention the hidden column (§7.5: "The
    // workers themselves cannot access or change this column").
    exec(
        &mut kernel,
        "alice-worker",
        "UPDATE store SET user_id = 0 WHERE k = 'c'",
    );
    assert_eq!(
        alice_log.lock().unwrap().last(),
        Some(&DbMsg::ExecR {
            ok: false,
            affected: 0
        })
    );
    alice_log.lock().unwrap().clear();
    query(&mut kernel, "alice-worker", "SELECT user_id FROM store");
    assert_eq!(
        *alice_log.lock().unwrap(),
        vec![DbMsg::Done],
        "projection refused"
    );
    alice_log.lock().unwrap().clear();
    query(
        &mut kernel,
        "alice-worker",
        "SELECT k FROM store WHERE user_id = 0",
    );
    assert_eq!(
        *alice_log.lock().unwrap(),
        vec![DbMsg::Done],
        "filter refused"
    );
}

#[test]
fn rows_are_isolated_between_users() {
    let (mut kernel, alice_log, bob_log) = setup(64);
    exec(
        &mut kernel,
        "alice-worker",
        "INSERT INTO store VALUES ('color', 'red')",
    );
    exec(
        &mut kernel,
        "bob-worker",
        "INSERT INTO store VALUES ('color', 'blue')",
    );

    // Alice's SELECT matches both rows; the proxy sends both, each tainted
    // by its owner; the kernel drops bob's row at alice's door.
    alice_log.lock().unwrap().clear();
    let drops_before = kernel.stats().dropped_label_check;
    query(
        &mut kernel,
        "alice-worker",
        "SELECT v FROM store WHERE k = 'color'",
    );
    assert_eq!(
        *alice_log.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["red".into()]
            },
            DbMsg::Done
        ]
    );
    assert_eq!(
        kernel.stats().dropped_label_check,
        drops_before + 1,
        "bob's row was sent and dropped"
    );

    // Bob sees only his.
    bob_log.lock().unwrap().clear();
    query(
        &mut kernel,
        "bob-worker",
        "SELECT v FROM store WHERE k = 'color'",
    );
    assert_eq!(
        *bob_log.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["blue".into()]
            },
            DbMsg::Done
        ]
    );
}

#[test]
fn writes_cannot_touch_other_users_rows() {
    let (mut kernel, alice_log, bob_log) = setup(65);
    exec(
        &mut kernel,
        "alice-worker",
        "INSERT INTO store VALUES ('color', 'red')",
    );
    // Bob's malicious broad UPDATE and DELETE are silently scoped to bob's
    // (empty) row set by the owner guard.
    bob_log.lock().unwrap().clear();
    exec(
        &mut kernel,
        "bob-worker",
        "UPDATE store SET v = 'hacked' WHERE k = 'color'",
    );
    assert_eq!(
        bob_log.lock().unwrap().last(),
        Some(&DbMsg::ExecR {
            ok: true,
            affected: 0
        })
    );
    exec(&mut kernel, "bob-worker", "DELETE FROM store");
    assert_eq!(
        bob_log.lock().unwrap().last(),
        Some(&DbMsg::ExecR {
            ok: true,
            affected: 0
        })
    );
    // Alice's row is intact.
    alice_log.lock().unwrap().clear();
    query(&mut kernel, "alice-worker", "SELECT v FROM store");
    assert_eq!(
        *alice_log.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["red".into()]
            },
            DbMsg::Done
        ]
    );
}

#[test]
fn policy_persists_across_reboot() {
    // §7.5: "OKWS can extend its label-based security policy to one that
    // persists across system reboots." Rows (with the hidden ownership
    // column) survive via snapshot; handles are re-minted after the reboot
    // and re-binding reconnects rows to owners.
    let (mut kernel, alice_log, _bob) = setup(67);
    exec(
        &mut kernel,
        "alice-worker",
        "INSERT INTO store VALUES ('color', 'red')",
    );
    exec(
        &mut kernel,
        "bob-worker",
        "INSERT INTO store VALUES ('color', 'blue')",
    );

    // Take the snapshot through god-mode inspection of the proxy.
    let proxy_pid = kernel.find_process("ok-dbproxy").unwrap();
    let snapshot = kernel
        .service_as::<asbestos_db::DbProxy>(proxy_pid)
        .expect("downcast proxy")
        .snapshot();

    // "Reboot": a fresh kernel; the proxy boots from the snapshot. The
    // trusted party re-binds users in the same order, so alice gets uid 1
    // again and her rows reconnect to her fresh taint handle.
    let mut kernel = Kernel::new(68);
    spawn_trusted(&mut kernel);
    let restored = asbestos_db::restore(&snapshot).expect("snapshot readable");
    kernel.spawn(
        "ok-dbproxy",
        Category::Okdb,
        Box::new(asbestos_db::DbProxy::with_database(restored)),
    );
    let alice_log2 = spawn_worker(&mut kernel, "alice-worker");
    let bob_log2 = spawn_worker(&mut kernel, "bob-worker");
    kernel.run();
    let trusted = cmd(&kernel, "trusted");
    kernel.inject(
        trusted,
        Value::List(vec![
            "bind".into(),
            "alice".into(),
            Value::Handle(cmd(&kernel, "alice-worker")),
        ]),
    );
    kernel.inject(
        trusted,
        Value::List(vec![
            "bind".into(),
            "bob".into(),
            Value::Handle(cmd(&kernel, "bob-worker")),
        ]),
    );
    kernel.run();

    // Alice sees her pre-reboot row — and only hers.
    query(
        &mut kernel,
        "alice-worker",
        "SELECT v FROM store WHERE k = 'color'",
    );
    assert_eq!(
        *alice_log2.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["red".into()]
            },
            DbMsg::Done
        ]
    );
    bob_log2.lock().unwrap().clear();
    query(
        &mut kernel,
        "bob-worker",
        "SELECT v FROM store WHERE k = 'color'",
    );
    assert_eq!(
        *bob_log2.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["blue".into()]
            },
            DbMsg::Done
        ]
    );
    drop(alice_log);
}

#[test]
fn declassified_rows_are_public_and_untainted() {
    // §7.6: a declassifier for alice (holding uT ⋆) publishes her profile;
    // bob can then read it without label interference.
    let mut kernel = Kernel::new(66);
    spawn_trusted(&mut kernel);
    spawn_dbproxy(&mut kernel);
    let _alice_log = spawn_worker(&mut kernel, "alice-worker");
    let bob_log = spawn_worker(&mut kernel, "bob-worker");
    let decl_log = spawn_worker(&mut kernel, "alice-declassifier");
    kernel.run();
    let trusted = cmd(&kernel, "trusted");
    kernel.inject(
        trusted,
        Value::List(vec![
            "ddl".into(),
            "CREATE TABLE profiles (name, bio)".into(),
        ]),
    );
    kernel.inject(
        trusted,
        Value::List(vec![
            "bind".into(),
            "alice".into(),
            Value::Handle(cmd(&kernel, "alice-worker")),
        ]),
    );
    kernel.inject(
        trusted,
        Value::List(vec![
            "bind".into(),
            "bob".into(),
            Value::Handle(cmd(&kernel, "bob-worker")),
        ]),
    );
    kernel.run();
    // The declassifier gets alice's handles at ⋆ (declassifier = true).
    // Bind alice's identity again for the declassifier? No — §7.6: the
    // declassifier is a worker for the *same* user. Rebinding would mint
    // new handles, so instead route the same credentials: bind once more
    // with the declassifier flag for the same username is wrong; instead
    // the trusted party sends declassifier creds directly.
    kernel.inject(
        trusted,
        Value::List(vec![
            "bind-declassifier".into(),
            "alice".into(),
            Value::Handle(cmd(&kernel, "alice-declassifier")),
        ]),
    );
    kernel.run();

    // The declassifier publishes alice's bio with V(uT) = ⋆.
    exec(
        &mut kernel,
        "alice-declassifier",
        "INSERT INTO profiles VALUES ('alice', 'public bio')",
    );
    assert_eq!(
        decl_log.lock().unwrap().last(),
        Some(&DbMsg::ExecR {
            ok: true,
            affected: 1
        })
    );

    // Bob reads it: untainted row, no drops.
    bob_log.lock().unwrap().clear();
    let drops_before = kernel.stats().dropped_label_check;
    query(
        &mut kernel,
        "bob-worker",
        "SELECT bio FROM profiles WHERE name = 'alice'",
    );
    assert_eq!(
        *bob_log.lock().unwrap(),
        vec![
            DbMsg::Row {
                values: vec!["public bio".into()]
            },
            DbMsg::Done
        ]
    );
    assert_eq!(kernel.stats().dropped_label_check, drops_before);
    // And bob's own label is unchanged by reading public data.
    let bob = kernel.find_process("bob-worker").unwrap();
    let bob_send = kernel.process(bob).send_label.clone();
    assert!(bob_send.entry_count() as i64 > 0); // has own taint entries
}
