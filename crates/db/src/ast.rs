//! The SQL abstract syntax tree (the subset OKWS needs).

use crate::value::SqlValue;

/// A literal or parameter placeholder in a statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A literal value.
    Lit(SqlValue),
    /// The n-th `?` placeholder (0-based).
    Param(usize),
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two values.
    ///
    /// NULL never compares true (SQL three-valued logic, collapsed to
    /// false, which is how WHERE treats unknown).
    pub fn eval(self, a: &SqlValue, b: &SqlValue) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// One `column OP expr` predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Comparison {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Expr,
}

/// A WHERE clause: a conjunction of comparisons.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Where {
    /// All conjuncts must hold.
    pub conjuncts: Vec<Comparison>,
}

/// Column list of a SELECT.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SelectCols {
    /// `*`
    Star,
    /// Named columns.
    Named(Vec<String>),
}

/// A parsed SQL statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `CREATE TABLE name (col, col, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column names.
        columns: Vec<String>,
    },
    /// `CREATE INDEX ON table (col)`
    CreateIndex {
        /// Table name.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `INSERT INTO table (cols…) VALUES (exprs…)`
    Insert {
        /// Table name.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Values, one per column.
        values: Vec<Expr>,
    },
    /// `SELECT cols FROM table [WHERE …]`
    Select {
        /// Projection.
        columns: SelectCols,
        /// Table name.
        table: String,
        /// Filter.
        filter: Where,
    },
    /// `UPDATE table SET col = expr, … [WHERE …]`
    Update {
        /// Table name.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Filter.
        filter: Where,
    },
    /// `DELETE FROM table [WHERE …]`
    Delete {
        /// Table name.
        table: String,
        /// Filter.
        filter: Where,
    },
}

impl Stmt {
    /// The table a statement touches.
    pub fn table(&self) -> &str {
        match self {
            Stmt::CreateTable { name, .. } => name,
            Stmt::CreateIndex { table, .. } => table,
            Stmt::Insert { table, .. } => table,
            Stmt::Select { table, .. } => table,
            Stmt::Update { table, .. } => table,
            Stmt::Delete { table, .. } => table,
        }
    }

    /// Whether the statement modifies data or schema.
    pub fn is_write(&self) -> bool {
        !matches!(self, Stmt::Select { .. })
    }

    /// Every column name the statement mentions (used by ok-dbproxy to
    /// reject worker queries that touch the hidden `user_id` column, §7.5).
    pub fn mentioned_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = Vec::new();
        match self {
            Stmt::CreateTable { columns, .. } => cols.extend(columns.iter().map(String::as_str)),
            Stmt::CreateIndex { column, .. } => cols.push(column),
            Stmt::Insert { columns, .. } => {
                if let Some(cs) = columns {
                    cols.extend(cs.iter().map(String::as_str));
                }
            }
            Stmt::Select {
                columns, filter, ..
            } => {
                if let SelectCols::Named(cs) = columns {
                    cols.extend(cs.iter().map(String::as_str));
                }
                cols.extend(filter.conjuncts.iter().map(|c| c.column.as_str()));
            }
            Stmt::Update { sets, filter, .. } => {
                cols.extend(sets.iter().map(|(c, _)| c.as_str()));
                cols.extend(filter.conjuncts.iter().map(|c| c.column.as_str()));
            }
            Stmt::Delete { filter, .. } => {
                cols.extend(filter.conjuncts.iter().map(|c| c.column.as_str()));
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        use SqlValue::*;
        assert!(CmpOp::Eq.eval(&Int(1), &Int(1)));
        assert!(CmpOp::Ne.eval(&Int(1), &Int(2)));
        assert!(CmpOp::Lt.eval(&Int(1), &Int(2)));
        assert!(CmpOp::Ge.eval(&Text("b".into()), &Text("a".into())));
        // NULL never matches.
        assert!(!CmpOp::Eq.eval(&Null, &Null));
        assert!(!CmpOp::Ne.eval(&Null, &Int(1)));
    }

    #[test]
    fn mentioned_columns_covers_projection_filter_and_sets() {
        let stmt = Stmt::Update {
            table: "t".into(),
            sets: vec![("a".into(), Expr::Lit(SqlValue::Int(1)))],
            filter: Where {
                conjuncts: vec![Comparison {
                    column: "user_id".into(),
                    op: CmpOp::Eq,
                    rhs: Expr::Lit(SqlValue::Int(0)),
                }],
            },
        };
        let cols = stmt.mentioned_columns();
        assert!(cols.contains(&"a"));
        assert!(cols.contains(&"user_id"));
    }
}
