//! ok-dbproxy: the trusted database interposer (§7.5, §7.6).
//!
//! "A separate process called ok-dbproxy interposes on all OKWS database
//! accesses, converting Asbestos labels and security policies to data types
//! and functions native to standard SQLite. ... ok-dbproxy adds a 'user ID'
//! column to the table definition of every table accessed by OKWS workers.
//! The workers themselves cannot access or change this column."
//!
//! Enforced policies:
//!
//! * **Writes** require a bound user `u` and `V ⊑ {uT 3, uG 0, 2}`: the
//!   sender is uncontaminated by anyone else's data and speaks for `u`.
//!   Accepted writes are rewritten so every row carries `u`'s user id.
//! * **Declassifiers** prove `V(uT) = ⋆` and write rows with user id 0
//!   (§7.6); such rows read back untainted.
//! * **Reads** return each row as its own message contaminated with the
//!   row owner's taint at 3, then an untainted `Done`. The kernel drops
//!   rows the querying worker may not see; the worker cannot count them.

use std::collections::BTreeMap;

use asbestos_kernel::{
    Category, Handle, Kernel, Label, Level, Message, ProcessId, SendArgs, Service, Sys, Value,
};
use asbestos_store::BlockDev;

use crate::ast::{SelectCols, Stmt};
use crate::durable::{worker_table, DurableDb};
use crate::engine::Database;
use crate::parser::parse;
use crate::proto::DbMsg;
use crate::value::SqlValue;

/// The hidden ownership column the proxy adds to every table.
pub const USER_ID_COLUMN: &str = "user_id";

/// The proxy's private metadata table mapping usernames to their
/// persistent uids. Rows here are what re-connect recovered data to a
/// user whose handles were re-minted after a reboot (§7.5): `Bind`
/// reuses the stored uid instead of allocating by arrival order. Created
/// raw (no hidden column), so workers can never reach it.
pub const OWNERS_TABLE: &str = "dbproxy_owners";

/// Environment key for the proxy's worker-facing port.
pub const DB_PORT_ENV: &str = "db.port";

/// Environment key naming the port that should receive the admin-port
/// grant at startup (set by the launcher before spawning the proxy).
pub const DB_TRUSTED_ENV: &str = "db.trusted";

/// Base cycles charged per proxy request (parse, rewrite, policy checks).
pub const PROXY_MSG_CYCLES: u64 = 60_000;

/// Cycles charged per row slot the engine examines.
pub const PROXY_ROW_CYCLES: u64 = 500;

struct Binding {
    uid: i64,
    taint: Handle,
    #[allow(dead_code)] // recorded for AFFIRM-style audits; policy uses V.
    grant: Handle,
}

/// One selected row: the hidden owner uid plus the visible cells.
type OwnedRow = (i64, Vec<SqlValue>);

/// The ok-dbproxy service.
pub struct DbProxy {
    db: DurableDb,
    users: BTreeMap<String, Binding>,
    uid_taint: BTreeMap<i64, Handle>,
    next_uid: i64,
    worker_port: Option<Handle>,
    admin_port: Option<Handle>,
}

impl DbProxy {
    /// Creates an empty proxy (volatile: nothing survives the boot).
    pub fn new() -> DbProxy {
        DbProxy::with_database(Database::new())
    }

    /// Creates a proxy over a pre-loaded database — the legacy snapshot
    /// reboot path: data (with its hidden ownership column) persists via
    /// [`crate::snapshot::snapshot`], handles are re-minted after boot,
    /// and `Bind` reconnects rows through the persisted
    /// [`OWNERS_TABLE`] uid map.
    pub fn with_database(db: Database) -> DbProxy {
        DbProxy::with_durable(DurableDb::from_database(db))
    }

    /// Creates a proxy whose every committed statement is write-ahead
    /// logged to `dev` before acknowledgement — the full §7.5 durability
    /// path. Opening recovers: newest snapshot, then the committed WAL
    /// prefix, then uid bindings from the recovered [`OWNERS_TABLE`].
    pub fn with_store(dev: Box<dyn BlockDev>) -> DbProxy {
        DbProxy::with_durable(DurableDb::open(dev))
    }

    fn with_durable(mut db: DurableDb) -> DbProxy {
        // The owners table is proxy metadata: created raw (workers cannot
        // reach tables without the hidden column) and itself WAL-logged,
        // so uid bindings recover with the data they own. The index is
        // derivable state recreated on every open, so it goes straight to
        // the engine — logging it would accrete one redundant redo record
        // per boot.
        if db.engine().table(OWNERS_TABLE).is_none() {
            let _ = db.admin_exec(&format!("CREATE TABLE {OWNERS_TABLE} (name, uid)"), &[]);
        }
        let _ = db
            .engine_mut()
            .run(&format!("CREATE INDEX ON {OWNERS_TABLE} (name)"));
        let next_uid = db
            .engine_mut()
            .run(&format!("SELECT uid FROM {OWNERS_TABLE}"))
            .map(|r| {
                r.rows
                    .iter()
                    .filter_map(|row| row.first().and_then(SqlValue::as_int))
                    .max()
                    .unwrap_or(0)
                    + 1
            })
            .unwrap_or(1);
        DbProxy {
            db,
            users: BTreeMap::new(),
            uid_taint: BTreeMap::new(),
            next_uid,
            worker_port: None,
            admin_port: None,
        }
    }

    /// Serializes the proxy's database (for §7.5 persistence).
    pub fn snapshot(&self) -> Vec<u8> {
        self.db.snapshot_bytes()
    }

    /// The boot epoch of the underlying store (0 when volatile).
    pub fn boot_epoch(&self) -> u64 {
        self.db.boot_epoch()
    }

    /// The persistent uid bound to `user`, if one exists (stored in
    /// [`OWNERS_TABLE`]; survives reboots).
    fn persisted_uid(&mut self, user: &str) -> Option<i64> {
        self.db
            .engine_mut()
            .run_with_params(
                &format!("SELECT uid FROM {OWNERS_TABLE} WHERE name = ?"),
                &[SqlValue::Text(user.to_string())],
            )
            .ok()?
            .rows
            .first()
            .and_then(|row| row.first().and_then(SqlValue::as_int))
    }

    /// Looks up — or allocates and persists — the uid for `user`. The
    /// allocation rides the WAL: it is flushed no later than the first
    /// acknowledged write it guards, so durable rows can never outlive
    /// their owner binding.
    fn lookup_or_assign_uid(&mut self, user: &str) -> i64 {
        if let Some(uid) = self.persisted_uid(user) {
            return uid;
        }
        let uid = self.next_uid;
        self.next_uid += 1;
        let _ = self.db.admin_exec(
            &format!("INSERT INTO {OWNERS_TABLE} VALUES (?, ?)"),
            &[SqlValue::Text(user.to_string()), SqlValue::Int(uid)],
        );
        uid
    }

    /// §7.5's write gate: `V ⊑ {uT 3, uG 0, 2}`.
    fn write_allowed(&self, user: &str, verify: &Label) -> Option<&Binding> {
        let binding = self.users.get(user)?;
        let bound = Label::from_pairs(
            Level::L2,
            &[(binding.taint, Level::L3), (binding.grant, Level::L0)],
        );
        if verify.leq(&bound) {
            Some(binding)
        } else {
            None
        }
    }

    /// §7.6's declassifier proof: `V(uT) = ⋆`.
    fn declassify_allowed(&self, user: &str, verify: &Label) -> bool {
        match self.users.get(user) {
            Some(b) => verify.get(b.taint) == Level::Star,
            None => false,
        }
    }

    fn handle_admin(&mut self, sys: &mut Sys<'_>, msg: DbMsg) {
        match msg {
            DbMsg::Bind {
                user,
                taint,
                grant,
                reply,
            } => {
                // The binder granted us taint ⋆ via D_S on this message;
                // raise our receive label so arbitrarily-tainted workers
                // can still reach us.
                sys.raise_recv(taint, Level::L3)
                    .expect("Bind must arrive with a ⋆ grant for the taint handle");
                // §7.5 reboot re-binding: a user seen in any earlier boot
                // keeps the uid persisted in the owners table, so fresh
                // per-boot handles reconnect to the rows they owned.
                let uid = self.lookup_or_assign_uid(&user);
                self.uid_taint.insert(uid, taint);
                self.users.insert(user, Binding { uid, taint, grant });
                // Ack once the receive label is raised; the binder gates
                // the user's first tainted query on this.
                if let Some(reply) = reply {
                    let _ = sys.send(reply, DbMsg::BindR.to_value());
                }
            }
            DbMsg::Ddl { sql } => {
                sys.charge(PROXY_MSG_CYCLES);
                // Prepends the hidden ownership column and indexes it;
                // redo-logged so recovered tables keep their schema.
                let _ = self.db.apply_ddl(&sql);
            }
            // §7.4's "special access": the trusted party (idd) runs raw
            // statements on its private tables — no hidden-column rewriting,
            // no per-row taint. Only admin-port (⋆-granted) senders get here.
            DbMsg::Exec {
                sql, params, reply, ..
            } => {
                sys.charge(PROXY_MSG_CYCLES);
                let result = self.db.admin_exec(&sql, &params);
                let (ok, affected, work) = match &result {
                    Ok(r) => (true, r.affected as u64, r.work),
                    Err(_) => (false, 0, 1),
                };
                sys.charge(work * PROXY_ROW_CYCLES);
                if let Some(reply) = reply {
                    // Redo-logged before acknowledgement: the ack flushes
                    // the WAL batch it rides on.
                    self.db.flush();
                    let _ = sys.send(reply, DbMsg::ExecR { ok, affected }.to_value());
                }
            }
            DbMsg::Query { sql, params, reply } => {
                sys.charge(PROXY_MSG_CYCLES);
                // The Query arm is strictly read-only: a mutation smuggled
                // in here would execute without being redo-logged and
                // silently diverge memory from the durable log.
                if matches!(parse(&sql), Ok(Stmt::Select { .. })) {
                    if let Ok(result) = self.db.engine_mut().run_with_params(&sql, &params) {
                        sys.charge(result.work * PROXY_ROW_CYCLES);
                        for row in result.rows {
                            let _ = sys.send(reply, DbMsg::Row { values: row }.to_value());
                        }
                    }
                }
                let _ = sys.send(reply, DbMsg::Done.to_value());
            }
            _ => {}
        }
    }

    fn handle_exec(
        &mut self,
        sys: &mut Sys<'_>,
        user: String,
        sql: String,
        params: Vec<SqlValue>,
        reply: Option<Handle>,
        verify: &Label,
    ) {
        sys.charge(PROXY_MSG_CYCLES);
        let declassify = self.declassify_allowed(&user, verify);
        let binding = self.write_allowed(&user, verify);
        let (uid, taint) = match (&binding, declassify) {
            // §7.6: declassifier writes land with user id 0.
            (_, true) => {
                let b = self.users.get(&user).expect("declassify implies binding");
                (0i64, b.taint)
            }
            (Some(b), false) => (b.uid, b.taint),
            (None, false) => {
                // Refused: reply (if any) still flows, untainted, saying no.
                if let Some(reply) = reply {
                    let _ = sys.send(
                        reply,
                        DbMsg::ExecR {
                            ok: false,
                            affected: 0,
                        }
                        .to_value(),
                    );
                }
                return;
            }
        };

        let outcome = self.db.worker_exec(&sql, &params, uid);
        let (ok, affected, work) = match outcome {
            Some(r) => (true, r.0, r.1),
            None => (false, 0, 1),
        };
        sys.charge(work * PROXY_ROW_CYCLES);
        if let Some(reply) = reply {
            // §7.5: redo-logged before acknowledgement — flush the WAL
            // batch (group commit) before the worker hears the verdict.
            self.db.flush();
            // The outcome of a write to u's rows is u's information.
            let args =
                SendArgs::new().contaminate(Label::from_pairs(Level::Star, &[(taint, Level::L3)]));
            let _ = sys.send_args(
                reply,
                DbMsg::ExecR {
                    ok,
                    affected: affected as u64,
                }
                .to_value(),
                &args,
            );
        }
    }

    fn handle_query(
        &mut self,
        sys: &mut Sys<'_>,
        sql: String,
        params: Vec<SqlValue>,
        reply: Handle,
    ) {
        sys.charge(PROXY_MSG_CYCLES);
        let response = self.run_select(&sql, &params);
        if let Some((rows, work)) = response {
            sys.charge(work * PROXY_ROW_CYCLES);
            for (owner, values) in rows {
                // §7.5: "If a row's user ID column contains u's ID, then
                // ok-dbproxy returns the row's data contaminated with
                // uT 3"; declassified rows (id 0) go out untainted. Rows
                // belonging to other users are tainted with *their*
                // handles — the kernel drops what the receiver may not
                // see.
                let args = match self.uid_taint.get(&owner) {
                    Some(&t) if owner != 0 => SendArgs::new()
                        .contaminate(Label::from_pairs(Level::Star, &[(t, Level::L3)])),
                    _ => SendArgs::new(),
                };
                let _ = sys.send_args(reply, DbMsg::Row { values }.to_value(), &args);
            }
        }
        // Untainted end-of-results marker (§7.5).
        let _ = sys.send(reply, DbMsg::Done.to_value());
    }

    /// Runs a worker SELECT with the hidden owner column prepended to the
    /// projection; returns `(owner_uid, visible_cells)` per row plus work.
    fn run_select(&mut self, sql: &str, params: &[SqlValue]) -> Option<(Vec<OwnedRow>, u64)> {
        let stmt = parse(sql).ok()?;
        let Stmt::Select {
            columns,
            table,
            filter,
        } = stmt
        else {
            return None;
        };
        // Workers may only read worker-visible tables (hidden ownership
        // column in position 0). Raw admin tables — idd's credential
        // store, the proxy's own uid map — are unreachable: without this
        // check a `SELECT *` would treat the first projected cell as the
        // owner id and leak raw rows untainted.
        if !worker_table(self.db.engine(), &table) {
            return None;
        }
        if let SelectCols::Named(ref cs) = columns {
            if cs.iter().any(|c| c.eq_ignore_ascii_case(USER_ID_COLUMN)) {
                return None;
            }
        }
        if filter
            .conjuncts
            .iter()
            .any(|c| c.column.eq_ignore_ascii_case(USER_ID_COLUMN))
        {
            return None;
        }
        // Prepend user_id to the projection so we can taint per row.
        let columns = match columns {
            SelectCols::Star => SelectCols::Star,
            SelectCols::Named(mut cs) => {
                cs.insert(0, USER_ID_COLUMN.to_string());
                SelectCols::Named(cs)
            }
        };
        let result = self
            .db
            .engine_mut()
            .execute(
                &Stmt::Select {
                    columns,
                    table,
                    filter,
                },
                params,
            )
            .ok()?;
        let rows = result
            .rows
            .into_iter()
            .map(|mut row| {
                let owner = row.remove(0).as_int().unwrap_or(0);
                (owner, row)
            })
            .collect();
        Some((rows, result.work))
    }
}

impl Default for DbProxy {
    fn default() -> DbProxy {
        DbProxy::new()
    }
}

impl Service for DbProxy {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        // Worker-facing port: open; taint protection comes from labels on
        // the data, not from hiding the port.
        let port = sys.new_port(Label::top());
        sys.set_port_label(port, Label::top())
            .expect("creator owns the port");
        sys.publish_env(DB_PORT_ENV, Value::Handle(port));
        self.worker_port = Some(port);

        // Admin port: stays closed (new_port leaves p_R(admin) = 0); we
        // grant it to the configured trusted party only.
        let admin = sys.new_port(Label::top());
        self.admin_port = Some(admin);
        if let Some(trusted) = sys.env(DB_TRUSTED_ENV).and_then(|v| v.as_handle()) {
            let grant = Label::from_pairs(Level::L3, &[(admin, Level::Star)]);
            let _ = sys.send_args(
                trusted,
                DbMsg::AdminPort { port: admin }.to_value(),
                &SendArgs::new().grant(grant),
            );
        }
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        let Some(db_msg) = DbMsg::from_value(&msg.body) else {
            return;
        };
        if Some(msg.port) == self.admin_port {
            self.handle_admin(sys, db_msg);
            return;
        }
        match db_msg {
            DbMsg::Exec {
                user,
                sql,
                params,
                reply,
            } => self.handle_exec(sys, user, sql, params, reply, &msg.verify),
            DbMsg::Query { sql, params, reply } => self.handle_query(sys, sql, params, reply),
            // Admin messages on the worker port are ignored outright.
            _ => {}
        }
    }

    fn on_teardown(&mut self, _sys: &mut Sys<'_>) {
        // Clean shutdown: group-commit whatever is still buffered. A
        // crash skips this — recovery then yields the committed prefix.
        self.db.flush();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Spawn info for a running proxy.
pub struct DbHandle {
    /// The proxy's process id.
    pub pid: ProcessId,
    /// The worker-facing port.
    pub port: Handle,
}

/// Spawns ok-dbproxy. The `DB_TRUSTED_ENV` global should already name the
/// trusted party's notification port (idd's, or a test harness's).
pub fn spawn_dbproxy(kernel: &mut Kernel) -> DbHandle {
    let pid = kernel.spawn("ok-dbproxy", Category::Okdb, Box::new(DbProxy::new()));
    let port = kernel
        .global_env(DB_PORT_ENV)
        .and_then(|v| v.as_handle())
        .expect("proxy publishes its worker port");
    DbHandle { pid, port }
}
