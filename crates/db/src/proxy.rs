//! ok-dbproxy: the trusted database interposer (§7.5, §7.6).
//!
//! "A separate process called ok-dbproxy interposes on all OKWS database
//! accesses, converting Asbestos labels and security policies to data types
//! and functions native to standard SQLite. ... ok-dbproxy adds a 'user ID'
//! column to the table definition of every table accessed by OKWS workers.
//! The workers themselves cannot access or change this column."
//!
//! Enforced policies:
//!
//! * **Writes** require a bound user `u` and `V ⊑ {uT 3, uG 0, 2}`: the
//!   sender is uncontaminated by anyone else's data and speaks for `u`.
//!   Accepted writes are rewritten so every row carries `u`'s user id.
//! * **Declassifiers** prove `V(uT) = ⋆` and write rows with user id 0
//!   (§7.6); such rows read back untainted.
//! * **Reads** return each row as its own message contaminated with the
//!   row owner's taint at 3, then an untainted `Done`. The kernel drops
//!   rows the querying worker may not see; the worker cannot count them.

use std::collections::BTreeMap;

use asbestos_kernel::{
    Category, Handle, Kernel, Label, Level, Message, ProcessId, SendArgs, Service, Sys, Value,
};

use crate::ast::Stmt;
use crate::engine::Database;
use crate::parser::parse;
use crate::proto::DbMsg;
use crate::value::SqlValue;

/// The hidden ownership column the proxy adds to every table.
pub const USER_ID_COLUMN: &str = "user_id";

/// Environment key for the proxy's worker-facing port.
pub const DB_PORT_ENV: &str = "db.port";

/// Environment key naming the port that should receive the admin-port
/// grant at startup (set by the launcher before spawning the proxy).
pub const DB_TRUSTED_ENV: &str = "db.trusted";

/// Base cycles charged per proxy request (parse, rewrite, policy checks).
pub const PROXY_MSG_CYCLES: u64 = 60_000;

/// Cycles charged per row slot the engine examines.
pub const PROXY_ROW_CYCLES: u64 = 500;

struct Binding {
    uid: i64,
    taint: Handle,
    #[allow(dead_code)] // recorded for AFFIRM-style audits; policy uses V.
    grant: Handle,
}

/// One selected row: the hidden owner uid plus the visible cells.
type OwnedRow = (i64, Vec<SqlValue>);

/// The ok-dbproxy service.
pub struct DbProxy {
    db: Database,
    users: BTreeMap<String, Binding>,
    uid_taint: BTreeMap<i64, Handle>,
    next_uid: i64,
    worker_port: Option<Handle>,
    admin_port: Option<Handle>,
}

impl DbProxy {
    /// Creates an empty proxy.
    pub fn new() -> DbProxy {
        DbProxy::with_database(Database::new())
    }

    /// Creates a proxy over a pre-loaded database — the §7.5 reboot path:
    /// data (with its hidden ownership column) persists via
    /// [`crate::snapshot::snapshot`], handles are re-minted after boot, and re-binding
    /// users in the same order reconnects rows to their owners.
    pub fn with_database(db: Database) -> DbProxy {
        DbProxy {
            db,
            users: BTreeMap::new(),
            uid_taint: BTreeMap::new(),
            next_uid: 1,
            worker_port: None,
            admin_port: None,
        }
    }

    /// Serializes the proxy's database (for §7.5 persistence).
    pub fn snapshot(&self) -> Vec<u8> {
        crate::snapshot::snapshot(&self.db)
    }

    /// §7.5's write gate: `V ⊑ {uT 3, uG 0, 2}`.
    fn write_allowed(&self, user: &str, verify: &Label) -> Option<&Binding> {
        let binding = self.users.get(user)?;
        let bound = Label::from_pairs(
            Level::L2,
            &[(binding.taint, Level::L3), (binding.grant, Level::L0)],
        );
        if verify.leq(&bound) {
            Some(binding)
        } else {
            None
        }
    }

    /// §7.6's declassifier proof: `V(uT) = ⋆`.
    fn declassify_allowed(&self, user: &str, verify: &Label) -> bool {
        match self.users.get(user) {
            Some(b) => verify.get(b.taint) == Level::Star,
            None => false,
        }
    }

    fn handle_admin(&mut self, sys: &mut Sys<'_>, msg: DbMsg) {
        match msg {
            DbMsg::Bind { user, taint, grant } => {
                // The binder granted us taint ⋆ via D_S on this message;
                // raise our receive label so arbitrarily-tainted workers
                // can still reach us.
                sys.raise_recv(taint, Level::L3)
                    .expect("Bind must arrive with a ⋆ grant for the taint handle");
                let uid = self.next_uid;
                self.next_uid += 1;
                self.uid_taint.insert(uid, taint);
                self.users.insert(user, Binding { uid, taint, grant });
            }
            DbMsg::Ddl { sql } => {
                sys.charge(PROXY_MSG_CYCLES);
                let Ok(stmt) = parse(&sql) else { return };
                match stmt {
                    Stmt::CreateTable { name, mut columns } => {
                        // Prepend the hidden ownership column and index it:
                        // every worker query filters on it implicitly.
                        columns.insert(0, USER_ID_COLUMN.to_string());
                        let create = Stmt::CreateTable {
                            name: name.clone(),
                            columns,
                        };
                        if self.db.execute(&create, &[]).is_ok() {
                            let _ = self.db.execute(
                                &Stmt::CreateIndex {
                                    table: name,
                                    column: USER_ID_COLUMN.to_string(),
                                },
                                &[],
                            );
                        }
                    }
                    other @ Stmt::CreateIndex { .. } => {
                        let _ = self.db.execute(&other, &[]);
                    }
                    _ => {} // Ddl carries schema statements only
                }
            }
            // §7.4's "special access": the trusted party (idd) runs raw
            // statements on its private tables — no hidden-column rewriting,
            // no per-row taint. Only admin-port (⋆-granted) senders get here.
            DbMsg::Exec {
                sql, params, reply, ..
            } => {
                sys.charge(PROXY_MSG_CYCLES);
                let result = self.db.run_with_params(&sql, &params);
                let (ok, affected, work) = match &result {
                    Ok(r) => (true, r.affected as u64, r.work),
                    Err(_) => (false, 0, 1),
                };
                sys.charge(work * PROXY_ROW_CYCLES);
                if let Some(reply) = reply {
                    let _ = sys.send(reply, DbMsg::ExecR { ok, affected }.to_value());
                }
            }
            DbMsg::Query { sql, params, reply } => {
                sys.charge(PROXY_MSG_CYCLES);
                if let Ok(result) = self.db.run_with_params(&sql, &params) {
                    sys.charge(result.work * PROXY_ROW_CYCLES);
                    for row in result.rows {
                        let _ = sys.send(reply, DbMsg::Row { values: row }.to_value());
                    }
                }
                let _ = sys.send(reply, DbMsg::Done.to_value());
            }
            _ => {}
        }
    }

    fn handle_exec(
        &mut self,
        sys: &mut Sys<'_>,
        user: String,
        sql: String,
        params: Vec<SqlValue>,
        reply: Option<Handle>,
        verify: &Label,
    ) {
        sys.charge(PROXY_MSG_CYCLES);
        let declassify = self.declassify_allowed(&user, verify);
        let binding = self.write_allowed(&user, verify);
        let (uid, taint) = match (&binding, declassify) {
            // §7.6: declassifier writes land with user id 0.
            (_, true) => {
                let b = self.users.get(&user).expect("declassify implies binding");
                (0i64, b.taint)
            }
            (Some(b), false) => (b.uid, b.taint),
            (None, false) => {
                // Refused: reply (if any) still flows, untainted, saying no.
                if let Some(reply) = reply {
                    let _ = sys.send(
                        reply,
                        DbMsg::ExecR {
                            ok: false,
                            affected: 0,
                        }
                        .to_value(),
                    );
                }
                return;
            }
        };

        let outcome = self.rewrite_and_exec(&sql, &params, uid);
        let (ok, affected, work) = match outcome {
            Some(r) => (true, r.0, r.1),
            None => (false, 0, 1),
        };
        sys.charge(work * PROXY_ROW_CYCLES);
        if let Some(reply) = reply {
            // The outcome of a write to u's rows is u's information.
            let args =
                SendArgs::new().contaminate(Label::from_pairs(Level::Star, &[(taint, Level::L3)]));
            let _ = sys.send_args(
                reply,
                DbMsg::ExecR {
                    ok,
                    affected: affected as u64,
                }
                .to_value(),
                &args,
            );
        }
    }

    /// Rewrites a worker write so it can only touch rows owned by `uid`,
    /// then executes it. Returns `(affected, work)`.
    fn rewrite_and_exec(
        &mut self,
        sql: &str,
        params: &[SqlValue],
        uid: i64,
    ) -> Option<(usize, u64)> {
        let stmt = parse(sql).ok()?;
        if stmt
            .mentioned_columns()
            .iter()
            .any(|c| c.eq_ignore_ascii_case(USER_ID_COLUMN))
        {
            return None; // workers cannot access or change this column
        }
        use crate::ast::{CmpOp, Comparison, Expr};
        let owner_guard = Comparison {
            column: USER_ID_COLUMN.to_string(),
            op: CmpOp::Eq,
            rhs: Expr::Lit(SqlValue::Int(uid)),
        };
        let rewritten = match stmt {
            Stmt::Insert {
                table,
                columns,
                values,
            } => {
                // Prepend the owner id. With an explicit column list we add
                // the hidden column explicitly; without one we rely on
                // user_id being the first column.
                let columns = columns.map(|mut cs| {
                    cs.insert(0, USER_ID_COLUMN.to_string());
                    cs
                });
                let mut vals = Vec::with_capacity(values.len() + 1);
                vals.push(Expr::Lit(SqlValue::Int(uid)));
                vals.extend(values);
                Stmt::Insert {
                    table,
                    columns,
                    values: vals,
                }
            }
            Stmt::Update {
                table,
                sets,
                mut filter,
            } => {
                filter.conjuncts.push(owner_guard);
                Stmt::Update {
                    table,
                    sets,
                    filter,
                }
            }
            Stmt::Delete { table, mut filter } => {
                filter.conjuncts.push(owner_guard);
                Stmt::Delete { table, filter }
            }
            // Everything else is not a worker write.
            _ => return None,
        };
        let result = self.db.execute(&rewritten, params).ok()?;
        Some((result.affected, result.work))
    }

    fn handle_query(
        &mut self,
        sys: &mut Sys<'_>,
        sql: String,
        params: Vec<SqlValue>,
        reply: Handle,
    ) {
        sys.charge(PROXY_MSG_CYCLES);
        let response = self.run_select(&sql, &params);
        if let Some((rows, work)) = response {
            sys.charge(work * PROXY_ROW_CYCLES);
            for (owner, values) in rows {
                // §7.5: "If a row's user ID column contains u's ID, then
                // ok-dbproxy returns the row's data contaminated with
                // uT 3"; declassified rows (id 0) go out untainted. Rows
                // belonging to other users are tainted with *their*
                // handles — the kernel drops what the receiver may not
                // see.
                let args = match self.uid_taint.get(&owner) {
                    Some(&t) if owner != 0 => SendArgs::new()
                        .contaminate(Label::from_pairs(Level::Star, &[(t, Level::L3)])),
                    _ => SendArgs::new(),
                };
                let _ = sys.send_args(reply, DbMsg::Row { values }.to_value(), &args);
            }
        }
        // Untainted end-of-results marker (§7.5).
        let _ = sys.send(reply, DbMsg::Done.to_value());
    }

    /// Runs a worker SELECT with the hidden owner column prepended to the
    /// projection; returns `(owner_uid, visible_cells)` per row plus work.
    fn run_select(&mut self, sql: &str, params: &[SqlValue]) -> Option<(Vec<OwnedRow>, u64)> {
        let stmt = parse(sql).ok()?;
        let Stmt::Select {
            columns,
            table,
            filter,
        } = stmt
        else {
            return None;
        };
        if let crate::ast::SelectCols::Named(ref cs) = columns {
            if cs.iter().any(|c| c.eq_ignore_ascii_case(USER_ID_COLUMN)) {
                return None;
            }
        }
        if filter
            .conjuncts
            .iter()
            .any(|c| c.column.eq_ignore_ascii_case(USER_ID_COLUMN))
        {
            return None;
        }
        // Prepend user_id to the projection so we can taint per row.
        let columns = match columns {
            crate::ast::SelectCols::Star => crate::ast::SelectCols::Star,
            crate::ast::SelectCols::Named(mut cs) => {
                cs.insert(0, USER_ID_COLUMN.to_string());
                crate::ast::SelectCols::Named(cs)
            }
        };
        let result = self
            .db
            .execute(
                &Stmt::Select {
                    columns,
                    table,
                    filter,
                },
                params,
            )
            .ok()?;
        let rows = result
            .rows
            .into_iter()
            .map(|mut row| {
                let owner = row.remove(0).as_int().unwrap_or(0);
                (owner, row)
            })
            .collect();
        Some((rows, result.work))
    }
}

impl Default for DbProxy {
    fn default() -> DbProxy {
        DbProxy::new()
    }
}

impl Service for DbProxy {
    fn on_start(&mut self, sys: &mut Sys<'_>) {
        // Worker-facing port: open; taint protection comes from labels on
        // the data, not from hiding the port.
        let port = sys.new_port(Label::top());
        sys.set_port_label(port, Label::top())
            .expect("creator owns the port");
        sys.publish_env(DB_PORT_ENV, Value::Handle(port));
        self.worker_port = Some(port);

        // Admin port: stays closed (new_port leaves p_R(admin) = 0); we
        // grant it to the configured trusted party only.
        let admin = sys.new_port(Label::top());
        self.admin_port = Some(admin);
        if let Some(trusted) = sys.env(DB_TRUSTED_ENV).and_then(|v| v.as_handle()) {
            let grant = Label::from_pairs(Level::L3, &[(admin, Level::Star)]);
            let _ = sys.send_args(
                trusted,
                DbMsg::AdminPort { port: admin }.to_value(),
                &SendArgs::new().grant(grant),
            );
        }
    }

    fn on_message(&mut self, sys: &mut Sys<'_>, msg: &Message) {
        let Some(db_msg) = DbMsg::from_value(&msg.body) else {
            return;
        };
        if Some(msg.port) == self.admin_port {
            self.handle_admin(sys, db_msg);
            return;
        }
        match db_msg {
            DbMsg::Exec {
                user,
                sql,
                params,
                reply,
            } => self.handle_exec(sys, user, sql, params, reply, &msg.verify),
            DbMsg::Query { sql, params, reply } => self.handle_query(sys, sql, params, reply),
            // Admin messages on the worker port are ignored outright.
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Spawn info for a running proxy.
pub struct DbHandle {
    /// The proxy's process id.
    pub pid: ProcessId,
    /// The worker-facing port.
    pub port: Handle,
}

/// Spawns ok-dbproxy. The `DB_TRUSTED_ENV` global should already name the
/// trusted party's notification port (idd's, or a test harness's).
pub fn spawn_dbproxy(kernel: &mut Kernel) -> DbHandle {
    let pid = kernel.spawn("ok-dbproxy", Category::Okdb, Box::new(DbProxy::new()));
    let port = kernel
        .global_env(DB_PORT_ENV)
        .and_then(|v| v.as_handle())
        .expect("proxy publishes its worker port");
    DbHandle { pid, port }
}
