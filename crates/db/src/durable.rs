//! The durable engine: every committed statement redo-logged through
//! `asbestos-store` before it is acknowledged.
//!
//! §7.5's persistence claim needs more than the in-memory snapshot codec:
//! a crash between snapshots must not lose acknowledged writes, and a
//! torn write must not resurrect unacknowledged ones. [`DurableDb`] wraps
//! the relational [`Database`] with a write-ahead log:
//!
//! * every *mutating* statement that executes successfully is appended to
//!   the WAL as a [`DbRecord`] — the logical redo record (original SQL,
//!   parameters, and the acting uid for worker writes, so replay passes
//!   through the identical rewrite path);
//! * group commit: records batch until [`DurableDb::flush`] (or the
//!   configured batch size) writes one commit marker and syncs — callers
//!   that acknowledge a statement flush first, so an ack implies
//!   durability;
//! * recovery = newest snapshot + committed WAL replay; compaction folds
//!   a long log back into an ASDB snapshot.
//!
//! Reads never log. The proxy's policy layer (hidden ownership column,
//! write gates, per-row taint) stays in `proxy.rs`; this module owns only
//! *how state changes become durable*, plus the worker-statement rewrite
//! (shared verbatim between live execution and replay).

use asbestos_store::{AdaptiveBatch, BlockDev, Store};

use crate::ast::{CmpOp, Comparison, Expr, Stmt};
use crate::engine::{Database, DbError, QueryResult};
use crate::parser::parse;
use crate::proxy::USER_ID_COLUMN;
use crate::snapshot::{put_cell, put_str, put_u32, Reader};
use crate::value::SqlValue;

/// One redo record: enough to re-execute a committed statement through
/// the same code path it originally took.
#[derive(Clone, Debug, PartialEq)]
pub enum DbRecord {
    /// Trusted DDL (worker-table creation: hidden column prepended on
    /// replay exactly as on first execution).
    Ddl {
        /// The original statement.
        sql: String,
    },
    /// Trusted raw statement (idd's credential tables, proxy metadata).
    Admin {
        /// The statement.
        sql: String,
        /// Bound parameters.
        params: Vec<SqlValue>,
    },
    /// A worker write already gated by the §7.5 policy; replay re-applies
    /// the ownership rewrite for `uid`.
    Worker {
        /// Owner uid the write was accepted for (0 = declassified).
        uid: i64,
        /// The original statement.
        sql: String,
        /// Bound parameters.
        params: Vec<SqlValue>,
    },
}

impl DbRecord {
    /// Serializes the record (WAL payload bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            DbRecord::Ddl { sql } => {
                out.push(1);
                put_str(&mut out, sql);
            }
            DbRecord::Admin { sql, params } => {
                out.push(2);
                put_str(&mut out, sql);
                put_params(&mut out, params);
            }
            DbRecord::Worker { uid, sql, params } => {
                out.push(3);
                out.extend_from_slice(&uid.to_le_bytes());
                put_str(&mut out, sql);
                put_params(&mut out, params);
            }
        }
        out
    }

    /// Deserializes a record; `None` on anything malformed (the WAL CRC
    /// already rules out torn bytes, so `None` means format skew).
    pub fn from_bytes(bytes: &[u8]) -> Option<DbRecord> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.take(1).ok()?[0];
        let record = match tag {
            1 => DbRecord::Ddl {
                sql: r.string().ok()?,
            },
            2 => DbRecord::Admin {
                sql: r.string().ok()?,
                params: take_params(&mut r)?,
            },
            3 => {
                let uid = i64::from_le_bytes(r.take(8).ok()?.try_into().ok()?);
                DbRecord::Worker {
                    uid,
                    sql: r.string().ok()?,
                    params: take_params(&mut r)?,
                }
            }
            _ => return None,
        };
        (r.pos == bytes.len()).then_some(record)
    }
}

fn put_params(out: &mut Vec<u8>, params: &[SqlValue]) {
    put_u32(out, params.len() as u32);
    for p in params {
        put_cell(out, p);
    }
}

fn take_params(r: &mut Reader<'_>) -> Option<Vec<SqlValue>> {
    let n = r.u32().ok()? as usize;
    let mut params = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        params.push(r.cell().ok()?);
    }
    Some(params)
}

/// Applies trusted DDL: `CREATE TABLE` gets the hidden ownership column
/// prepended and indexed (§7.5: "ok-dbproxy adds a 'user ID' column to
/// the table definition of every table accessed by OKWS workers");
/// `CREATE INDEX` passes through. Returns whether anything was applied.
pub(crate) fn ddl_apply(db: &mut Database, sql: &str) -> bool {
    let Ok(stmt) = parse(sql) else { return false };
    match stmt {
        Stmt::CreateTable { name, mut columns } => {
            columns.insert(0, USER_ID_COLUMN.to_string());
            let create = Stmt::CreateTable {
                name: name.clone(),
                columns,
            };
            if db.execute(&create, &[]).is_ok() {
                let _ = db.execute(
                    &Stmt::CreateIndex {
                        table: name,
                        column: USER_ID_COLUMN.to_string(),
                    },
                    &[],
                );
                true
            } else {
                false
            }
        }
        other @ Stmt::CreateIndex { .. } => db.execute(&other, &[]).is_ok(),
        _ => false, // DDL carries schema statements only
    }
}

/// Whether `table` is worker-visible: it exists and carries the hidden
/// ownership column in position 0 — i.e. it was created through the DDL
/// path above. Tables created raw over the admin port (idd's credential
/// table, the proxy's own metadata) fail this and are unreachable from
/// worker statements entirely.
pub(crate) fn worker_table(db: &Database, table: &str) -> bool {
    db.table(table)
        .is_some_and(|t| t.columns.first().is_some_and(|c| c == USER_ID_COLUMN))
}

/// Rewrites a worker write so it can only touch rows owned by `uid`,
/// then executes it. Returns `(affected, work)`; `None` refuses the
/// statement. Replay calls this with the logged uid, so recovery applies
/// byte-identical effects.
pub(crate) fn worker_apply(
    db: &mut Database,
    sql: &str,
    params: &[SqlValue],
    uid: i64,
) -> Option<(usize, u64)> {
    let stmt = parse(sql).ok()?;
    if stmt
        .mentioned_columns()
        .iter()
        .any(|c| c.eq_ignore_ascii_case(USER_ID_COLUMN))
    {
        return None; // workers cannot access or change this column
    }
    let owner_guard = Comparison {
        column: USER_ID_COLUMN.to_string(),
        op: CmpOp::Eq,
        rhs: Expr::Lit(SqlValue::Int(uid)),
    };
    let rewritten = match stmt {
        Stmt::Insert {
            table,
            columns,
            values,
        } => {
            if !worker_table(db, &table) {
                return None;
            }
            // Prepend the owner id. With an explicit column list we add
            // the hidden column explicitly; without one we rely on
            // user_id being the first column.
            let columns = columns.map(|mut cs| {
                cs.insert(0, USER_ID_COLUMN.to_string());
                cs
            });
            let mut vals = Vec::with_capacity(values.len() + 1);
            vals.push(Expr::Lit(SqlValue::Int(uid)));
            vals.extend(values);
            Stmt::Insert {
                table,
                columns,
                values: vals,
            }
        }
        Stmt::Update {
            table,
            sets,
            mut filter,
        } => {
            if !worker_table(db, &table) {
                return None;
            }
            filter.conjuncts.push(owner_guard);
            Stmt::Update {
                table,
                sets,
                filter,
            }
        }
        Stmt::Delete { table, mut filter } => {
            if !worker_table(db, &table) {
                return None;
            }
            filter.conjuncts.push(owner_guard);
            Stmt::Delete { table, filter }
        }
        // Everything else is not a worker write.
        _ => return None,
    };
    let result = db.execute(&rewritten, params).ok()?;
    Some((result.affected, result.work))
}

/// Whether a successfully-executed admin statement mutated state (and so
/// belongs in the redo log).
fn is_mutation(sql: &str) -> bool {
    !matches!(parse(sql), Ok(Stmt::Select { .. }))
}

/// What recovery found when opening a [`DurableDb`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DbRecovery {
    /// Whether a snapshot was restored.
    pub from_snapshot: bool,
    /// Committed WAL records replayed on top of it.
    pub replayed: usize,
    /// Committed records that failed to decode or re-apply (format skew;
    /// 0 in any healthy log).
    pub skipped: usize,
    /// The boot epoch the underlying store was opened under.
    pub boot_epoch: u64,
}

/// Parses an `ASBESTOS_DB_GROUP_COMMIT`-style value: `auto` (any case)
/// installs the adaptive controller, a number >= 1 fixes the batch,
/// anything else means 1 — sync per mutation.
fn group_commit_from(value: Option<&str>) -> GroupCommit {
    use asbestos_kernel::knobs::{parse_auto_or_count, AutoOrCount};
    match parse_auto_or_count(value) {
        Some(AutoOrCount::Auto) => GroupCommit::Auto(AdaptiveBatch::default()),
        Some(AutoOrCount::Count(n)) => GroupCommit::Fixed(n),
        None => GroupCommit::Fixed(1),
    }
}

/// A [`Database`] whose mutations are write-ahead logged.
///
/// In *volatile* mode (no store) it is a plain in-memory database with
/// the identical API — the pre-durability configuration, bit for bit.
pub struct DurableDb {
    db: Database,
    store: Option<Store>,
    /// Group-commit sizing: a fixed record count, or the adaptive
    /// controller that grows the batch under sustained append pressure
    /// and shrinks it when idle (`ASBESTOS_DB_GROUP_COMMIT=auto`).
    group_commit: GroupCommit,
    recovery: DbRecovery,
}

/// How the group-commit batch is sized.
enum GroupCommit {
    /// Static: exactly this many records per sync.
    Fixed(usize),
    /// Self-tuning (see [`asbestos_store::AdaptiveBatch`]).
    Auto(AdaptiveBatch),
}

impl DurableDb {
    /// A purely in-memory database (no WAL, nothing survives drop).
    pub fn volatile() -> DurableDb {
        DurableDb::from_database(Database::new())
    }

    /// Volatile mode over an existing database (legacy snapshot-restore
    /// reboot path).
    pub fn from_database(db: Database) -> DurableDb {
        DurableDb {
            db,
            store: None,
            group_commit: GroupCommit::Fixed(1),
            recovery: DbRecovery::default(),
        }
    }

    /// Opens (and recovers) a durable database over `dev`: newest intact
    /// snapshot, then committed WAL records replayed through the same
    /// apply paths live execution uses. The group-commit batch defaults
    /// to `ASBESTOS_DB_GROUP_COMMIT`: a number fixes the batch, `auto`
    /// installs the adaptive controller (grow under sustained pressure,
    /// shrink when idle), and unset means 1 — sync per mutation.
    pub fn open(dev: Box<dyn BlockDev>) -> DurableDb {
        let (store, recovery) = Store::open(dev);
        let mut db = match &recovery.snapshot {
            Some(bytes) => crate::snapshot::restore(bytes)
                .expect("CRC-valid snapshot must restore; format skew is a bug"),
            None => Database::new(),
        };
        let mut replayed = 0;
        let mut skipped = 0;
        for raw in &recovery.records {
            match DbRecord::from_bytes(raw) {
                Some(DbRecord::Ddl { sql }) => {
                    ddl_apply(&mut db, &sql);
                    replayed += 1;
                }
                Some(DbRecord::Admin { sql, params }) => {
                    if db.run_with_params(&sql, &params).is_ok() {
                        replayed += 1;
                    } else {
                        skipped += 1;
                    }
                }
                Some(DbRecord::Worker { uid, sql, params }) => {
                    if worker_apply(&mut db, &sql, &params, uid).is_some() {
                        replayed += 1;
                    } else {
                        skipped += 1;
                    }
                }
                None => skipped += 1,
            }
        }
        let group_commit = group_commit_from(
            asbestos_kernel::knobs::raw(asbestos_kernel::knobs::DB_GROUP_COMMIT_ENV).as_deref(),
        );
        DurableDb {
            db,
            store: Some(store),
            group_commit,
            recovery: DbRecovery {
                from_snapshot: recovery.snapshot.is_some(),
                replayed,
                skipped,
                boot_epoch: recovery.boot_epoch,
            },
        }
    }

    /// What recovery found (all zeros in volatile mode).
    pub fn recovery(&self) -> DbRecovery {
        self.recovery
    }

    /// Whether mutations are write-ahead logged.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Sets a fixed group-commit batch size (records per sync).
    pub fn set_group_commit(&mut self, records: usize) {
        self.group_commit = GroupCommit::Fixed(records.max(1));
    }

    /// Switches to the adaptive group-commit controller, bounded to
    /// `[min, max]` records per sync (grow under sustained append
    /// pressure, shrink when idle — worst-case ack latency is one
    /// under-filled window).
    pub fn set_group_commit_auto(&mut self, min: usize, max: usize) {
        self.group_commit = GroupCommit::Auto(AdaptiveBatch::new(min, max));
    }

    /// The batch size the next flush decision uses (fixed value, or the
    /// adaptive controller's current pick).
    pub fn group_commit_now(&self) -> usize {
        match &self.group_commit {
            GroupCommit::Fixed(n) => *n,
            GroupCommit::Auto(b) => b.current(),
        }
    }

    /// (grows, shrinks) of the adaptive controller; (0, 0) when fixed.
    pub fn group_commit_transitions(&self) -> (u64, u64) {
        match &self.group_commit {
            GroupCommit::Fixed(_) => (0, 0),
            GroupCommit::Auto(b) => b.transitions(),
        }
    }

    /// Read access to the engine (SELECT paths; never logged).
    pub fn engine(&self) -> &Database {
        &self.db
    }

    /// Mutable engine access for *read* execution (the engine API takes
    /// `&mut self`). Callers must not route mutations through this — they
    /// would bypass the log; use the `apply`/`exec` methods.
    pub fn engine_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Trusted worker-table DDL (hidden column prepended), logged.
    pub fn apply_ddl(&mut self, sql: &str) -> bool {
        if ddl_apply(&mut self.db, sql) {
            self.log(DbRecord::Ddl {
                sql: sql.to_string(),
            });
            true
        } else {
            false
        }
    }

    /// Trusted raw statement; mutations are logged on success.
    pub fn admin_exec(&mut self, sql: &str, params: &[SqlValue]) -> Result<QueryResult, DbError> {
        let result = self.db.run_with_params(sql, params)?;
        if is_mutation(sql) {
            self.log(DbRecord::Admin {
                sql: sql.to_string(),
                params: params.to_vec(),
            });
        }
        Ok(result)
    }

    /// A policy-gated worker write for `uid`, logged on success.
    pub fn worker_exec(
        &mut self,
        sql: &str,
        params: &[SqlValue],
        uid: i64,
    ) -> Option<(usize, u64)> {
        let outcome = worker_apply(&mut self.db, sql, params, uid)?;
        self.log(DbRecord::Worker {
            uid,
            sql: sql.to_string(),
            params: params.to_vec(),
        });
        Some(outcome)
    }

    fn log(&mut self, record: DbRecord) {
        let batch = self.group_commit_now();
        if let Some(store) = &mut self.store {
            store.append(&record.to_bytes());
            if store.pending() >= batch {
                self.flush();
            }
        }
    }

    /// Group commit: makes every logged record durable (one sync), then
    /// compacts the WAL into a snapshot if it has outgrown its bound.
    /// Call before acknowledging a statement; a no-op when nothing is
    /// pending or in volatile mode.
    pub fn flush(&mut self) {
        let Some(store) = &mut self.store else { return };
        // Feed the controller how full this flush actually ran: a full
        // batch is append pressure, an under-filled one is idleness.
        let committed = store.pending();
        store.commit();
        if let GroupCommit::Auto(b) = &mut self.group_commit {
            b.on_flush(committed);
        }
        if store.needs_compaction() {
            let snapshot = crate::snapshot::snapshot(&self.db);
            store.compact(&snapshot);
        }
    }

    /// Sets the WAL-size bound past which [`DurableDb::flush`] compacts
    /// (volatile mode: no-op).
    pub fn set_compact_threshold(&mut self, bytes: usize) {
        if let Some(store) = &mut self.store {
            store.set_compact_threshold(bytes);
        }
    }

    /// Serializes the current state (the ASDB snapshot codec).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        crate::snapshot::snapshot(&self.db)
    }

    /// The boot epoch of the underlying store (0 in volatile mode).
    pub fn boot_epoch(&self) -> u64 {
        self.recovery.boot_epoch
    }

    /// Uncommitted logged records (0 in volatile mode).
    pub fn pending(&self) -> usize {
        self.store.as_ref().map_or(0, Store::pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asbestos_store::MemDev;

    #[test]
    fn record_codec_round_trips() {
        let records = vec![
            DbRecord::Ddl {
                sql: "CREATE TABLE t (a, b)".into(),
            },
            DbRecord::Admin {
                sql: "INSERT INTO okws_users VALUES (?, ?)".into(),
                params: vec!["alice".into(), SqlValue::Blob(vec![1, 2, 3])],
            },
            DbRecord::Worker {
                uid: -7,
                sql: "INSERT INTO store VALUES (?, ?)".into(),
                params: vec![SqlValue::Null, SqlValue::Int(i64::MIN)],
            },
        ];
        for r in records {
            assert_eq!(DbRecord::from_bytes(&r.to_bytes()), Some(r));
        }
        assert_eq!(DbRecord::from_bytes(b""), None);
        assert_eq!(DbRecord::from_bytes(&[9, 0, 0]), None);
        // Trailing garbage is rejected, not silently ignored.
        let mut bytes = DbRecord::Ddl { sql: "x".into() }.to_bytes();
        bytes.push(0);
        assert_eq!(DbRecord::from_bytes(&bytes), None);
    }

    #[test]
    fn committed_mutations_survive_reopen() {
        let dev = MemDev::new();
        {
            let mut db = DurableDb::open(Box::new(dev.clone()));
            assert!(db.apply_ddl("CREATE TABLE notes (body)"));
            assert!(db
                .worker_exec("INSERT INTO notes VALUES (?)", &["hi".into()], 3)
                .is_some());
            db.flush();
            // Logged but never flushed (wide batch): lost on crash.
            db.set_group_commit(64);
            db.worker_exec("INSERT INTO notes VALUES ('volatile')", &[], 3);
            assert_eq!(db.pending(), 1);
        }
        dev.crash(0);
        let mut db = DurableDb::open(Box::new(dev));
        assert_eq!(db.recovery().replayed, 2);
        assert_eq!(db.recovery().skipped, 0);
        let rows = db
            .engine_mut()
            .run("SELECT user_id, body FROM notes")
            .unwrap()
            .rows;
        assert_eq!(rows, vec![vec![SqlValue::Int(3), "hi".into()]]);
    }

    #[test]
    fn selects_are_never_logged() {
        let dev = MemDev::new();
        let mut db = DurableDb::open(Box::new(dev.clone()));
        db.admin_exec("CREATE TABLE t (a)", &[]).unwrap();
        db.admin_exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        db.flush();
        let wal_before = dev.dump("wal.00000000").len();
        db.admin_exec("SELECT a FROM t", &[]).unwrap();
        db.flush();
        assert_eq!(dev.dump("wal.00000000").len(), wal_before);
    }

    #[test]
    fn group_commit_batches_syncs() {
        let dev = MemDev::new();
        let mut db = DurableDb::open(Box::new(dev.clone()));
        db.apply_ddl("CREATE TABLE t (v)");
        db.flush();
        db.set_group_commit(8);
        let syncs_before = dev.sync_count();
        for i in 0..16 {
            db.worker_exec("INSERT INTO t VALUES (?)", &[SqlValue::Int(i)], 1);
        }
        assert_eq!(dev.sync_count() - syncs_before, 2, "16 records, batch 8");
        assert_eq!(db.pending(), 0);
    }

    #[test]
    fn adaptive_group_commit_grows_under_load_and_shrinks_idle() {
        let dev = MemDev::new();
        let mut db = DurableDb::open(Box::new(dev.clone()));
        db.apply_ddl("CREATE TABLE t (v)");
        db.flush();
        db.set_group_commit_auto(1, 16);
        assert_eq!(db.group_commit_now(), 1, "starts latency-safe");

        let syncs_before = dev.sync_count();
        for i in 0..64 {
            db.worker_exec("INSERT INTO t VALUES (?)", &[SqlValue::Int(i)], 1);
        }
        assert_eq!(db.group_commit_now(), 16, "sustained appends hit the cap");
        let (grows, _) = db.group_commit_transitions();
        assert!(grows >= 4);
        assert!(
            dev.sync_count() - syncs_before < 64,
            "the grown batch amortized syncs below one-per-record"
        );

        // One under-filled flush (a lone record against a batch of 16)
        // walks the batch back down.
        db.worker_exec("INSERT INTO t VALUES (99)", &[], 1);
        db.flush();
        assert!(db.group_commit_now() < 16, "idleness shrinks the batch");
        assert_eq!(db.pending(), 0);

        // Everything flushed is recoverable, same as fixed batching.
        drop(db);
        let mut db2 = DurableDb::open(Box::new(dev));
        let rows = db2.engine_mut().run("SELECT v FROM t").unwrap().rows;
        assert_eq!(rows.len(), 65);
    }

    #[test]
    fn group_commit_env_parsing() {
        assert_eq!(group_commit_from(None).current_for_test(), 1);
        assert_eq!(group_commit_from(Some("8")).current_for_test(), 8);
        assert_eq!(group_commit_from(Some("junk")).current_for_test(), 1);
        assert!(matches!(
            group_commit_from(Some("auto")),
            GroupCommit::Auto(_)
        ));
        assert!(matches!(
            group_commit_from(Some(" AUTO ")),
            GroupCommit::Auto(_)
        ));
    }

    impl GroupCommit {
        fn current_for_test(&self) -> usize {
            match self {
                GroupCommit::Fixed(n) => *n,
                GroupCommit::Auto(b) => b.current(),
            }
        }
    }

    #[test]
    fn compaction_folds_wal_into_snapshot_and_recovers() {
        let dev = MemDev::new();
        let mut db = DurableDb::open(Box::new(dev.clone()));
        db.set_compact_threshold(512);
        db.apply_ddl("CREATE TABLE t (v)");
        for i in 0..50 {
            db.worker_exec("INSERT INTO t VALUES (?)", &[SqlValue::Int(i)], 1);
        }
        db.flush();
        let live = db.snapshot_bytes();
        assert!(
            dev.list().iter().any(|n| n.starts_with("snap.")),
            "threshold crossed: a snapshot exists"
        );
        drop(db);
        let db2 = DurableDb::open(Box::new(dev));
        assert!(db2.recovery().from_snapshot);
        assert_eq!(db2.snapshot_bytes(), live, "recovery is state-identical");
    }

    #[test]
    fn volatile_mode_has_no_side_channel() {
        let mut db = DurableDb::volatile();
        assert!(!db.is_durable());
        db.apply_ddl("CREATE TABLE t (v)");
        db.worker_exec("INSERT INTO t VALUES (1)", &[], 1);
        db.flush();
        assert_eq!(db.pending(), 0);
        assert_eq!(db.boot_epoch(), 0);
    }

    #[test]
    fn worker_writes_cannot_touch_raw_tables() {
        let mut db = DurableDb::volatile();
        // A raw (admin-created) table has no hidden column.
        db.admin_exec("CREATE TABLE okws_users (name, pw)", &[])
            .unwrap();
        db.admin_exec("INSERT INTO okws_users VALUES ('alice', 'secret')", &[])
            .unwrap();
        assert!(
            db.worker_exec("INSERT INTO okws_users VALUES ('evil', 'x')", &[], 5)
                .is_none(),
            "worker INSERT into a raw table must be refused"
        );
        assert!(
            db.worker_exec("DELETE FROM okws_users", &[], 5).is_none(),
            "worker DELETE from a raw table must be refused"
        );
        assert_eq!(db.engine().table("okws_users").unwrap().len(), 1);
    }
}
