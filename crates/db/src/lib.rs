//! # asbestos-db
//!
//! The database layer of the Asbestos reproduction: a small in-memory
//! relational engine (the SQLite substitute — parser, heap tables, hash
//! indexes, CRUD with a work metric for cost accounting) plus ok-dbproxy,
//! the trusted process that interposes on all worker database access and
//! converts Asbestos labels to data policies (§7.5, §7.6):
//!
//! * a hidden `user_id` column on every table, invisible to workers;
//! * writes gated on `V ⊑ {uT 3, uG 0, 2}`;
//! * per-row taint on reads, with an untainted end-of-results marker;
//! * decentralized declassification: `V(uT) = ⋆` writes rows with owner 0.

pub mod ast;
pub mod durable;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod proto;
pub mod proxy;
pub mod snapshot;
pub mod table;
pub mod value;

pub use durable::{DbRecord, DbRecovery, DurableDb};
pub use engine::{Database, DbError, QueryResult};
pub use parser::parse;
pub use proto::DbMsg;
pub use proxy::{
    spawn_dbproxy, DbHandle, DbProxy, DB_PORT_ENV, DB_TRUSTED_ENV, OWNERS_TABLE, USER_ID_COLUMN,
};
pub use snapshot::{restore, snapshot, SnapshotError};
pub use value::SqlValue;
