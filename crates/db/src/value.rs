//! SQL cell values.

use std::fmt;

/// A value stored in a table cell (SQLite's dynamic typing, reduced to the
/// types OKWS uses).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Blob(Vec<u8>),
}

impl SqlValue {
    /// The integer, if this is an [`SqlValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SqlValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text, if this is an [`SqlValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            SqlValue::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The bytes, if this is an [`SqlValue::Blob`].
    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            SqlValue::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Text(t) => write!(f, "'{}'", t.replace('\'', "''")),
            SqlValue::Blob(b) => write!(f, "x'{}'", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl From<i64> for SqlValue {
    fn from(v: i64) -> SqlValue {
        SqlValue::Int(v)
    }
}

impl From<&str> for SqlValue {
    fn from(v: &str) -> SqlValue {
        SqlValue::Text(v.to_string())
    }
}

impl From<String> for SqlValue {
    fn from(v: String) -> SqlValue {
        SqlValue::Text(v)
    }
}

impl From<Vec<u8>> for SqlValue {
    fn from(v: Vec<u8>) -> SqlValue {
        SqlValue::Blob(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(SqlValue::Int(3).as_int(), Some(3));
        assert_eq!(SqlValue::Text("a".into()).as_text(), Some("a"));
        assert_eq!(SqlValue::Blob(vec![1]).as_blob(), Some(&[1u8][..]));
        assert!(SqlValue::Null.is_null());
        assert_eq!(SqlValue::Null.as_int(), None);
    }

    #[test]
    fn display_quotes_text() {
        assert_eq!(SqlValue::Text("o'hare".into()).to_string(), "'o''hare'");
        assert_eq!(SqlValue::Blob(vec![0xab, 0x01]).to_string(), "x'ab01'");
        assert_eq!(SqlValue::Int(-5).to_string(), "-5");
    }
}
