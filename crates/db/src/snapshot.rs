//! Database snapshot and restore.
//!
//! §7.5: "With database access, OKWS can extend its label-based security
//! policy to one that persists across system reboots." Handles are per-boot
//! (61-bit values unique *since boot*, §5.1), so what persists is the
//! *data* plus the hidden ownership column; after a reboot, idd mints fresh
//! handles and re-binds users, and the stored user ids reconnect rows to
//! their owners.
//!
//! The format is a small length-prefixed binary codec (the workspace policy
//! avoids pulling in a serialization format crate):
//!
//! ```text
//! magic "ASDB" | version u32 | table count u32
//!   per table: name | column count u32 | columns… | row count u32 | rows…
//!   per cell:  tag u8 (0=null 1=int 2=text 3=blob) | len u32 | payload
//! ```

use crate::engine::Database;
use crate::table::Row;
use crate::value::SqlValue;

/// Format magic.
const MAGIC: &[u8; 4] = b"ASDB";
/// Format version.
const VERSION: u32 = 1;

/// Errors from [`restore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the ASDB magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended mid-structure or a length field overran it.
    Truncated,
    /// A cell tag byte was invalid.
    BadTag(u8),
    /// Text payload was not UTF-8.
    BadText,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a database snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "truncated snapshot"),
            SnapshotError::BadTag(t) => write!(f, "invalid cell tag {t}"),
            SnapshotError::BadText => write!(f, "non-UTF-8 text payload"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes the whole database.
pub fn snapshot(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    let names = db.table_names();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        let table = db.table(name).expect("listed table exists");
        put_str(&mut out, name);
        put_u32(&mut out, table.columns.len() as u32);
        for col in &table.columns {
            put_str(&mut out, col);
        }
        put_u32(&mut out, table.len() as u32);
        for (_slot, row) in table.iter() {
            for cell in row {
                put_cell(&mut out, cell);
            }
        }
    }
    out
}

/// Rebuilds a database from a snapshot.
pub fn restore(bytes: &[u8]) -> Result<Database, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let mut db = Database::new();
    let tables = r.u32()?;
    for _ in 0..tables {
        let name = r.string()?;
        let ncols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            columns.push(r.string()?);
        }
        db.create_table_raw(&name, columns.clone());
        let nrows = r.u32()? as usize;
        for _ in 0..nrows {
            let mut row: Row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                row.push(r.cell()?);
            }
            db.insert_raw(&name, row);
        }
    }
    Ok(db)
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_cell(out: &mut Vec<u8>, cell: &SqlValue) {
    match cell {
        SqlValue::Null => {
            out.push(0);
            put_u32(out, 0);
        }
        SqlValue::Int(i) => {
            out.push(1);
            put_u32(out, 8);
            out.extend_from_slice(&i.to_le_bytes());
        }
        SqlValue::Text(t) => {
            out.push(2);
            put_str(out, t);
        }
        SqlValue::Blob(b) => {
            out.push(3);
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
    }
}

pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapshotError::BadText)
    }

    pub(crate) fn cell(&mut self) -> Result<SqlValue, SnapshotError> {
        let tag = self.take(1)?[0];
        let len = self.u32()? as usize;
        let payload = self.take(len)?;
        match tag {
            0 => Ok(SqlValue::Null),
            1 => {
                if len != 8 {
                    return Err(SnapshotError::Truncated);
                }
                Ok(SqlValue::Int(i64::from_le_bytes(
                    payload.try_into().expect("8 bytes"),
                )))
            }
            2 => String::from_utf8(payload.to_vec())
                .map(SqlValue::Text)
                .map_err(|_| SnapshotError::BadText),
            3 => Ok(SqlValue::Blob(payload.to_vec())),
            other => Err(SnapshotError::BadTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        let mut db = Database::new();
        db.run("CREATE TABLE users (name, pw)").unwrap();
        db.run("INSERT INTO users VALUES ('alice', 'pw-a')")
            .unwrap();
        db.run("INSERT INTO users VALUES ('bob', NULL)").unwrap();
        db.run("CREATE TABLE blobs (data)").unwrap();
        db.run_with_params(
            "INSERT INTO blobs VALUES (?)",
            &[SqlValue::Blob(vec![0, 255, 7])],
        )
        .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample();
        let bytes = snapshot(&db);
        let mut restored = restore(&bytes).unwrap();
        let r = restored
            .run("SELECT name, pw FROM users WHERE name = 'alice'")
            .unwrap();
        assert_eq!(r.rows, vec![vec!["alice".into(), "pw-a".into()]]);
        let r = restored
            .run("SELECT pw FROM users WHERE name = 'bob'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![SqlValue::Null]]);
        let r = restored.run("SELECT data FROM blobs").unwrap();
        assert_eq!(r.rows, vec![vec![SqlValue::Blob(vec![0, 255, 7])]]);
    }

    #[test]
    fn snapshot_is_deterministic() {
        assert_eq!(snapshot(&sample()), snapshot(&sample()));
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let good = snapshot(&sample());
        assert_eq!(restore(b"nope").err(), Some(SnapshotError::BadMagic));
        assert_eq!(restore(&good[..10]).err(), Some(SnapshotError::Truncated));
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert_eq!(
            restore(&bad_version).err(),
            Some(SnapshotError::BadVersion(99))
        );
        let mut bad_tag = good.clone();
        // Flip the first cell tag (search for the row section crudely: the
        // first 1/2/3 tag byte after the header survives this heuristic
        // because the format is deterministic for `sample()`).
        let tag_pos = good.len() - 1 - good.iter().rev().position(|&b| b == 2).unwrap();
        bad_tag[tag_pos] = 9;
        assert!(restore(&bad_tag).is_err());
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let restored = restore(&snapshot(&db)).unwrap();
        assert!(restored.table_names().is_empty());
    }
}
