//! Recursive-descent parser for the SQL subset.

use std::fmt;

use crate::ast::{CmpOp, Comparison, Expr, SelectCols, Stmt, Where};
use crate::lexer::{lex, LexError, Token};
use crate::value::SqlValue;

/// A parse error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { msg: e.to_string() }
    }
}

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Stmt, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    // Optional trailing semicolon.
    let _ = p.eat_punct(";");
    if p.pos != p.tokens.len() {
        return Err(p.err(&format!("trailing tokens starting at {}", p.peek_desc())));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { msg: msg.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        match self.peek() {
            Some(t) => format!("{t}"),
            None => "end of input".into(),
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}, found {}", self.peek_desc())))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if let Some(Token::Punct(got)) = self.peek() {
            if *got == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{p}', found {}", self.peek_desc())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(&format!(
                "expected identifier, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_keyword("CREATE") {
            if self.eat_keyword("TABLE") {
                return self.create_table();
            }
            if self.eat_keyword("INDEX") {
                return self.create_index();
            }
            return Err(self.err("expected TABLE or INDEX after CREATE"));
        }
        if self.eat_keyword("INSERT") {
            return self.insert();
        }
        if self.eat_keyword("SELECT") {
            return self.select();
        }
        if self.eat_keyword("UPDATE") {
            return self.update();
        }
        if self.eat_keyword("DELETE") {
            return self.delete();
        }
        Err(self.err(&format!("unknown statement start: {}", self.peek_desc())))
    }

    fn create_table(&mut self) -> Result<Stmt, ParseError> {
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut columns = vec![self.ident()?];
        while self.eat_punct(",") {
            columns.push(self.ident()?);
        }
        self.expect_punct(")")?;
        Ok(Stmt::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<Stmt, ParseError> {
        // Optional index name: CREATE INDEX [name] ON table (col)
        let first = self.ident()?;
        let table = if self.eat_keyword("ON") {
            // `first` was actually... no: if the next token was ON, `first`
            // was the index name. Wait: we already consumed one ident.
            self.ident()?
        } else if first.eq_ignore_ascii_case("ON") {
            self.ident()?
        } else {
            self.expect_keyword("ON")?;
            unreachable!("expect_keyword returns Err before this point")
        };
        self.expect_punct("(")?;
        let column = self.ident()?;
        self.expect_punct(")")?;
        Ok(Stmt::CreateIndex { table, column })
    }

    fn insert(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_punct("(") {
            let mut cols = vec![self.ident()?];
            while self.eat_punct(",") {
                cols.push(self.ident()?);
            }
            self.expect_punct(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        self.expect_punct("(")?;
        let mut values = vec![self.expr()?];
        while self.eat_punct(",") {
            values.push(self.expr()?);
        }
        self.expect_punct(")")?;
        Ok(Stmt::Insert {
            table,
            columns,
            values,
        })
    }

    fn select(&mut self) -> Result<Stmt, ParseError> {
        let columns = if self.eat_punct("*") {
            SelectCols::Star
        } else {
            let mut cols = vec![self.ident()?];
            while self.eat_punct(",") {
                cols.push(self.ident()?);
            }
            SelectCols::Named(cols)
        };
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let filter = self.opt_where()?;
        Ok(Stmt::Select {
            columns,
            table,
            filter,
        })
    }

    fn update(&mut self) -> Result<Stmt, ParseError> {
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_punct("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_punct(",") {
                break;
            }
        }
        let filter = self.opt_where()?;
        Ok(Stmt::Update {
            table,
            sets,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Stmt, ParseError> {
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let filter = self.opt_where()?;
        Ok(Stmt::Delete { table, filter })
    }

    fn opt_where(&mut self) -> Result<Where, ParseError> {
        if !self.eat_keyword("WHERE") {
            return Ok(Where::default());
        }
        let mut conjuncts = vec![self.comparison()?];
        while self.eat_keyword("AND") {
            conjuncts.push(self.comparison()?);
        }
        Ok(Where { conjuncts })
    }

    fn comparison(&mut self) -> Result<Comparison, ParseError> {
        let column = self.ident()?;
        let op = match self.next() {
            Some(Token::Punct("=")) => CmpOp::Eq,
            Some(Token::Punct("!=")) => CmpOp::Ne,
            Some(Token::Punct("<")) => CmpOp::Lt,
            Some(Token::Punct("<=")) => CmpOp::Le,
            Some(Token::Punct(">")) => CmpOp::Gt,
            Some(Token::Punct(">=")) => CmpOp::Ge,
            other => {
                return Err(self.err(&format!(
                    "expected comparison operator, found {}",
                    other.map(|t| t.to_string()).unwrap_or_else(|| "end".into())
                )))
            }
        };
        let rhs = self.expr()?;
        Ok(Comparison { column, op, rhs })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Lit(SqlValue::Int(i))),
            Some(Token::Str(s)) => Ok(Expr::Lit(SqlValue::Text(s))),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => {
                Ok(Expr::Lit(SqlValue::Null))
            }
            Some(Token::Param) => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            other => Err(self.err(&format!(
                "expected literal or '?', found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let stmt = parse("CREATE TABLE users (name, pw, uid)").unwrap();
        assert_eq!(
            stmt,
            Stmt::CreateTable {
                name: "users".into(),
                columns: vec!["name".into(), "pw".into(), "uid".into()],
            }
        );
    }

    #[test]
    fn parses_create_index_with_and_without_name() {
        let a = parse("CREATE INDEX ON users (name)").unwrap();
        let b = parse("CREATE INDEX idx_users ON users (name)").unwrap();
        for stmt in [a, b] {
            assert_eq!(
                stmt,
                Stmt::CreateIndex {
                    table: "users".into(),
                    column: "name".into(),
                }
            );
        }
    }

    #[test]
    fn parses_insert() {
        let stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x')").unwrap();
        assert_eq!(
            stmt,
            Stmt::Insert {
                table: "t".into(),
                columns: Some(vec!["a".into(), "b".into()]),
                values: vec![
                    Expr::Lit(SqlValue::Int(1)),
                    Expr::Lit(SqlValue::Text("x".into())),
                ],
            }
        );
        // Without column list, with params and NULL.
        let stmt = parse("INSERT INTO t VALUES (?, NULL, ?)").unwrap();
        assert_eq!(
            stmt,
            Stmt::Insert {
                table: "t".into(),
                columns: None,
                values: vec![Expr::Param(0), Expr::Lit(SqlValue::Null), Expr::Param(1)],
            }
        );
    }

    #[test]
    fn parses_select_with_where() {
        let stmt = parse("SELECT name, uid FROM users WHERE name = ? AND uid >= 10").unwrap();
        match stmt {
            Stmt::Select {
                columns: SelectCols::Named(cols),
                table,
                filter,
            } => {
                assert_eq!(cols, vec!["name".to_string(), "uid".to_string()]);
                assert_eq!(table, "users");
                assert_eq!(filter.conjuncts.len(), 2);
                assert_eq!(filter.conjuncts[0].op, CmpOp::Eq);
                assert_eq!(filter.conjuncts[1].op, CmpOp::Ge);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_select_star() {
        let stmt = parse("SELECT * FROM t;").unwrap();
        assert!(matches!(
            stmt,
            Stmt::Select {
                columns: SelectCols::Star,
                ..
            }
        ));
    }

    #[test]
    fn parses_update_delete() {
        let stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE c != 0").unwrap();
        assert!(matches!(stmt, Stmt::Update { ref sets, .. } if sets.len() == 2));
        let stmt = parse("DELETE FROM t WHERE k = 'dead'").unwrap();
        assert!(matches!(stmt, Stmt::Delete { .. }));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("SELEC * FROM t").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("INSERT INTO t VALUES 1").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t garbage").is_err());
        assert!(parse("CREATE VIEW v").is_err());
    }

    #[test]
    fn param_indices_count_up() {
        let stmt = parse("UPDATE t SET a = ? WHERE b = ? AND c = ?").unwrap();
        if let Stmt::Update { sets, filter, .. } = stmt {
            assert_eq!(sets[0].1, Expr::Param(0));
            assert_eq!(filter.conjuncts[0].rhs, Expr::Param(1));
            assert_eq!(filter.conjuncts[1].rhs, Expr::Param(2));
        } else {
            panic!("expected update");
        }
    }
}
