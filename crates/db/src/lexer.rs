//! SQL tokenizer.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal with SQL `''` escaping already resolved.
    Str(String),
    /// `?` parameter placeholder.
    Param,
    /// Punctuation: `( ) , * = ; < > <= >= != <>` etc.
    Punct(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Param => write!(f, "?"),
            Token::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes SQL text.
pub fn lex(sql: &str) -> Result<Vec<Token>, LexError> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' | ')' | ',' | '*' | ';' => {
                out.push(Token::Punct(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    _ => ";",
                }));
                i += 1;
            }
            '=' => {
                out.push(Token::Punct("="));
                i += 1;
            }
            '?' => {
                out.push(Token::Param);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Punct("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Punct("!="));
                    i += 2;
                } else {
                    out.push(Token::Punct("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Punct(">="));
                    i += 2;
                } else {
                    out.push(Token::Punct(">"));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Punct("!="));
                    i += 2;
                } else {
                    return Err(LexError {
                        at: i,
                        msg: "unexpected '!'".into(),
                    });
                }
            }
            '\'' => {
                let (s, next) = lex_string(sql, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            '-' if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                let (v, next) = lex_int(sql, i)?;
                out.push(Token::Int(v));
                i = next;
            }
            _ if c.is_ascii_digit() => {
                let (v, next) = lex_int(sql, i)?;
                out.push(Token::Int(v));
                i = next;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            _ => {
                return Err(LexError {
                    at: i,
                    msg: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_string(sql: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = sql.as_bytes();
    let mut s = String::new();
    let mut i = start + 1;
    loop {
        match bytes.get(i) {
            None => {
                return Err(LexError {
                    at: start,
                    msg: "unterminated string literal".into(),
                })
            }
            Some(b'\'') => {
                if bytes.get(i + 1) == Some(&b'\'') {
                    s.push('\'');
                    i += 2;
                } else {
                    return Ok((s, i + 1));
                }
            }
            Some(&b) => {
                s.push(b as char);
                i += 1;
            }
        }
    }
}

fn lex_int(sql: &str, start: usize) -> Result<(i64, usize), LexError> {
    let bytes = sql.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    sql[start..i]
        .parse::<i64>()
        .map(|v| (v, i))
        .map_err(|e| LexError {
            at: start,
            msg: format!("bad integer: {e}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_statement() {
        let toks = lex("SELECT a, b FROM t WHERE x = 'it''s' AND y >= -3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Punct(","),
                Token::Ident("b".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("x".into()),
                Token::Punct("="),
                Token::Str("it's".into()),
                Token::Ident("AND".into()),
                Token::Ident("y".into()),
                Token::Punct(">="),
                Token::Int(-3),
            ]
        );
    }

    #[test]
    fn lexes_params_and_ops() {
        let toks = lex("x=? AND y<>2 AND z<=3;").unwrap();
        assert!(toks.contains(&Token::Param));
        assert!(toks.contains(&Token::Punct("!=")));
        assert!(toks.contains(&Token::Punct("<=")));
        assert!(toks.contains(&Token::Punct(";")));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a @ b").is_err());
        assert!(lex("!x").is_err());
    }
}
