//! Heap tables with optional hash indexes.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::value::SqlValue;

/// A row: one value per table column.
pub type Row = Vec<SqlValue>;

/// A hash index over one column: value → row slots.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<SqlValue, Vec<usize>>,
}

impl HashIndex {
    /// Builds an index over existing rows.
    pub fn build(rows: &[Option<Row>], col: usize) -> HashIndex {
        let mut idx = HashIndex::default();
        for (slot, row) in rows.iter().enumerate() {
            if let Some(r) = row {
                idx.insert(&r[col], slot);
            }
        }
        idx
    }

    fn insert(&mut self, value: &SqlValue, slot: usize) {
        self.map.entry(value.clone()).or_default().push(slot);
    }

    fn remove(&mut self, value: &SqlValue, slot: usize) {
        if let Some(slots) = self.map.get_mut(value) {
            slots.retain(|&s| s != slot);
            if slots.is_empty() {
                self.map.remove(value);
            }
        }
    }

    /// Row slots whose indexed column equals `value`.
    pub fn lookup(&self, value: &SqlValue) -> &[usize] {
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A table: named columns, slotted rows (tombstoned on delete), and
/// optional hash indexes.
#[derive(Debug)]
pub struct Table {
    /// Column names, in order.
    pub columns: Vec<String>,
    rows: Vec<Option<Row>>,
    live: usize,
    /// Column position → index.
    indexes: BTreeMap<usize, HashIndex>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(columns: Vec<String>) -> Table {
        Table {
            columns,
            rows: Vec::new(),
            live: 0,
            indexes: BTreeMap::new(),
        }
    }

    /// Position of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Appends a row (must match the column count).
    pub fn insert(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.columns.len());
        let slot = self.rows.len();
        for (&col, idx) in self.indexes.iter_mut() {
            idx.insert(&row[col], slot);
        }
        self.rows.push(Some(row));
        self.live += 1;
    }

    /// Iterates `(slot, row)` for live rows.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// The live row in `slot`, if any.
    pub fn row(&self, slot: usize) -> Option<&Row> {
        self.rows.get(slot).and_then(Option::as_ref)
    }

    /// Replaces one cell, maintaining indexes.
    pub fn set_cell(&mut self, slot: usize, col: usize, value: SqlValue) {
        let Some(Some(row)) = self.rows.get_mut(slot) else {
            return;
        };
        let old = std::mem::replace(&mut row[col], value.clone());
        if let Some(idx) = self.indexes.get_mut(&col) {
            idx.remove(&old, slot);
            idx.insert(&value, slot);
        }
    }

    /// Tombstones a row, maintaining indexes.
    pub fn delete(&mut self, slot: usize) {
        if let Some(Some(row)) = self.rows.get(slot) {
            let row = row.clone();
            for (&col, idx) in self.indexes.iter_mut() {
                idx.remove(&row[col], slot);
            }
            self.rows[slot] = None;
            self.live -= 1;
        }
    }

    /// Creates a hash index on `col` (no-op if it exists).
    pub fn create_index(&mut self, col: usize) {
        self.indexes
            .entry(col)
            .or_insert_with(|| HashIndex::build(&self.rows, col));
    }

    /// The index on `col`, if one exists.
    pub fn index(&self, col: usize) -> Option<&HashIndex> {
        self.indexes.get(&col)
    }

    /// Approximate heap bytes (for memory-style accounting).
    pub fn approx_bytes(&self) -> usize {
        let row_bytes: usize = self
            .iter()
            .map(|(_, r)| {
                r.iter()
                    .map(|v| match v {
                        SqlValue::Null => 8,
                        SqlValue::Int(_) => 16,
                        SqlValue::Text(t) => 24 + t.len(),
                        SqlValue::Blob(b) => 24 + b.len(),
                    })
                    .sum::<usize>()
            })
            .sum();
        64 + self.columns.iter().map(|c| 24 + c.len()).sum::<usize>() + row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut table = Table::new(vec!["k".into(), "v".into()]);
        table.insert(vec!["a".into(), SqlValue::Int(1)]);
        table.insert(vec!["b".into(), SqlValue::Int(2)]);
        table.insert(vec!["a".into(), SqlValue::Int(3)]);
        table
    }

    #[test]
    fn insert_iter_len() {
        let table = t();
        assert_eq!(table.len(), 3);
        assert_eq!(table.iter().count(), 3);
        assert_eq!(table.col("v"), Some(1));
        assert_eq!(table.col("missing"), None);
    }

    #[test]
    fn delete_tombstones() {
        let mut table = t();
        table.delete(1);
        assert_eq!(table.len(), 2);
        assert!(table.row(1).is_none());
        assert!(table.row(0).is_some());
        // Double delete is a no-op.
        table.delete(1);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn index_lookup_and_maintenance() {
        let mut table = t();
        table.create_index(0);
        let idx = table.index(0).unwrap();
        assert_eq!(idx.lookup(&"a".into()), &[0, 2]);
        assert_eq!(idx.lookup(&"b".into()), &[1]);
        assert_eq!(idx.lookup(&"zz".into()), &[] as &[usize]);

        table.set_cell(0, 0, "b".into());
        let idx = table.index(0).unwrap();
        assert_eq!(idx.lookup(&"a".into()), &[2]);
        assert_eq!(idx.lookup(&"b".into()), &[1, 0]);

        table.delete(2);
        let idx = table.index(0).unwrap();
        assert_eq!(idx.lookup(&"a".into()), &[] as &[usize]);

        // Inserts keep the index current.
        table.insert(vec!["a".into(), SqlValue::Int(9)]);
        let idx = table.index(0).unwrap();
        assert_eq!(idx.lookup(&"a".into()), &[3]);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut table = Table::new(vec!["k".into()]);
        let before = table.approx_bytes();
        table.insert(vec![SqlValue::Text("x".repeat(100))]);
        assert!(table.approx_bytes() > before + 100);
    }
}
