//! The ok-dbproxy wire protocol (§7.5).

use asbestos_kernel::{Handle, Value};

use crate::value::SqlValue;

fn sql_to_value(v: &SqlValue) -> Value {
    match v {
        SqlValue::Null => Value::Unit,
        SqlValue::Int(i) => Value::List(vec![Value::Str("i".into()), Value::U64(*i as u64)]),
        SqlValue::Text(t) => Value::Str(t.clone()),
        SqlValue::Blob(b) => Value::Bytes(b.clone().into()),
    }
}

fn value_to_sql(v: &Value) -> Option<SqlValue> {
    match v {
        Value::Unit => Some(SqlValue::Null),
        Value::Str(s) => Some(SqlValue::Text(s.clone())),
        Value::Bytes(b) => Some(SqlValue::Blob(b.to_vec())),
        Value::List(items) => {
            if items.len() == 2 && items[0].as_str() == Some("i") {
                Some(SqlValue::Int(items[1].as_u64()? as i64))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn params_to_value(params: &[SqlValue]) -> Value {
    Value::List(params.iter().map(sql_to_value).collect())
}

fn value_to_params(v: &Value) -> Option<Vec<SqlValue>> {
    v.as_list()?.iter().map(value_to_sql).collect()
}

/// A message in the database-proxy protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum DbMsg {
    /// Trusted (admin-port) registration of a user ↔ handle binding; the
    /// sender also grants the proxy `taint ⋆` via `D_S`, reproducing §7.5's
    /// "idd grants it all user taint handles at level ⋆".
    Bind {
        /// Username.
        user: String,
        /// The user's taint handle `uT`.
        taint: Handle,
        /// The user's grant handle `uG`.
        grant: Handle,
        /// Optional ack port for [`DbMsg::BindR`]. The binder withholds
        /// the login reply until the ack: the user's first tainted query
        /// travels a different port than the `Bind`, so without the ack
        /// the kernel may deliver the query first and label-drop it.
        reply: Option<Handle>,
    },
    /// Acknowledges a [`DbMsg::Bind`]: the binding (and the raised
    /// receive label) is in place, so arbitrarily-tainted traffic from
    /// the bound user will now be delivered.
    BindR,
    /// Trusted DDL (CREATE TABLE / CREATE INDEX), admin port only.
    Ddl {
        /// The statement.
        sql: String,
    },
    /// A write (INSERT/UPDATE/DELETE) on behalf of `user`. The message's
    /// verification label must satisfy `V ⊑ {uT 3, uG 0, 2}` (§7.5).
    Exec {
        /// The acting user.
        user: String,
        /// The statement.
        sql: String,
        /// Bound parameters.
        params: Vec<SqlValue>,
        /// Optional reply port for [`DbMsg::ExecR`].
        reply: Option<Handle>,
    },
    /// Reply to [`DbMsg::Exec`].
    ExecR {
        /// Whether the write was accepted.
        ok: bool,
        /// Rows affected.
        affected: u64,
    },
    /// A SELECT. Rows come back one [`DbMsg::Row`] message each, tainted by
    /// their owner; an untainted [`DbMsg::Done`] terminates the result set.
    Query {
        /// The statement.
        sql: String,
        /// Bound parameters.
        params: Vec<SqlValue>,
        /// Reply port.
        reply: Handle,
    },
    /// One result row (contaminated with its owner's taint at 3, §7.5).
    Row {
        /// Cell values (hidden `user_id` column already stripped).
        values: Vec<SqlValue>,
    },
    /// End of result set. Deliberately carries no row count — the count
    /// would reveal how many *other* users' rows were dropped (§7.5: a
    /// worker "cannot tell how many other rows were sent").
    Done,
    /// Announces the proxy's admin port to the trusted party (sent at
    /// startup with an `admin ⋆` grant).
    AdminPort {
        /// The admin port.
        port: Handle,
    },
}

impl DbMsg {
    /// Encodes to a [`Value`] payload.
    pub fn to_value(&self) -> Value {
        match self {
            DbMsg::Bind {
                user,
                taint,
                grant,
                reply,
            } => Value::List(vec![
                Value::Str("bind".into()),
                Value::Str(user.clone()),
                Value::Handle(*taint),
                Value::Handle(*grant),
                match reply {
                    Some(r) => Value::Handle(*r),
                    None => Value::Unit,
                },
            ]),
            DbMsg::BindR => Value::List(vec![Value::Str("bind-r".into())]),
            DbMsg::Ddl { sql } => {
                Value::List(vec![Value::Str("ddl".into()), Value::Str(sql.clone())])
            }
            DbMsg::Exec {
                user,
                sql,
                params,
                reply,
            } => Value::List(vec![
                Value::Str("exec".into()),
                Value::Str(user.clone()),
                Value::Str(sql.clone()),
                params_to_value(params),
                match reply {
                    Some(r) => Value::Handle(*r),
                    None => Value::Unit,
                },
            ]),
            DbMsg::ExecR { ok, affected } => Value::List(vec![
                Value::Str("exec-r".into()),
                Value::Bool(*ok),
                Value::U64(*affected),
            ]),
            DbMsg::Query { sql, params, reply } => Value::List(vec![
                Value::Str("query".into()),
                Value::Str(sql.clone()),
                params_to_value(params),
                Value::Handle(*reply),
            ]),
            DbMsg::Row { values } => Value::List(vec![
                Value::Str("row".into()),
                Value::List(values.iter().map(sql_to_value).collect()),
            ]),
            DbMsg::Done => Value::List(vec![Value::Str("done".into())]),
            DbMsg::AdminPort { port } => {
                Value::List(vec![Value::Str("admin-port".into()), Value::Handle(*port)])
            }
        }
    }

    /// Decodes from a [`Value`] payload.
    pub fn from_value(value: &Value) -> Option<DbMsg> {
        let items = value.as_list()?;
        match items.first()?.as_str()? {
            "bind" => Some(DbMsg::Bind {
                user: items.get(1)?.as_str()?.to_string(),
                taint: items.get(2)?.as_handle()?,
                grant: items.get(3)?.as_handle()?,
                reply: items.get(4).and_then(|v| v.as_handle()),
            }),
            "bind-r" => Some(DbMsg::BindR),
            "ddl" => Some(DbMsg::Ddl {
                sql: items.get(1)?.as_str()?.to_string(),
            }),
            "exec" => Some(DbMsg::Exec {
                user: items.get(1)?.as_str()?.to_string(),
                sql: items.get(2)?.as_str()?.to_string(),
                params: value_to_params(items.get(3)?)?,
                reply: items.get(4).and_then(|v| v.as_handle()),
            }),
            "exec-r" => Some(DbMsg::ExecR {
                ok: items.get(1)?.as_bool()?,
                affected: items.get(2)?.as_u64()?,
            }),
            "query" => Some(DbMsg::Query {
                sql: items.get(1)?.as_str()?.to_string(),
                params: value_to_params(items.get(2)?)?,
                reply: items.get(3)?.as_handle()?,
            }),
            "row" => Some(DbMsg::Row {
                values: value_to_params(items.get(1)?)?,
            }),
            "done" => Some(DbMsg::Done),
            "admin-port" => Some(DbMsg::AdminPort {
                port: items.get(1)?.as_handle()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = Handle::from_raw(5);
        let msgs = vec![
            DbMsg::Bind {
                user: "u".into(),
                taint: h,
                grant: h,
                reply: None,
            },
            DbMsg::Bind {
                user: "u".into(),
                taint: h,
                grant: h,
                reply: Some(h),
            },
            DbMsg::BindR,
            DbMsg::Ddl {
                sql: "CREATE TABLE t (a)".into(),
            },
            DbMsg::Exec {
                user: "u".into(),
                sql: "INSERT INTO t VALUES (?)".into(),
                params: vec![SqlValue::Int(-7), SqlValue::Null, "x".into()],
                reply: Some(h),
            },
            DbMsg::Exec {
                user: "u".into(),
                sql: "s".into(),
                params: vec![],
                reply: None,
            },
            DbMsg::ExecR {
                ok: true,
                affected: 2,
            },
            DbMsg::Query {
                sql: "SELECT * FROM t".into(),
                params: vec![],
                reply: h,
            },
            DbMsg::Row {
                values: vec![SqlValue::Blob(vec![1, 2])],
            },
            DbMsg::Done,
            DbMsg::AdminPort { port: h },
        ];
        for m in msgs {
            assert_eq!(DbMsg::from_value(&m.to_value()), Some(m));
        }
    }

    #[test]
    fn negative_ints_roundtrip() {
        let m = DbMsg::Row {
            values: vec![SqlValue::Int(i64::MIN)],
        };
        assert_eq!(DbMsg::from_value(&m.to_value()), Some(m));
    }
}
