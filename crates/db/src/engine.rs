//! Statement execution.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{Expr, SelectCols, Stmt, Where};
use crate::parser::{parse, ParseError};
use crate::table::{Row, Table};
use crate::value::SqlValue;

/// An execution error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    /// SQL failed to parse.
    Parse(String),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// INSERT arity doesn't match the column count.
    ArityMismatch {
        /// Columns expected.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A `?` placeholder had no bound parameter.
    MissingParam(usize),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "{m}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::TableExists(t) => write!(f, "table exists: {t}"),
            DbError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::MissingParam(i) => write!(f, "missing parameter {i}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> DbError {
        DbError::Parse(e.to_string())
    }
}

/// The result of executing a statement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryResult {
    /// Result column names (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Row>,
    /// Rows inserted/updated/deleted.
    pub affected: usize,
    /// Row slots visited — the engine's work metric, charged by callers as
    /// cycles so database cost scales with data volume (Figure 9's OKDB
    /// series).
    pub work: u64,
}

/// An in-memory relational database (the SQLite substitute of §7.5).
#[derive(Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Parses and executes `sql` with no parameters.
    pub fn run(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        self.run_with_params(sql, &[])
    }

    /// Parses and executes `sql`, binding `?` placeholders to `params`.
    pub fn run_with_params(
        &mut self,
        sql: &str,
        params: &[SqlValue],
    ) -> Result<QueryResult, DbError> {
        let stmt = parse(sql)?;
        self.execute(&stmt, params)
    }

    /// Executes a parsed statement.
    pub fn execute(&mut self, stmt: &Stmt, params: &[SqlValue]) -> Result<QueryResult, DbError> {
        match stmt {
            Stmt::CreateTable { name, columns } => {
                if self.tables.contains_key(name) {
                    return Err(DbError::TableExists(name.clone()));
                }
                self.tables
                    .insert(name.clone(), Table::new(columns.clone()));
                Ok(QueryResult::default())
            }
            Stmt::CreateIndex { table, column } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let col = t
                    .col(column)
                    .ok_or_else(|| DbError::NoSuchColumn(column.clone()))?;
                t.create_index(col);
                Ok(QueryResult::default())
            }
            Stmt::Insert {
                table,
                columns,
                values,
            } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let vals: Vec<SqlValue> = values
                    .iter()
                    .map(|e| resolve(e, params))
                    .collect::<Result<_, _>>()?;
                let row = match columns {
                    None => {
                        if vals.len() != t.columns.len() {
                            return Err(DbError::ArityMismatch {
                                expected: t.columns.len(),
                                got: vals.len(),
                            });
                        }
                        vals
                    }
                    Some(cols) => {
                        if vals.len() != cols.len() {
                            return Err(DbError::ArityMismatch {
                                expected: cols.len(),
                                got: vals.len(),
                            });
                        }
                        let mut row = vec![SqlValue::Null; t.columns.len()];
                        for (c, v) in cols.iter().zip(vals) {
                            let pos = t.col(c).ok_or_else(|| DbError::NoSuchColumn(c.clone()))?;
                            row[pos] = v;
                        }
                        row
                    }
                };
                t.insert(row);
                Ok(QueryResult {
                    affected: 1,
                    work: 1,
                    ..QueryResult::default()
                })
            }
            Stmt::Select {
                columns,
                table,
                filter,
            } => {
                let t = self
                    .tables
                    .get(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let proj: Vec<(String, usize)> = match columns {
                    SelectCols::Star => t
                        .columns
                        .iter()
                        .enumerate()
                        .map(|(i, c)| (c.clone(), i))
                        .collect(),
                    SelectCols::Named(cols) => cols
                        .iter()
                        .map(|c| {
                            t.col(c)
                                .map(|i| (c.clone(), i))
                                .ok_or_else(|| DbError::NoSuchColumn(c.clone()))
                        })
                        .collect::<Result<_, _>>()?,
                };
                let (slots, work) = candidate_slots(t, filter, params)?;
                let mut rows = Vec::new();
                for slot in slots {
                    let Some(row) = t.row(slot) else { continue };
                    if matches(t, row, filter, params)? {
                        rows.push(proj.iter().map(|&(_, i)| row[i].clone()).collect());
                    }
                }
                Ok(QueryResult {
                    columns: proj.into_iter().map(|(c, _)| c).collect(),
                    rows,
                    affected: 0,
                    work,
                })
            }
            Stmt::Update {
                table,
                sets,
                filter,
            } => {
                let t = self
                    .tables
                    .get(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let set_cols: Vec<(usize, SqlValue)> = sets
                    .iter()
                    .map(|(c, e)| {
                        let pos = t.col(c).ok_or_else(|| DbError::NoSuchColumn(c.clone()))?;
                        Ok((pos, resolve(e, params)?))
                    })
                    .collect::<Result<_, DbError>>()?;
                let (slots, work) = candidate_slots(t, filter, params)?;
                let mut hits = Vec::new();
                for slot in slots {
                    let Some(row) = t.row(slot) else { continue };
                    if matches(t, row, filter, params)? {
                        hits.push(slot);
                    }
                }
                let t = self.tables.get_mut(table).expect("checked above");
                for &slot in &hits {
                    for (col, v) in &set_cols {
                        t.set_cell(slot, *col, v.clone());
                    }
                }
                Ok(QueryResult {
                    affected: hits.len(),
                    work,
                    ..QueryResult::default()
                })
            }
            Stmt::Delete { table, filter } => {
                let t = self
                    .tables
                    .get(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let (slots, work) = candidate_slots(t, filter, params)?;
                let mut hits = Vec::new();
                for slot in slots {
                    let Some(row) = t.row(slot) else { continue };
                    if matches(t, row, filter, params)? {
                        hits.push(slot);
                    }
                }
                let t = self.tables.get_mut(table).expect("checked above");
                for &slot in &hits {
                    t.delete(slot);
                }
                Ok(QueryResult {
                    affected: hits.len(),
                    work,
                    ..QueryResult::default()
                })
            }
        }
    }

    /// The table names currently defined.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// A table by name (read-only).
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Approximate heap usage (for Figure 6-style accounting of the DB).
    pub fn approx_bytes(&self) -> usize {
        self.tables.values().map(Table::approx_bytes).sum()
    }

    /// Creates a table directly (snapshot restore path; bypasses SQL).
    pub(crate) fn create_table_raw(&mut self, name: &str, columns: Vec<String>) {
        self.tables.insert(name.to_string(), Table::new(columns));
    }

    /// Inserts a row directly (snapshot restore path; bypasses SQL).
    pub(crate) fn insert_raw(&mut self, name: &str, row: Row) {
        if let Some(t) = self.tables.get_mut(name) {
            t.insert(row);
        }
    }
}

fn resolve(expr: &Expr, params: &[SqlValue]) -> Result<SqlValue, DbError> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Param(i) => params.get(*i).cloned().ok_or(DbError::MissingParam(*i)),
    }
}

/// Chooses the scan strategy: if some equality conjunct has a hash index,
/// probe it; otherwise scan everything. Returns candidate slots plus the
/// work estimate (slots examined).
fn candidate_slots(
    t: &Table,
    filter: &Where,
    params: &[SqlValue],
) -> Result<(Vec<usize>, u64), DbError> {
    for c in &filter.conjuncts {
        if c.op == crate::ast::CmpOp::Eq {
            if let Some(col) = t.col(&c.column) {
                if let Some(idx) = t.index(col) {
                    let needle = resolve(&c.rhs, params)?;
                    let slots = idx.lookup(&needle).to_vec();
                    let work = (slots.len() as u64).max(1);
                    return Ok((slots, work));
                }
            } else {
                return Err(DbError::NoSuchColumn(c.column.clone()));
            }
        }
    }
    let slots: Vec<usize> = t.iter().map(|(slot, _)| slot).collect();
    let work = (slots.len() as u64).max(1);
    Ok((slots, work))
}

fn matches(t: &Table, row: &Row, filter: &Where, params: &[SqlValue]) -> Result<bool, DbError> {
    for c in &filter.conjuncts {
        let col = t
            .col(&c.column)
            .ok_or_else(|| DbError::NoSuchColumn(c.column.clone()))?;
        let rhs = resolve(&c.rhs, params)?;
        if !c.op.eval(&row[col], &rhs) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.run("CREATE TABLE users (name, pw, uid)").unwrap();
        db.run("INSERT INTO users VALUES ('alice', 'pw-a', 1)")
            .unwrap();
        db.run("INSERT INTO users VALUES ('bob', 'pw-b', 2)")
            .unwrap();
        db.run("INSERT INTO users VALUES ('carol', 'pw-c', 3)")
            .unwrap();
        db
    }

    #[test]
    fn select_where() {
        let mut d = db();
        let r = d.run("SELECT uid FROM users WHERE name = 'bob'").unwrap();
        assert_eq!(r.rows, vec![vec![SqlValue::Int(2)]]);
        assert_eq!(r.columns, vec!["uid"]);
        let r = d.run("SELECT name FROM users WHERE uid >= 2").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn select_star_and_params() {
        let mut d = db();
        let r = d
            .run_with_params(
                "SELECT * FROM users WHERE name = ? AND pw = ?",
                &["alice".into(), "pw-a".into()],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.columns, vec!["name", "pw", "uid"]);
        // Wrong password: no rows.
        let r = d
            .run_with_params(
                "SELECT * FROM users WHERE name = ? AND pw = ?",
                &["alice".into(), "wrong".into()],
            )
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn update_and_delete() {
        let mut d = db();
        let r = d
            .run("UPDATE users SET pw = 'new' WHERE name = 'alice'")
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = d.run("SELECT pw FROM users WHERE name = 'alice'").unwrap();
        assert_eq!(r.rows[0][0], SqlValue::Text("new".into()));
        let r = d.run("DELETE FROM users WHERE uid > 1").unwrap();
        assert_eq!(r.affected, 2);
        assert_eq!(d.table("users").unwrap().len(), 1);
    }

    #[test]
    fn insert_with_columns_fills_nulls() {
        let mut d = db();
        d.run("INSERT INTO users (name) VALUES ('dave')").unwrap();
        let r = d
            .run("SELECT pw, uid FROM users WHERE name = 'dave'")
            .unwrap();
        assert_eq!(r.rows[0], vec![SqlValue::Null, SqlValue::Null]);
    }

    #[test]
    fn index_reduces_work() {
        let mut d = Database::new();
        d.run("CREATE TABLE big (k, v)").unwrap();
        for i in 0..1000 {
            d.run_with_params(
                "INSERT INTO big VALUES (?, ?)",
                &[SqlValue::Text(format!("k{i}")), SqlValue::Int(i)],
            )
            .unwrap();
        }
        let scan = d
            .run_with_params("SELECT v FROM big WHERE k = ?", &["k500".into()])
            .unwrap();
        assert_eq!(scan.work, 1000, "full scan without index");
        d.run("CREATE INDEX ON big (k)").unwrap();
        let probe = d
            .run_with_params("SELECT v FROM big WHERE k = ?", &["k500".into()])
            .unwrap();
        assert_eq!(probe.rows, scan.rows);
        assert_eq!(probe.work, 1, "index probe");
    }

    #[test]
    fn errors() {
        let mut d = db();
        assert!(matches!(
            d.run("SELECT * FROM nope"),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            d.run("SELECT zip FROM users"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            d.run("CREATE TABLE users (x)"),
            Err(DbError::TableExists(_))
        ));
        assert!(matches!(
            d.run("INSERT INTO users VALUES (1)"),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            d.run("SELECT * FROM users WHERE name = ?"),
            Err(DbError::MissingParam(0))
        ));
        assert!(matches!(d.run("BOGUS"), Err(DbError::Parse(_))));
    }

    #[test]
    fn update_via_index_path() {
        let mut d = db();
        d.run("CREATE INDEX ON users (name)").unwrap();
        let r = d
            .run("UPDATE users SET uid = 9 WHERE name = 'carol'")
            .unwrap();
        assert_eq!(r.affected, 1);
        assert_eq!(r.work, 1);
        // Index reflects cell updates.
        let r = d.run("DELETE FROM users WHERE name = 'carol'").unwrap();
        assert_eq!(r.affected, 1);
        let r = d.run("SELECT * FROM users WHERE name = 'carol'").unwrap();
        assert!(r.rows.is_empty());
    }
}
