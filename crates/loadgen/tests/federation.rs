//! The Baseline scenario federated: the same open-loop engine over a
//! multi-kernel cluster, with the single-kernel run as the semantic pin.
//!
//! The CI matrix sets `ASBESTOS_KERNELS` to sweep the kernel count; a
//! bare `cargo test` runs the federated cases at two kernels.

use asbestos_loadgen::{kernels_from_env, run_federated, run_scenario, Baseline};

/// Kernel count under test: the `ASBESTOS_KERNELS` knob, floored at 2 so
/// a bare run still exercises the wire.
fn kernels() -> usize {
    kernels_from_env().max(2)
}

fn baseline(shards: usize, lanes: usize) -> Baseline {
    Baseline {
        users: 32,
        requests: 192,
        shards,
        lanes,
    }
}

#[test]
fn federated_baseline_serves_every_request() {
    let fed = run_federated(&mut baseline(1, 1), kernels(), 0xBA5E);
    let r = &fed.report;
    // The Baseline invariants, across the wire.
    assert_eq!(r.completed, r.issued, "federated baseline lost requests");
    assert_eq!(r.retries, 0, "sub-capacity traffic must never shed");
    assert_eq!(r.aborted, 0);
    assert!(r.goodput_rps > 0.0);
    // And the traffic genuinely federated: every request/response pair
    // crossed the switch, as frames with bytes on real sockets.
    assert!(
        fed.forwarded as usize >= r.issued,
        "requests never crossed the switch ({} forwards for {} requests)",
        fed.forwarded,
        r.issued
    );
    assert!(fed.wire_frames > 0 && fed.wire_bytes > 0);
}

#[test]
fn federated_baseline_is_deterministic() {
    let a = run_federated(&mut baseline(1, 1), kernels(), 0xF00D);
    let b = run_federated(&mut baseline(1, 1), kernels(), 0xF00D);
    assert_eq!(a.report.completed, b.report.completed);
    assert_eq!(a.report.fresh.p50_us, b.report.fresh.p50_us);
    assert_eq!(a.report.fresh.p99_us, b.report.fresh.p99_us);
    assert_eq!(a.report.fresh.p999_us, b.report.fresh.p999_us);
    assert_eq!(a.report.goodput_rps, b.report.goodput_rps);
    assert_eq!(a.report.elapsed_us, b.report.elapsed_us);
    assert_eq!(a.wire_frames, b.wire_frames);
    assert_eq!(a.wire_bytes, b.wire_bytes);
}

/// Slot 0 of 1 is bit-for-bit the ordinary kernel constructor, and the
/// federated engine replays the identical schedule — so a one-kernel
/// federation must reproduce the plain engine's numbers exactly. This is
/// the loadgen-level echo of the cluster crate's golden verdict pin.
#[test]
fn one_kernel_federation_matches_the_plain_engine() {
    let plain = run_scenario(&mut baseline(1, 1), 0x0501);
    let fed = run_federated(&mut baseline(1, 1), 1, 0x0501);
    let r = &fed.report;
    assert_eq!(r.issued, plain.issued);
    assert_eq!(r.completed, plain.completed);
    assert_eq!(r.fresh.p50_us, plain.fresh.p50_us);
    assert_eq!(r.fresh.p99_us, plain.fresh.p99_us);
    assert_eq!(r.fresh.max_us, plain.fresh.max_us);
    assert_eq!(r.elapsed_us, plain.elapsed_us);
    assert_eq!(r.goodput_rps, plain.goodput_rps);
    // Nothing to federate: the switch relayed no cross-kernel traffic.
    assert_eq!(fed.forwarded, 0);
}

/// The federated world scales the deployment grid too: multi-shard
/// kernels mint handles from disjoint cluster-wide cipher lanes while
/// the front end fans requests across lanes.
#[test]
fn federated_baseline_runs_sharded() {
    let fed = run_federated(&mut baseline(2, 2), kernels(), 0x5A4D);
    let r = &fed.report;
    assert_eq!(
        r.completed, r.issued,
        "sharded federated baseline lost requests"
    );
    assert_eq!(r.retries, 0);
    assert!(fed.forwarded as usize >= r.issued);
}
