//! The workload generators under the microscope: the Zipf sampler and
//! the open-loop arrival schedules must be deterministic under a seed
//! (the latency gates compare exact percentiles across runs), correctly
//! skew-ranked at any population size — including the million-rank
//! headline scale — and honest about their configured arrival rate.

use asbestos_kernel::CYCLES_PER_SEC;
use asbestos_loadgen::{OpenLoopSchedule, ZipfSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Deterministic-seed goldens: these exact sequences are load-bearing —
// a sampler or RNG change shifts every scenario's user sequence, which
// invalidates the committed BENCH_latency.json percentiles. Changing
// them intentionally means re-running the full bench and committing the
// refreshed JSON alongside.
// ---------------------------------------------------------------------

#[test]
fn zipf_golden_sequence_is_stable() {
    let z = ZipfSampler::new(1000, 1.1);
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let got: Vec<usize> = (0..16).map(|_| z.sample(&mut rng)).collect();
    assert_eq!(got, [0, 3, 4, 7, 0, 4, 0, 0, 221, 1, 3, 5, 0, 0, 45, 27]);
}

#[test]
fn poisson_golden_schedule_is_stable() {
    let sched = OpenLoopSchedule::poisson(8, 2000.0, 0xA771);
    assert_eq!(
        sched.due(),
        [1683834, 1930826, 2737696, 3777904, 4952898, 6402963, 7164275, 9269696]
    );
}

#[test]
fn same_seed_same_draws_different_seed_different_draws() {
    let z = ZipfSampler::new(10_000, 1.1);
    let draw = |seed: u64| -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..64).map(|_| z.sample(&mut rng)).collect()
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43));

    let s = |seed: u64| OpenLoopSchedule::poisson(64, 5000.0, seed).due().to_vec();
    assert_eq!(s(7), s(7));
    assert_ne!(s(7), s(8));
}

// ---------------------------------------------------------------------
// Million-rank scale: the harness's headline population must construct
// quickly, sample in range, and stay properly heavy-tailed.
// ---------------------------------------------------------------------

#[test]
fn million_rank_population_samples_and_skews() {
    let z = ZipfSampler::new(1_000_000, 1.1);
    assert_eq!(z.population(), 1_000_000);

    // Golden head draws at the full scale.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let head: Vec<usize> = (0..8).map(|_| z.sample(&mut rng)).collect();
    assert_eq!(head, [0, 10, 14, 33, 0, 15, 1, 0]);

    // Every draw lands in range, and the head ranks dominate: under
    // Zipf(1.1) over a million ranks the top 1000 carry well over a
    // third of the mass.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut top1000 = 0usize;
    for _ in 0..20_000 {
        let u = z.sample(&mut rng);
        assert!(u < 1_000_000);
        if u < 1000 {
            top1000 += 1;
        }
    }
    assert!(
        top1000 > 20_000 / 3,
        "top 1000 of 1M ranks drew only {top1000}/20000"
    );

    // The exact shares agree: rank 0 outweighs the deep tail by orders
    // of magnitude.
    assert!(z.share(0) > 100_000.0 * z.share(999_999));
}

// ---------------------------------------------------------------------
// Property tests: skew-ranking and mass conservation at arbitrary
// populations and skews.
// ---------------------------------------------------------------------

proptest! {
    /// Shares are non-increasing in rank for any population and skew:
    /// rank k must never be less likely than rank k+1. (Skews arrive as
    /// millis — the vendored proptest has integer strategies only.)
    #[test]
    fn shares_are_rank_monotone(n in 2usize..400, s_milli in 0u32..2500) {
        let s = s_milli as f64 / 1000.0;
        let z = ZipfSampler::new(n, s);
        for k in 0..n - 1 {
            prop_assert!(
                z.share(k) >= z.share(k + 1) - 1e-12,
                "share({k}) = {} < share({}) = {} at n={n} s={s}",
                z.share(k), k + 1, z.share(k + 1)
            );
        }
    }

    /// The shares are a probability distribution: they sum to 1.
    #[test]
    fn shares_sum_to_one(n in 1usize..400, s_milli in 0u32..2500) {
        let s = s_milli as f64 / 1000.0;
        let z = ZipfSampler::new(n, s);
        let total: f64 = (0..n).map(|k| z.share(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass {total} at n={n} s={s}");
    }

    /// Raising the skew concentrates the head: the rank-0 share is
    /// non-decreasing in s.
    #[test]
    fn higher_skew_concentrates_the_head(n in 2usize..400, s_milli in 0u32..2000) {
        let s = s_milli as f64 / 1000.0;
        let lo = ZipfSampler::new(n, s);
        let hi = ZipfSampler::new(n, s + 0.25);
        prop_assert!(hi.share(0) >= lo.share(0) - 1e-12);
    }

    /// Draws always land in range, at any population and skew.
    #[test]
    fn samples_stay_in_range(n in 1usize..400, s_milli in 0u32..2500, seed in any::<u64>()) {
        let s = s_milli as f64 / 1000.0;
        let z = ZipfSampler::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Poisson schedules are monotone and hit their configured rate
    /// within sampling tolerance.
    #[test]
    fn poisson_schedules_are_monotone_and_honest(
        rate_int in 500u32..50_000,
        seed in any::<u64>(),
    ) {
        let rate = rate_int as f64;
        let sched = OpenLoopSchedule::poisson(4_000, rate, seed);
        prop_assert!(sched.due().windows(2).all(|w| w[0] <= w[1]));
        let want = CYCLES_PER_SEC as f64 / rate;
        let got = sched.mean_interarrival_cycles();
        prop_assert!(
            (got - want).abs() / want < 0.1,
            "mean gap {got} vs configured {want} at rate {rate}"
        );
    }
}
