//! The reboot thundering herd, end to end: boot 1 builds every session
//! against a durable store, the world reboots, and the whole population
//! re-authenticates in two back-to-back storm rounds. The scenario's own
//! `check` hook asserts the §5.1/§7.5 recovery contract:
//!
//! - recovered credentials still gate logins (a wrong password is
//!   rejected 403 before any post-reboot session exists);
//! - no boot-1 `⋆`-handle of idd's is observed after the reboot (handles
//!   are per-boot, §5.1);
//! - round-1 echoes are empty (no session survived the reboot);
//! - every round-2 echo is exactly that user's round-1 write — per-user
//!   FIFO held through login, session fork, and both storm rounds.

use asbestos_loadgen::{run_scenario, LoginStorm};

#[test]
fn login_storm_after_reboot_single_shard() {
    let report = run_scenario(&mut LoginStorm::new(24, 1, 1), 0x5708);
    assert_eq!(report.completed, report.issued);
    assert_eq!(report.outstanding, 0);
}

#[test]
fn login_storm_after_reboot_sharded_lanes() {
    let report = run_scenario(&mut LoginStorm::new(24, 4, 4), 0x5709);
    assert_eq!(report.completed, report.issued);
    assert_eq!(report.outstanding, 0);
    // The storm actually spread across the sharded deployment.
    assert_eq!(report.shard_elapsed_us.len(), 4);
}
