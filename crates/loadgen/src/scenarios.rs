//! The stock scenarios the latency bench and the stress tests run.
//!
//! Each is a small struct implementing [`Scenario`]: the deployment shape
//! lives in `config()`, the workload in `op()`, and the invariants in
//! `check()`. Four of them feed `BENCH_latency.json` (baseline, Zipf
//! churn, login storm, sustained flood); the lane-overflow scenario is a
//! stress test, not a latency row — its interesting output is surviving,
//! not a percentile.

use asbestos_kernel::DEFAULT_PORT_QUEUE_LIMIT;
use rand::rngs::StdRng;
use rand::Rng;

use crate::metrics::ScenarioReport;
use crate::scenario::{Op, Scenario, ScenarioConfig, ServiceKind, World};
use crate::zipf::ZipfSampler;

// ---------------------------------------------------------------------
// Baseline: uniform sub-capacity traffic.
// ---------------------------------------------------------------------

/// Round-robin store traffic at a sub-capacity rate: the latency floor
/// every other scenario is read against, and the series the CI gate pins.
pub struct Baseline {
    /// User population.
    pub users: usize,
    /// Arrivals in the window.
    pub requests: usize,
    /// Kernel shards.
    pub shards: usize,
    /// netd lanes.
    pub lanes: usize,
}

impl Scenario for Baseline {
    fn name(&self) -> String {
        "baseline".into()
    }

    fn config(&self) -> ScenarioConfig {
        ScenarioConfig::new(self.users, self.requests).deployment(self.shards, self.lanes)
    }

    fn op(&mut self, seq: usize, _rng: &mut StdRng) -> Op {
        let user = seq % self.users;
        Op::request("store", user, &[("data", &format!("b{seq}"))])
    }

    fn check(&mut self, _world: &mut World, report: &ScenarioReport) {
        assert_eq!(report.completed, report.issued, "baseline lost requests");
        assert_eq!(report.retries, 0, "sub-capacity traffic must never shed");
    }
}

// ---------------------------------------------------------------------
// Zipf churn: heavy-tailed users, mixed traffic, disconnects.
// ---------------------------------------------------------------------

/// The heavy-tailed production mix: users drawn Zipf(`skew`), a blend of
/// session writes/reads, DB profile writes/reads, logout churn, and
/// mid-stream disconnects. Head users' sessions churn constantly; tail
/// users log in cold — both paths stay in the measured window.
pub struct ZipfChurn {
    /// User population (ranks; 0 is heaviest).
    pub users: usize,
    /// Arrivals in the window.
    pub requests: usize,
    /// Zipf skew (≈1.0 is classic Web traffic).
    pub skew: f64,
    /// Kernel shards.
    pub shards: usize,
    /// netd lanes.
    pub lanes: usize,
    zipf: Option<ZipfSampler>,
}

impl ZipfChurn {
    /// A churn scenario over `users` ranks at the given skew.
    pub fn new(users: usize, requests: usize, skew: f64, shards: usize, lanes: usize) -> ZipfChurn {
        ZipfChurn {
            users,
            requests,
            skew,
            shards,
            lanes,
            zipf: None,
        }
    }
}

impl Scenario for ZipfChurn {
    fn name(&self) -> String {
        "zipf-churn".into()
    }

    fn config(&self) -> ScenarioConfig {
        ScenarioConfig::new(self.users, self.requests)
            .deployment(self.shards, self.lanes)
            .with_service(ServiceKind::Profile)
    }

    fn setup(&mut self, _world: &mut World) {
        self.zipf = Some(ZipfSampler::new(self.users, self.skew));
    }

    fn op(&mut self, seq: usize, rng: &mut StdRng) -> Op {
        let user = self.zipf.as_ref().expect("setup ran").sample(rng);
        match rng.gen_range(0..100u32) {
            // Session writes dominate, like the §9 store workload.
            0..=37 => Op::request("store", user, &[("data", &format!("z{seq}"))]),
            38..=59 => Op::request("store", user, &[]),
            60..=71 => Op::request("profile", user, &[("set", &format!("bio{seq}"))]),
            72..=83 => Op::request("profile", user, &[("get", &format!("u{user}"))]),
            // Logout churn: the session event process is torn down and the
            // next hit pays a cold login.
            84..=95 => Op::request("store", user, &[("logout", "1")]),
            // Mid-stream disconnect: the user closed the tab.
            _ => Op::Abort { user },
        }
    }

    fn check(&mut self, _world: &mut World, report: &ScenarioReport) {
        assert!(
            report.aborted > 0,
            "the churn mix must exercise disconnects"
        );
        assert_eq!(
            report.completed + report.aborted,
            report.issued,
            "zipf churn lost requests"
        );
    }
}

// ---------------------------------------------------------------------
// Login storm: reboot, then everyone re-authenticates at once.
// ---------------------------------------------------------------------

/// The thundering herd after [`crate::scenario::World::reboot`]: boot 1
/// builds every session against a durable store; the world reboots; then
/// the whole population re-authenticates in two back-to-back storm rounds
/// with a drain barrier between them. Checks, per §5.1 and §7.5:
///
/// - recovered credentials still gate logins (wrong password → 403,
///   probed before any post-reboot session exists);
/// - no boot-1 `⋆`-handle of idd's is observed after the reboot;
/// - round-1 echoes are empty (no session survived the reboot);
/// - every round-2 echo is that user's round-1 write — per-user FIFO
///   through login, session fork, and both storm rounds.
pub struct LoginStorm {
    /// User population (all of it re-authenticates).
    pub users: usize,
    /// Kernel shards.
    pub shards: usize,
    /// netd lanes.
    pub lanes: usize,
    boot1_handles: Vec<u64>,
}

impl LoginStorm {
    /// A storm over `users` accounts.
    pub fn new(users: usize, shards: usize, lanes: usize) -> LoginStorm {
        LoginStorm {
            users,
            shards,
            lanes,
            boot1_handles: Vec::new(),
        }
    }
}

impl Scenario for LoginStorm {
    fn name(&self) -> String {
        "login-storm".into()
    }

    fn config(&self) -> ScenarioConfig {
        // Two rounds: everyone logs in, barrier, everyone hits again.
        // The storm arrives far faster than steady state — that is the
        // point.
        ScenarioConfig::new(self.users, self.users * 2)
            .deployment(self.shards, self.lanes)
            .durable()
            .rate(5_000.0)
    }

    fn setup(&mut self, world: &mut World) {
        // Boot 1: build every session, then go down cleanly.
        for u in 0..self.users {
            let (status, _) = world.request_sync("store", u, &[("data", &format!("s0-u{u}"))]);
            assert_eq!(status, 200, "boot-1 session build failed for u{u}");
        }
        self.boot1_handles = world.idd_star_handles();
        assert!(!self.boot1_handles.is_empty());
        world.reboot();
        // Recovered credentials still gate: probe *before* any real
        // login, since a cached session would skip re-authentication.
        let (status, _) = world
            .client
            .request_sync(&mut world.kernel, "store", "u0", "wrong-password", &[])
            .expect("probe responds");
        assert_eq!(
            status, 403,
            "recovered credential table must reject a bad password"
        );
    }

    fn before_arrival(&mut self, world: &mut World, seq: usize) {
        // Barrier between the rounds: round 2 must observe round 1, so
        // the FIFO check below is about per-user ordering, not luck.
        if seq == self.users {
            world.drain();
        }
    }

    fn op(&mut self, seq: usize, _rng: &mut StdRng) -> Op {
        if seq < self.users {
            let u = seq;
            Op::Request {
                service: "store",
                user: u,
                extra: vec![("data".into(), format!("s1-u{u}"))],
            }
        } else {
            let u = seq - self.users;
            Op::Request {
                service: "store",
                user: u,
                extra: vec![("data".into(), format!("s2-u{u}"))],
            }
        }
    }

    fn check(&mut self, world: &mut World, report: &ScenarioReport) {
        assert_eq!(report.completed, report.issued, "storm requests were lost");
        // §5.1 across boots: nothing idd holds now existed in boot 1.
        let boot2 = world.idd_star_handles();
        assert!(!boot2.is_empty());
        assert!(
            boot2.iter().all(|h| !self.boot1_handles.contains(h)),
            "a boot-1 handle was observed after the reboot"
        );
        for issued in world.issued.clone() {
            let (status, body) = world.response(issued.idx).expect("storm request completed");
            assert_eq!(status, 200);
            if issued.seq < self.users {
                // Round 1 echoes the pre-request state: nothing — boot
                // 1's session died with boot 1.
                assert!(
                    body.is_empty(),
                    "u{} saw boot-1 session state after the reboot: {:?}",
                    issued.user,
                    String::from_utf8_lossy(&body[..24.min(body.len())])
                );
            } else {
                // Round 2 echoes exactly that user's round-1 write.
                let want = format!("s1-u{}", issued.user);
                assert!(
                    body.starts_with(want.as_bytes()),
                    "per-user FIFO broke for u{}: echo {:?}, expected {want:?}",
                    issued.user,
                    String::from_utf8_lossy(&body[..24.min(body.len())])
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sustained flood: overload control under an attacker.
// ---------------------------------------------------------------------

/// One attacker pours connections at `flood_factor`× the victim's rate
/// into a deployment whose edge has been made deliberately touchy (shed
/// threshold 2, backpressure armed). The victim's requests must all be
/// answered 200; the edge must visibly defer or shed; and the retried
/// latency series — not the fresh one — absorbs the refusal round-trips.
pub struct SustainedFlood {
    /// Arrivals in the window.
    pub requests: usize,
    /// Attacker arrivals per victim arrival.
    pub flood_factor: usize,
    /// Kernel shards.
    pub shards: usize,
    /// netd lanes.
    pub lanes: usize,
}

impl Scenario for SustainedFlood {
    fn name(&self) -> String {
        "sustained-flood".into()
    }

    fn config(&self) -> ScenarioConfig {
        ScenarioConfig::new(2, self.requests)
            .deployment(self.shards, self.lanes)
            .with_backpressure()
            .rate(20_000.0)
    }

    fn setup(&mut self, world: &mut World) {
        world.kernel.set_shed_threshold(2);
    }

    fn op(&mut self, seq: usize, _rng: &mut StdRng) -> Op {
        if seq.is_multiple_of(self.flood_factor + 1) {
            // The victim (user 0).
            Op::request("store", 0, &[("data", &format!("v{seq}"))])
        } else {
            // The attacker (user 1).
            Op::request("store", 1, &[("data", "flood")])
        }
    }

    fn quiesce(&mut self, world: &mut World) {
        // Flood over: relax the edge so everything outstanding can drain
        // (shed requests are retried by the engine's drain loop).
        world.kernel.set_shed_threshold(usize::MAX);
    }

    fn check(&mut self, world: &mut World, report: &ScenarioReport) {
        let (deferred, shed) = world.shed_totals();
        assert!(
            deferred + shed > 0,
            "a {}x flood against shed threshold 2 never touched the edge",
            self.flood_factor
        );
        assert_eq!(
            report.completed, report.issued,
            "flood traffic never drained"
        );
        // Every victim request was answered 200 despite the flood.
        for issued in world.issued.clone() {
            if issued.user == 0 {
                let (status, _) = world.response(issued.idx).expect("victim completed");
                assert_eq!(
                    status, 200,
                    "flood changed the victim's verdict (seq {})",
                    issued.seq
                );
            }
        }
        assert_eq!(world.kernel.queue_len(), 0, "recovery left work parked");
        // Steady state: a fresh probe is served first try.
        let (status, _) = world.request_sync("store", 0, &[("data", "post")]);
        assert_eq!(status, 200);
    }
}

// ---------------------------------------------------------------------
// Lane overflow + mid-stream closes (stress, not a latency row).
// ---------------------------------------------------------------------

/// Four phases against a shards×lanes deployment: a clean warm burst, a
/// round of mid-stream client disconnects, a connection burst into a
/// 2-deep port queue (the demux notify port overflows and *drops*, by
/// design), and recovery once the bound is lifted. Survival is the
/// assertion: no deadlock, drops accounted, ordinary service afterwards.
pub struct LaneOverflowChurn {
    /// User population.
    pub users: usize,
    /// Arrivals per phase.
    pub phase_len: usize,
    /// Kernel shards.
    pub shards: usize,
    /// netd lanes.
    pub lanes: usize,
    drops_before_clamp: u64,
}

impl LaneOverflowChurn {
    /// A four-phase overflow run.
    pub fn new(users: usize, phase_len: usize, shards: usize, lanes: usize) -> LaneOverflowChurn {
        LaneOverflowChurn {
            users,
            phase_len,
            shards,
            lanes,
            drops_before_clamp: 0,
        }
    }
}

impl Scenario for LaneOverflowChurn {
    fn name(&self) -> String {
        "lane-overflow-churn".into()
    }

    fn config(&self) -> ScenarioConfig {
        ScenarioConfig::new(self.users, self.phase_len * 4)
            .deployment(self.shards, self.lanes)
            .rate(4_000.0)
            .allow_failures()
    }

    fn before_arrival(&mut self, world: &mut World, seq: usize) {
        if seq == self.phase_len * 2 {
            // Let the disconnect phase settle, then clamp the per-port
            // bound so the burst overflows the demux's notify port.
            world.drain();
            self.drops_before_clamp = world.kernel.stats().dropped_port_queue_full;
            world.kernel.set_port_queue_limit(2);
            // The burst must land back-to-back — pacing through the
            // open-loop schedule would let the kernel drain the 2-deep
            // queue between arrivals and nothing would ever overflow. So
            // issue the whole phase here with no kernel steps in between;
            // the phase's paced slots become idle.
            for i in 0..self.phase_len {
                let burst_seq = self.phase_len * 2 + i;
                world.request(
                    "store",
                    burst_seq % self.users,
                    &[("data", "burst")],
                    burst_seq,
                );
            }
        } else if seq == self.phase_len * 3 {
            // Let the burst overflow (drops, not deadlock), then lift
            // the bound for the recovery phase.
            world.kernel.run();
            world.poll_lanes();
            let drops = world.kernel.stats().dropped_port_queue_full - self.drops_before_clamp;
            // On one shard the scheduler interleaves strictly — demux
            // consumes each NewConn before netd posts the next, so a
            // 2-deep mailbox never fills. Only the cross-shard route
            // (lanes batching notifications into the demux shard) can
            // actually overflow; assert the drop count there only.
            if self.shards > 1 {
                assert!(
                    drops > 0,
                    "a {}-connection burst against a 2-deep port bound must overflow",
                    self.phase_len
                );
            }
            assert_eq!(
                world.kernel.queue_len(),
                0,
                "overflow left the kernel wedged"
            );
            world.kernel.set_port_queue_limit(DEFAULT_PORT_QUEUE_LIMIT);
        }
    }

    fn op(&mut self, seq: usize, rng: &mut StdRng) -> Op {
        let user = rng.gen_range(0..self.users);
        match seq / self.phase_len {
            0 => Op::request("store", user, &[("data", "warm")]),
            // Issue, then kill every other one mid-stream.
            1 => {
                if seq.is_multiple_of(2) {
                    Op::request("store", user, &[("data", "doomed")])
                } else {
                    Op::Abort { user }
                }
            }
            // Phase 2 (burst) is issued all at once from `before_arrival`;
            // its paced arrival slots only advance the clock.
            2 => Op::Idle,
            _ => Op::request("store", user, &[("data", "recovered")]),
        }
    }

    fn check(&mut self, world: &mut World, report: &ScenarioReport) {
        assert!(
            report.aborted > 0,
            "phase 2 must exercise mid-stream closes"
        );
        if self.lanes > 1 {
            let spread = world.client.driver.lane_accepts().to_vec();
            assert!(
                spread.iter().filter(|&&n| n > 0).count() >= 2,
                "RSS demux used one lane for every connection: {spread:?}"
            );
        }
        assert_eq!(world.kernel.queue_len(), 0, "run left work queued");
        // Every recovery-phase request was served despite the carnage.
        for issued in world.issued.clone() {
            if issued.seq >= self.phase_len * 3 {
                let (status, _) = world.response(issued.idx).unwrap_or_else(|| {
                    panic!("recovery request seq {} never completed", issued.seq)
                });
                assert_eq!(status, 200, "user u{} did not recover", issued.user);
            }
        }
    }
}
