//! Open-loop arrival schedules in virtual time.
//!
//! The paper's load generator (§9) is a separate Linux box firing requests
//! at the server; crucially, real clients do not wait for each other — new
//! arrivals keep coming whether or not earlier requests have completed.
//! That is an *open* loop, and it is what makes tail latency honest: a
//! closed loop self-throttles under overload and hides queueing delay.
//!
//! A schedule here is a precomputed list of arrival deadlines in virtual
//! cycles (2.8 GHz model time, [`CYCLES_PER_SEC`]). The scenario engine
//! steps the kernel until the busiest shard's clock passes each deadline,
//! then injects the next connection — arrivals never wait on completions.
//! One deliberate semantic of virtual time: when the kernel goes idle the
//! clock stops, so an under-loaded schedule compresses (the server sees
//! back-to-back arrivals instead of dead air). Queueing behaviour under
//! load — the part that shapes p99/p999 — is preserved exactly.

use asbestos_kernel::CYCLES_PER_SEC;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A precomputed open-loop arrival schedule.
#[derive(Clone, Debug)]
pub struct OpenLoopSchedule {
    due: Vec<u64>,
}

impl OpenLoopSchedule {
    /// Poisson arrivals at `rate_rps` requests per virtual second:
    /// exponential interarrival gaps drawn by CDF inversion from a seeded
    /// RNG, so the same seed always yields the same schedule.
    pub fn poisson(n: usize, rate_rps: f64, seed: u64) -> OpenLoopSchedule {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = CYCLES_PER_SEC as f64 / rate_rps;
        let mut t = 0.0f64;
        let mut due = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen_range(0.0..1.0);
            // Inverse-CDF of Exp(1/mean); 1-u keeps the log argument in
            // (0, 1] for u in [0, 1).
            t += -mean * (1.0 - u).ln();
            due.push(t as u64);
        }
        OpenLoopSchedule { due }
    }

    /// Evenly spaced arrivals at `rate_rps` (a paced load generator).
    pub fn uniform(n: usize, rate_rps: f64) -> OpenLoopSchedule {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        let gap = CYCLES_PER_SEC as f64 / rate_rps;
        let due = (1..=n).map(|i| (i as f64 * gap) as u64).collect();
        OpenLoopSchedule { due }
    }

    /// Arrival deadlines in virtual cycles, ascending.
    pub fn due(&self) -> &[u64] {
        &self.due
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.due.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.due.is_empty()
    }

    /// Mean interarrival gap of the realized schedule, in cycles.
    pub fn mean_interarrival_cycles(&self) -> f64 {
        match self.due.last() {
            Some(&last) if self.due.len() > 1 => last as f64 / self.due.len() as f64,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_monotone() {
        let s = OpenLoopSchedule::poisson(500, 1000.0, 42);
        assert!(s.due().windows(2).all(|w| w[0] <= w[1]));
        let u = OpenLoopSchedule::uniform(500, 1000.0);
        assert!(u.due().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let rate = 2000.0;
        let s = OpenLoopSchedule::poisson(20_000, rate, 7);
        let want = CYCLES_PER_SEC as f64 / rate;
        let got = s.mean_interarrival_cycles();
        assert!(
            (got - want).abs() / want < 0.05,
            "mean gap {got} vs expected {want}"
        );
    }
}
