//! Federated scenario runs: the open-loop engine stretched over a
//! [`Cluster`].
//!
//! [`ClusterWorld`] is [`World`](crate::scenario::World)'s shape over a
//! multi-kernel federation: the front end (netd lanes, demux, launcher)
//! lives on kernel 0, worker base processes on kernels `1..N`, and every
//! request/response crosses the switch as serialized `Forward` frames
//! with its labels in wire form. The arrival schedule, the pacing, the
//! polling cadence, and the latency accounting are the single-kernel
//! engine's, byte for byte — which is what makes the federated baseline
//! comparable against the plain one (and, at one kernel, *identical* to
//! it: slot 0 of 1 is bit-for-bit the ordinary kernel constructor).
//!
//! [`run_federated`] drives any scenario whose hooks beyond
//! [`Scenario::op`] are world-independent (the stock
//! [`Baseline`](crate::scenarios::Baseline) qualifies); scenarios that
//! tune or inspect the single-kernel world in `setup`/`check` stay on
//! [`run_scenario`](crate::scenario::run_scenario). The kernel count
//! comes from the caller — or from the `ASBESTOS_KERNELS` knob via
//! [`kernels_from_env`], which is how the CI matrix exercises the
//! federated paths without a separate test binary.

use asbestos_cluster::{deploy_okws, Cluster};
use asbestos_kernel::knobs;
use asbestos_okws::{Okws, OkwsClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrival::OpenLoopSchedule;
use crate::metrics::ScenarioReport;
use crate::scenario::{Issued, Op, Scenario, ScenarioConfig, World, POLL_EVERY};

/// Kernel count for federated runs per the `ASBESTOS_KERNELS` knob;
/// unset (or unparsable, or zero) means a single kernel.
pub fn kernels_from_env() -> usize {
    knobs::positive(knobs::KERNELS_ENV).unwrap_or(1)
}

/// A deployed OKWS federation a scenario runs against: [`World`]'s
/// surface over a [`Cluster`].
pub struct ClusterWorld {
    /// The federation under test (kernel 0 hosts the front end).
    pub cluster: Cluster,
    /// The running deployment (front-end handles live on kernel 0).
    pub okws: Okws,
    /// The HTTP client, attached to kernel 0's netd lanes.
    pub client: OkwsClient,
    /// The scenario's config (owned so hooks can consult it).
    pub cfg: ScenarioConfig,
    /// Requests issued in the measured window, in arrival order.
    pub issued: Vec<Issued>,
    /// The deployment seed.
    pub seed: u64,
    base_cycles: u64,
    base_shard_cycles: Vec<u64>,
}

impl ClusterWorld {
    /// Builds a `kernels`-member cluster and deploys OKWS across it per
    /// `cfg`: front end on kernel 0, workers round-robin on the rest.
    ///
    /// # Panics
    ///
    /// Panics on a durable config — federated worlds are volatile
    /// (reboot recovery stays a single-kernel concern).
    pub fn deploy(cfg: ScenarioConfig, kernels: usize, seed: u64) -> ClusterWorld {
        assert!(
            !cfg.durable,
            "federated worlds are volatile (no reboot support)"
        );
        let mut cluster = Cluster::new(seed, kernels, cfg.shards);
        if cfg.deterministic {
            for node in &mut cluster.nodes {
                node.kernel.set_worker_threads(1);
            }
        }
        let okws = deploy_okws(&mut cluster, World::okws_config(&cfg, None, true));
        let client = OkwsClient::new(&okws);
        let base_shard_cycles = vec![0; kernels * cfg.shards];
        ClusterWorld {
            cluster,
            okws,
            client,
            cfg,
            issued: Vec::new(),
            seed,
            base_cycles: 0,
            base_shard_cycles,
        }
    }

    /// Per-shard clocks of every kernel, concatenated in kernel order —
    /// the federation-wide balance signal.
    fn shard_cycles(&self) -> Vec<u64> {
        self.cluster
            .nodes
            .iter()
            .flat_map(|n| n.kernel.per_shard_elapsed_cycles())
            .collect()
    }

    /// Marks the start of the measured window: settles the federation,
    /// clears the request log, and snapshots every kernel's shard clocks.
    pub fn begin_measurement(&mut self) {
        self.cluster.run();
        self.client.driver.poll(&self.cluster.nodes[0].kernel);
        self.client.driver.reset_log();
        self.issued.clear();
        self.base_cycles = self.cluster.elapsed_cycles();
        self.base_shard_cycles = self.shard_cycles();
    }

    /// Steps the federation until its clock (the busiest kernel's
    /// busiest shard) reaches `due` cycles past the window start, or the
    /// whole cluster — kernels *and* wire — goes quiescent.
    pub fn advance_to(&mut self, due: u64) {
        let target = self.base_cycles + due;
        while self.cluster.elapsed_cycles() < target && self.cluster.step() > 0 {}
    }

    /// Issues a request as user rank `user` (on kernel 0's front end)
    /// and records it under `seq`.
    pub fn request(
        &mut self,
        service: &str,
        user: usize,
        extra: &[(&str, &str)],
        seq: usize,
    ) -> usize {
        let uname = format!("u{user}");
        let pw = format!("p{user}");
        let idx = self.client.request(
            &mut self.cluster.nodes[0].kernel,
            service,
            &uname,
            &pw,
            extra,
        );
        self.issued.push(Issued { seq, idx, user });
        idx
    }

    /// Kills `user`'s most recent in-flight request mid-stream. Returns
    /// whether one existed.
    pub fn abort_user(&mut self, user: usize) -> bool {
        for issued in self.issued.iter().rev() {
            if issued.user != user {
                continue;
            }
            let req = self.client.driver.request(issued.idx);
            if req.finished_at.is_none() && !req.aborted {
                self.client.driver.abort(issued.idx);
                return true;
            }
        }
        false
    }

    /// Runs the federation to quiescence, polling every lane and
    /// retrying shed requests, until everything completed or aborted or
    /// no forward progress is possible.
    pub fn drain(&mut self) {
        for _ in 0..128 {
            self.cluster.run();
            self.poll_lanes();
            let settled = self.client.driver.completed() + self.client.driver.aborted();
            if settled == self.client.driver.requests().len() {
                break;
            }
            if self
                .client
                .driver
                .retry_shed(&mut self.cluster.nodes[0].kernel)
                == 0
            {
                break;
            }
        }
        self.client.driver.reap_aborted();
    }

    /// Polls each netd lane's completions in turn (all lanes live on
    /// kernel 0).
    pub fn poll_lanes(&mut self) {
        for lane in 0..self.client.driver.lanes() {
            self.client
                .driver
                .poll_lane(&self.cluster.nodes[0].kernel, lane);
        }
    }

    /// Parses the response of window request `idx` as `(status, body)`.
    pub fn response(&self, idx: usize) -> Option<(u16, Vec<u8>)> {
        self.client.parse_response(idx)
    }

    /// Builds the report for the measured window. `shards` stays the
    /// per-kernel count (the deployment knob); the per-shard balance
    /// series spans every kernel's shards, so `shard_imbalance` is
    /// federation-wide.
    pub fn report(&self, scenario: &str) -> ScenarioReport {
        let driver = &self.client.driver;
        let shard_now = self.shard_cycles();
        let shard_cycles: Vec<u64> = shard_now
            .iter()
            .zip(&self.base_shard_cycles)
            .map(|(now, base)| now.saturating_sub(*base))
            .collect();
        ScenarioReport::from_window(
            scenario,
            self.cfg.shards,
            self.cfg.lanes,
            self.cfg.users,
            self.issued.len(),
            driver.completed(),
            driver.aborted(),
            driver.outstanding(),
            driver.total_retries(),
            self.cluster.elapsed_cycles() - self.base_cycles,
            &driver.latencies_us(),
            &driver.retried_latencies_us(),
            &shard_cycles,
            self.cluster
                .nodes
                .iter()
                .flat_map(|n| n.kernel.per_shard_queue_depth_hwm())
                .max()
                .unwrap_or(0),
        )
    }

    /// Asserts every non-aborted window request completed with HTTP 200.
    pub fn assert_all_ok(&self) {
        for issued in &self.issued {
            let req = self.client.driver.request(issued.idx);
            if req.aborted {
                continue;
            }
            let (status, _) = self.response(issued.idx).unwrap_or_else(|| {
                panic!(
                    "request seq {} (user u{}) never completed",
                    issued.seq, issued.user
                )
            });
            assert_eq!(
                status, 200,
                "request seq {} (user u{}) answered {status}",
                issued.seq, issued.user
            );
        }
    }
}

/// A federated run's results: the scenario report plus what the wire saw.
#[derive(Clone, Debug)]
pub struct FederatedReport {
    /// The measured window, same accounting as the single-kernel engine.
    pub report: ScenarioReport,
    /// Member kernels in the federation.
    pub kernels: usize,
    /// Frames every gateway put on the wire.
    pub wire_frames: u64,
    /// Bytes every gateway put on the wire.
    pub wire_bytes: u64,
    /// `Forward`s the switch relayed between kernels.
    pub forwarded: u64,
}

/// Deploys, drives, drains, reports — [`run_scenario`] over a cluster.
///
/// Only the world-independent hooks run: `config()` shapes the
/// deployment and `op()` produces each arrival; `setup`/`before_arrival`
/// /`quiesce`/`check` take the single-kernel [`World`] and are skipped.
///
/// [`run_scenario`]: crate::scenario::run_scenario
pub fn run_federated(scenario: &mut dyn Scenario, kernels: usize, seed: u64) -> FederatedReport {
    let cfg = scenario.config();
    let schedule =
        OpenLoopSchedule::poisson(cfg.requests, cfg.rate_rps, seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = ClusterWorld::deploy(cfg, kernels, seed);
    world.begin_measurement();

    for seq in 0..world.cfg.requests {
        world.advance_to(schedule.due()[seq]);
        match scenario.op(seq, &mut rng) {
            Op::Request {
                service,
                user,
                extra,
            } => {
                let extra_refs: Vec<(&str, &str)> = extra
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                world.request(service, user, &extra_refs, seq);
            }
            Op::Abort { user } => {
                world.abort_user(user);
            }
            Op::Idle => {}
        }
        if seq % POLL_EVERY == POLL_EVERY - 1 {
            world.poll_lanes();
            world
                .client
                .driver
                .retry_shed(&mut world.cluster.nodes[0].kernel);
        }
    }

    world.drain();
    let report = world.report(&scenario.name());
    if world.cfg.require_all_ok {
        world.assert_all_ok();
    }
    let wire = world.cluster.wire_stats();
    FederatedReport {
        report,
        kernels,
        wire_frames: wire.frames_out,
        wire_bytes: wire.bytes_out,
        forwarded: world.cluster.switch().forwarded,
    }
}
