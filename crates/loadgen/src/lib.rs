//! Scenario-driven open-loop load generation for the Asbestos/OKWS stack.
//!
//! The paper measures its prototype with a separate load-generator box
//! (§9): closed-loop latency at concurrency 4 (Figure 8), session sweeps
//! to 10,000 users. This crate is that box, grown up: an **open-loop**
//! arrival engine (arrivals never wait on completions, so queueing delay
//! shows up honestly in the tail), **heavy-tailed** user populations
//! (Zipf-ranked, million-rank capable), session churn, login storms
//! after [`scenario::World::reboot`], mixed session/DB traffic, and
//! mid-stream disconnects — all driven through the full sharded
//! deployment (kernel shards × netd lanes) with per-lane completion
//! polling.
//!
//! Workloads are declarative: implement [`scenario::Scenario`] (setup /
//! drive / check hooks) and hand it to [`scenario::run_scenario`]; the
//! engine owns deployment, pacing, polling, shed retries, draining, and
//! produces a [`metrics::ScenarioReport`] with separate *fresh* and
//! *retried* latency series (p50/p99/p999), goodput against
//! busiest-shard wall clock, and shard-balance signals. The stock
//! scenarios in [`scenarios`] feed `BENCH_latency.json` and the stress
//! suite.
//!
//! Everything is deterministic under a seed: same seed, same schedule,
//! same ops, same percentiles — which is what lets CI gate on the
//! committed numbers.
//!
//! The same engine also runs *federated*: [`cluster::run_federated`]
//! deploys the scenario over an `asbestos-cluster` federation (front end
//! on kernel 0, workers on the rest, labels crossing the wire in
//! serialized form) with the identical schedule and accounting — the
//! federated baseline in `BENCH_cluster.json` is measured this way.

#![warn(missing_docs)]

pub mod arrival;
pub mod cluster;
pub mod metrics;
pub mod scenario;
pub mod scenarios;
pub mod zipf;

pub use arrival::OpenLoopSchedule;
pub use cluster::{kernels_from_env, run_federated, ClusterWorld, FederatedReport};
pub use metrics::{LatencyStats, ScenarioReport};
pub use scenario::{run_scenario, Op, Scenario, ScenarioConfig, ServiceKind, World};
pub use scenarios::{Baseline, LaneOverflowChurn, LoginStorm, SustainedFlood, ZipfChurn};
pub use zipf::ZipfSampler;
