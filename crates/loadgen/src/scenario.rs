//! The scenario harness: declarative workloads over a full OKWS deployment.
//!
//! A [`Scenario`] is a small struct with setup / drive / check hooks — the
//! congestion-control-harness idiom where the experiment says *what* the
//! workload is and the engine owns deployment, pacing, polling, and
//! teardown. [`run_scenario`] deploys the shards×lanes world the scenario
//! asks for, replays an open-loop arrival schedule against it (arrivals
//! never wait for completions — see [`crate::arrival`]), drains, and hands
//! the scenario a [`ScenarioReport`] to assert invariants over.
//!
//! The engine is deterministic end to end: the kernel is built with a
//! fixed seed and (by default) a single worker thread, so the debug
//! scheduler sweeps shards sequentially and two runs of the same scenario
//! produce byte-identical request logs — which is what lets CI gate on
//! exact percentile values.

use asbestos_kernel::{CostModel, Kernel};
use asbestos_net::Netd;
use asbestos_okws::logic::{EchoStore, ParamLength, Profile};
use asbestos_okws::{Okws, OkwsClient, OkwsConfig, ServiceSpec};
use asbestos_store::{MemDev, Store};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrival::OpenLoopSchedule;
use crate::metrics::ScenarioReport;

/// Which worker services the deployment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceKind {
    /// The §9 session service (`store`): ~1 KiB echo state per user,
    /// logout support — the session-churn workhorse.
    Store,
    /// The DB-backed profile service (`profile`): labeled rows through
    /// ok-dbproxy, mixed read/write traffic.
    Profile,
    /// A pure-CPU service (`bench`): fixed worker cycles, no DB.
    Bench,
}

/// Deployment + workload shape for one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// User population size (accounts provisioned at deploy).
    pub users: usize,
    /// Services to deploy.
    pub services: Vec<ServiceKind>,
    /// Kernel shards.
    pub shards: usize,
    /// netd lanes.
    pub lanes: usize,
    /// Back the deployment with a durable store (enables [`World::reboot`]).
    pub durable: bool,
    /// Arm overload control (kernel credits + netd edge shedding).
    pub backpressure: bool,
    /// Arrivals in the measured window.
    pub requests: usize,
    /// Open-loop arrival rate, requests per virtual second.
    pub rate_rps: f64,
    /// Pin the kernel to the sequential deterministic scheduler
    /// (`set_worker_threads(1)`); scenarios that gate on exact numbers
    /// need this.
    pub deterministic: bool,
    /// After draining, assert every non-aborted request completed with
    /// HTTP 200.
    pub require_all_ok: bool,
}

impl ScenarioConfig {
    /// A single-shard, single-lane store-only config with sane defaults:
    /// sub-capacity Poisson arrivals, deterministic scheduling, all
    /// requests expected to succeed.
    pub fn new(users: usize, requests: usize) -> ScenarioConfig {
        ScenarioConfig {
            users,
            services: vec![ServiceKind::Store],
            shards: 1,
            lanes: 1,
            durable: false,
            backpressure: false,
            requests,
            rate_rps: 800.0,
            deterministic: true,
            require_all_ok: true,
        }
    }

    /// Sets the shards × lanes deployment size.
    pub fn deployment(mut self, shards: usize, lanes: usize) -> ScenarioConfig {
        self.shards = shards;
        self.lanes = lanes;
        self
    }

    /// Sets the arrival rate.
    pub fn rate(mut self, rate_rps: f64) -> ScenarioConfig {
        self.rate_rps = rate_rps;
        self
    }

    /// Adds a service to the deployment.
    pub fn with_service(mut self, kind: ServiceKind) -> ScenarioConfig {
        if !self.services.contains(&kind) {
            self.services.push(kind);
        }
        self
    }

    /// Backs the deployment with a durable store.
    pub fn durable(mut self) -> ScenarioConfig {
        self.durable = true;
        self
    }

    /// Arms overload control.
    pub fn with_backpressure(mut self) -> ScenarioConfig {
        self.backpressure = true;
        self
    }

    /// Allows requests to end the run unfinished or non-200 (overflow and
    /// disconnect scenarios).
    pub fn allow_failures(mut self) -> ScenarioConfig {
        self.require_all_ok = false;
        self
    }
}

/// One workload action, produced per arrival slot.
#[derive(Clone, Debug)]
pub enum Op {
    /// Issue an HTTP request as user rank `user`.
    Request {
        /// Service name (`store` / `profile` / `bench`).
        service: &'static str,
        /// User rank (account `u{rank}` / password `p{rank}`).
        user: usize,
        /// Extra query parameters.
        extra: Vec<(String, String)>,
    },
    /// Kill `user`'s most recent in-flight request mid-stream (the
    /// user-closed-the-tab disconnect; never shed-retried).
    Abort {
        /// User rank whose request to kill.
        user: usize,
    },
    /// Skip this arrival slot.
    Idle,
}

impl Op {
    /// Convenience constructor for a request op.
    pub fn request(service: &'static str, user: usize, extra: &[(&str, &str)]) -> Op {
        Op::Request {
            service,
            user,
            extra: extra
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// One issued request in the measured window.
#[derive(Clone, Copy, Debug)]
pub struct Issued {
    /// Arrival sequence number.
    pub seq: usize,
    /// Driver request index.
    pub idx: usize,
    /// Issuing user rank.
    pub user: usize,
}

/// A deployed OKWS world a scenario runs against.
pub struct World {
    /// The kernel under test.
    pub kernel: Kernel,
    /// The running deployment.
    pub okws: Okws,
    /// The HTTP client.
    pub client: OkwsClient,
    /// The scenario's config (owned so hooks can consult it).
    pub cfg: ScenarioConfig,
    /// Requests issued in the measured window, in arrival order.
    pub issued: Vec<Issued>,
    /// The durable device, when `cfg.durable`.
    pub dev: Option<MemDev>,
    /// The deployment seed.
    pub seed: u64,
    base_cycles: u64,
    base_shard_cycles: Vec<u64>,
}

impl World {
    /// Builds the kernel and deploys OKWS per `cfg`.
    ///
    /// The world owns kernel construction (rather than delegating to
    /// [`Okws::deploy`]) because determinism is set *before* assembly:
    /// `set_worker_threads(1)` pins the sequential debug scheduler, so
    /// startup placement and every later delivery interleave identically
    /// across runs.
    pub fn deploy(cfg: ScenarioConfig, seed: u64) -> World {
        let dev = cfg.durable.then(MemDev::new);
        let epoch = dev.as_ref().map_or(0, |d| Store::peek_epoch(d) + 1);
        let mut kernel = Kernel::with_boot_epoch(seed, CostModel::default(), cfg.shards, epoch);
        if cfg.deterministic {
            kernel.set_worker_threads(1);
        }
        let okws = Okws::start(&mut kernel, World::okws_config(&cfg, dev.as_ref(), true));
        let client = OkwsClient::new(&okws);
        let shards = cfg.shards;
        World {
            kernel,
            okws,
            client,
            cfg,
            issued: Vec::new(),
            dev,
            seed,
            base_cycles: 0,
            base_shard_cycles: vec![0; shards],
        }
    }

    pub(crate) fn okws_config(
        cfg: &ScenarioConfig,
        dev: Option<&MemDev>,
        with_users: bool,
    ) -> OkwsConfig {
        let mut config = OkwsConfig::new(80).sharded(cfg.shards).lanes(cfg.lanes);
        if cfg.backpressure {
            config = config.with_backpressure();
        }
        if let Some(dev) = dev {
            config = config.durable(Box::new(dev.clone()));
        }
        for kind in &cfg.services {
            match kind {
                ServiceKind::Store => config
                    .services
                    .push(ServiceSpec::new("store", || Box::new(EchoStore::new()))),
                ServiceKind::Profile => {
                    config
                        .services
                        .push(ServiceSpec::new("profile", || Box::new(Profile)));
                    config.worker_tables.push(Profile::TABLE_DDL.to_string());
                }
                ServiceKind::Bench => config
                    .services
                    .push(ServiceSpec::new("bench", || Box::new(ParamLength))),
            }
        }
        if with_users {
            for u in 0..cfg.users {
                config.users.push((format!("u{u}"), format!("p{u}")));
            }
        }
        config
    }

    /// Shuts the deployment down cleanly and boots the next epoch from
    /// the durable device — the login-storm trigger. Accounts are *not*
    /// re-provisioned: credentials must come back from the store.
    ///
    /// # Panics
    ///
    /// Panics on a volatile world (nothing to reboot from).
    pub fn reboot(&mut self) {
        let dev = self
            .dev
            .clone()
            .expect("reboot needs a durable world (ScenarioConfig::durable)");
        // Clean shutdown of the old boot (Okws::shutdown inlined — the
        // handle stays in place and is replaced below).
        self.kernel.run();
        self.kernel.teardown();

        let epoch = Store::peek_epoch(&dev) + 1;
        let mut kernel = Kernel::with_boot_epoch(
            self.seed.wrapping_add(epoch),
            CostModel::default(),
            self.cfg.shards,
            epoch,
        );
        if self.cfg.deterministic {
            kernel.set_worker_threads(1);
        }
        let okws = Okws::start(
            &mut kernel,
            World::okws_config(&self.cfg, Some(&dev), false),
        );
        self.client = OkwsClient::new(&okws);
        self.okws = okws;
        self.kernel = kernel;
        self.issued.clear();
    }

    /// Marks the start of the measured window: drains startup work,
    /// clears the request log, and snapshots the shard clocks.
    pub fn begin_measurement(&mut self) {
        self.kernel.run();
        self.client.driver.poll(&self.kernel);
        self.client.driver.reset_log();
        self.issued.clear();
        self.base_cycles = self.kernel.elapsed_cycles();
        self.base_shard_cycles = self.kernel.per_shard_elapsed_cycles();
    }

    /// Steps the kernel until the busiest shard's clock reaches `due`
    /// cycles past the window start, or the kernel goes idle (virtual
    /// time stops when there is no work — the schedule compresses; see
    /// [`crate::arrival`]).
    pub fn advance_to(&mut self, due: u64) {
        let target = self.base_cycles + due;
        while self.kernel.elapsed_cycles() < target && self.kernel.step() {}
    }

    /// Issues a request as user rank `user` and records it under `seq`.
    pub fn request(
        &mut self,
        service: &str,
        user: usize,
        extra: &[(&str, &str)],
        seq: usize,
    ) -> usize {
        let uname = format!("u{user}");
        let pw = format!("p{user}");
        let idx = self
            .client
            .request(&mut self.kernel, service, &uname, &pw, extra);
        self.issued.push(Issued { seq, idx, user });
        idx
    }

    /// Issues a request as user rank `user` and runs the kernel until it
    /// completes (setup/probe traffic — not recorded in the window log).
    pub fn request_sync(
        &mut self,
        service: &str,
        user: usize,
        extra: &[(&str, &str)],
    ) -> (u16, Vec<u8>) {
        let uname = format!("u{user}");
        let pw = format!("p{user}");
        self.client
            .request_sync(&mut self.kernel, service, &uname, &pw, extra)
            .unwrap_or_else(|| panic!("sync request to {service} as {uname} got no response"))
    }

    /// Kills `user`'s most recent in-flight request mid-stream. Returns
    /// whether one existed.
    pub fn abort_user(&mut self, user: usize) -> bool {
        for issued in self.issued.iter().rev() {
            if issued.user != user {
                continue;
            }
            let req = self.client.driver.request(issued.idx);
            if req.finished_at.is_none() && !req.aborted {
                self.client.driver.abort(issued.idx);
                return true;
            }
        }
        false
    }

    /// Runs the world to quiescence: repeatedly drains the kernel, polls
    /// every lane, and retries shed requests. Stops when everything
    /// completed or aborted, or when no forward progress is possible —
    /// requests dropped at a clamped port queue never complete, and the
    /// overflow scenarios rely on that being survivable rather than an
    /// error. Aborted connections are reaped at the end.
    pub fn drain(&mut self) {
        for _ in 0..128 {
            self.kernel.run();
            self.poll_lanes();
            let settled = self.client.driver.completed() + self.client.driver.aborted();
            if settled == self.client.driver.requests().len() {
                break;
            }
            if self.client.driver.retry_shed(&mut self.kernel) == 0 {
                break;
            }
        }
        self.client.driver.reap_aborted();
    }

    /// Polls each netd lane's completions in turn (the per-lane
    /// completion-ring walk; equivalent to `poll()` but keeps the
    /// per-lane structure visible to scenarios that care).
    pub fn poll_lanes(&mut self) {
        for lane in 0..self.client.driver.lanes() {
            self.client.driver.poll_lane(&self.kernel, lane);
        }
    }

    /// Parses the response of window request `idx` as `(status, body)`.
    pub fn response(&self, idx: usize) -> Option<(u16, Vec<u8>)> {
        self.client.parse_response(idx)
    }

    /// Sums deferred and shed accepts across every netd lane.
    pub fn shed_totals(&self) -> (u64, u64) {
        let (mut deferred, mut shed) = (0u64, 0u64);
        for lane in &self.okws.netd.lanes {
            let netd = self
                .kernel
                .service_as::<Netd>(lane.pid)
                .expect("netd lane is downcastable");
            deferred += netd.accepts_deferred();
            shed += netd.accepts_shed();
        }
        (deferred, shed)
    }

    /// Every handle idd holds at `⋆` this boot (§5.1 disjointness probe).
    pub fn idd_star_handles(&self) -> Vec<u64> {
        Okws::idd_star_handles(&self.kernel)
    }

    /// Builds the report for the measured window.
    pub fn report(&self, scenario: &str) -> ScenarioReport {
        let driver = &self.client.driver;
        let shard_now = self.kernel.per_shard_elapsed_cycles();
        let shard_cycles: Vec<u64> = shard_now
            .iter()
            .zip(&self.base_shard_cycles)
            .map(|(now, base)| now.saturating_sub(*base))
            .collect();
        ScenarioReport::from_window(
            scenario,
            self.cfg.shards,
            self.cfg.lanes,
            self.cfg.users,
            self.issued.len(),
            driver.completed(),
            driver.aborted(),
            driver.outstanding(),
            driver.total_retries(),
            self.kernel.elapsed_cycles() - self.base_cycles,
            &driver.latencies_us(),
            &driver.retried_latencies_us(),
            &shard_cycles,
            self.kernel
                .per_shard_queue_depth_hwm()
                .into_iter()
                .max()
                .unwrap_or(0),
        )
    }

    /// Asserts every non-aborted window request completed with HTTP 200.
    pub fn assert_all_ok(&self) {
        for issued in &self.issued {
            let req = self.client.driver.request(issued.idx);
            if req.aborted {
                continue;
            }
            let (status, _) = self.response(issued.idx).unwrap_or_else(|| {
                panic!(
                    "request seq {} (user u{}) never completed",
                    issued.seq, issued.user
                )
            });
            assert_eq!(
                status, 200,
                "request seq {} (user u{}) answered {status}",
                issued.seq, issued.user
            );
        }
    }
}

/// A declarative workload: the engine owns deployment, pacing, polling,
/// and draining; the scenario supplies the hooks.
pub trait Scenario {
    /// Scenario name (report + JSON row key).
    fn name(&self) -> String;

    /// Deployment and workload shape.
    fn config(&self) -> ScenarioConfig;

    /// Runs once after deployment, before the measured window opens
    /// (build sessions, snapshot handles, trigger reboots, tune knobs).
    fn setup(&mut self, _world: &mut World) {}

    /// Runs just before arrival `seq` is due — phase transitions and
    /// barriers live here.
    fn before_arrival(&mut self, _world: &mut World, _seq: usize) {}

    /// Produces the op for arrival slot `seq`. `rng` is the engine's
    /// seeded workload RNG: same seed, same op sequence.
    fn op(&mut self, seq: usize, rng: &mut StdRng) -> Op;

    /// Runs after the last arrival, before the final drain (relax
    /// overload knobs so flood traffic can finish, etc.).
    fn quiesce(&mut self, _world: &mut World) {}

    /// Asserts scenario invariants over the drained world and report.
    fn check(&mut self, _world: &mut World, _report: &ScenarioReport) {}
}

/// How often the engine interleaves completion polling and shed retries
/// with arrivals (every N arrivals — keeps per-arrival overhead low while
/// bounding how long a shed connection waits for its retry).
pub(crate) const POLL_EVERY: usize = 16;

/// Deploys, drives, drains, reports: the whole scenario lifecycle.
pub fn run_scenario(scenario: &mut dyn Scenario, seed: u64) -> ScenarioReport {
    let cfg = scenario.config();
    let schedule =
        OpenLoopSchedule::poisson(cfg.requests, cfg.rate_rps, seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = World::deploy(cfg, seed);
    scenario.setup(&mut world);
    world.begin_measurement();

    for seq in 0..world.cfg.requests {
        scenario.before_arrival(&mut world, seq);
        world.advance_to(schedule.due()[seq]);
        match scenario.op(seq, &mut rng) {
            Op::Request {
                service,
                user,
                extra,
            } => {
                let extra_refs: Vec<(&str, &str)> = extra
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                world.request(service, user, &extra_refs, seq);
            }
            Op::Abort { user } => {
                world.abort_user(user);
            }
            Op::Idle => {}
        }
        if seq % POLL_EVERY == POLL_EVERY - 1 {
            world.poll_lanes();
            world.client.driver.retry_shed(&mut world.kernel);
        }
    }

    scenario.quiesce(&mut world);
    world.drain();
    let report = world.report(&scenario.name());
    if world.cfg.require_all_ok {
        world.assert_all_ok();
    }
    scenario.check(&mut world, &report);
    report
}
