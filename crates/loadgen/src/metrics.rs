//! Latency and goodput accounting for scenario runs.
//!
//! Every scenario produces one [`ScenarioReport`]: percentiles over the
//! *fresh* latency series (requests served on their first connection),
//! the *retried* series kept separate (shed-then-retried requests carry
//! edge-refusal round-trips that must not inflate the fresh p999 — the
//! distinction `ClientDriver` maintains), goodput against busiest-shard
//! wall clock, and the per-shard load-balance signals surfaced by the
//! kernel ([`asbestos_kernel::Kernel::per_shard_elapsed_cycles`]).

use asbestos_kernel::CYCLES_PER_SEC;
use asbestos_net::percentile;

/// Percentile summary of one latency series (microseconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Samples in the series.
    pub count: usize,
    /// Arithmetic mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Worst sample, µs.
    pub max_us: f64,
}

impl LatencyStats {
    /// Summarizes an ascending-sorted series (as the driver returns).
    pub fn from_sorted(sorted: &[f64]) -> LatencyStats {
        if sorted.is_empty() {
            return LatencyStats::default();
        }
        let sum: f64 = sorted.iter().sum();
        LatencyStats {
            count: sorted.len(),
            mean_us: sum / sorted.len() as f64,
            p50_us: percentile(sorted, 50.0).unwrap(),
            p99_us: percentile(sorted, 99.0).unwrap(),
            p999_us: percentile(sorted, 99.9).unwrap(),
            max_us: *sorted.last().unwrap(),
        }
    }
}

/// Everything one scenario run measured.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Kernel shards the deployment ran on.
    pub shards: usize,
    /// netd lanes in the front end.
    pub lanes: usize,
    /// User population size.
    pub users: usize,
    /// Requests issued during the measured window.
    pub issued: usize,
    /// Requests that completed with a full response.
    pub completed: usize,
    /// Requests the client killed mid-stream.
    pub aborted: usize,
    /// Requests still open when the run ended (e.g. dropped at a clamped
    /// port queue — they never complete, by design).
    pub outstanding: usize,
    /// Total edge refusals that were retried.
    pub retries: u64,
    /// Busiest-shard wall clock of the measured window, µs. Shards model
    /// parallel cores, so the slowest one bounds modeled wall time.
    pub elapsed_us: f64,
    /// Completions per second of busiest-shard wall clock.
    pub goodput_rps: f64,
    /// Latency of requests served on their first connection.
    pub fresh: LatencyStats,
    /// Latency of shed-then-retried requests (includes refusal
    /// round-trips — the price of graceful degradation, as its own
    /// series).
    pub retried: LatencyStats,
    /// Per-shard cycle advance over the measured window, µs.
    pub shard_elapsed_us: Vec<f64>,
    /// Busiest shard's advance over the mean advance (1.0 = perfectly
    /// balanced).
    pub shard_imbalance: f64,
    /// Highest queue-depth high-water mark across shards.
    pub queue_depth_hwm: u64,
}

impl ScenarioReport {
    /// Computes the derived fields from raw window measurements.
    #[allow(clippy::too_many_arguments)]
    pub fn from_window(
        scenario: &str,
        shards: usize,
        lanes: usize,
        users: usize,
        issued: usize,
        completed: usize,
        aborted: usize,
        outstanding: usize,
        retries: u64,
        elapsed_cycles: u64,
        fresh_sorted: &[f64],
        retried_sorted: &[f64],
        shard_cycles: &[u64],
        queue_depth_hwm: u64,
    ) -> ScenarioReport {
        let cycles_per_us = CYCLES_PER_SEC as f64 / 1e6;
        let elapsed_us = elapsed_cycles as f64 / cycles_per_us;
        let elapsed_sec = elapsed_cycles.max(1) as f64 / CYCLES_PER_SEC as f64;
        let shard_elapsed_us: Vec<f64> = shard_cycles
            .iter()
            .map(|&c| c as f64 / cycles_per_us)
            .collect();
        let mean_shard =
            shard_elapsed_us.iter().sum::<f64>() / shard_elapsed_us.len().max(1) as f64;
        let max_shard = shard_elapsed_us.iter().cloned().fold(0.0, f64::max);
        ScenarioReport {
            scenario: scenario.to_string(),
            shards,
            lanes,
            users,
            issued,
            completed,
            aborted,
            outstanding,
            retries,
            elapsed_us,
            goodput_rps: completed as f64 / elapsed_sec,
            fresh: LatencyStats::from_sorted(fresh_sorted),
            retried: LatencyStats::from_sorted(retried_sorted),
            shard_elapsed_us,
            shard_imbalance: if mean_shard > 0.0 {
                max_shard / mean_shard
            } else {
                1.0
            },
            queue_depth_hwm,
        }
    }

    /// One-line human summary (the bench prints these as it goes).
    pub fn summary_line(&self) -> String {
        format!(
            "{} [{}x{}] {} users: {}/{} ok, goodput {:.0} rps, p50 {:.1}us p99 {:.1}us p999 {:.1}us (retried: {} @ p99 {:.1}us), imbalance {:.2}",
            self.scenario,
            self.shards,
            self.lanes,
            self.users,
            self.completed,
            self.issued,
            self.goodput_rps,
            self.fresh.p50_us,
            self.fresh.p99_us,
            self.fresh.p999_us,
            self.retried.count,
            self.retried.p99_us,
            self.shard_imbalance,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_sorted_series() {
        let series: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = LatencyStats::from_sorted(&series);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_us, 500.0);
        assert_eq!(s.p99_us, 990.0);
        assert_eq!(s.p999_us, 999.0);
        assert_eq!(s.max_us, 1000.0);
        assert!((s.mean_us - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_series_is_all_zero() {
        let s = LatencyStats::from_sorted(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p999_us, 0.0);
    }
}
