//! Heavy-tailed user populations: a deterministic Zipf sampler.
//!
//! §9's OKWS workloads draw a large, churning user population; real Web
//! traffic is heavy-tailed — a few users account for most requests. The
//! sampler here is CDF-inversion over the Zipf(s) distribution on ranks
//! `1..=n`: weight of rank `k` is `1/k^s`, so `s = 0` is exactly uniform
//! and `s ≈ 1` is classic Web skew. Construction is O(n), sampling is one
//! RNG draw plus a binary search — cheap enough that a *million*-rank
//! population (the scenario harness's headline scale) costs ~8 MB of CDF
//! and tens of nanoseconds per draw.
//!
//! Everything is deterministic under a seeded [`rand::rngs::StdRng`]: two
//! runs of the same scenario produce identical user sequences, which is
//! what lets the latency benches gate on exact percentiles.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf(s) sampler over user ranks `0..n` (rank 0 is the heaviest).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    s: f64,
}

impl ZipfSampler {
    /// Builds the sampler for `n` users with skew `s` (`s = 0.0` is
    /// uniform; larger `s` concentrates more of the traffic on the head
    /// ranks).
    ///
    /// # Panics
    ///
    /// Panics on an empty population or a negative/non-finite skew.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "Zipf population must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard the tail against float rounding: the last bucket must
        // cover u -> 1.0 exactly.
        *cdf.last_mut().unwrap() = 1.0;
        ZipfSampler { cdf, s }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.cdf.len()
    }

    /// The configured skew.
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// Draws one user rank in `0..population()` (0 = heaviest).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1)
    }

    /// The exact probability mass of rank `u` under this skew.
    pub fn share(&self, u: usize) -> f64 {
        let lo = if u == 0 { 0.0 } else { self.cdf[u - 1] };
        self.cdf[u] - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_skew_is_flat() {
        let z = ZipfSampler::new(10, 0.0);
        for u in 0..10 {
            assert!((z.share(u) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn head_rank_dominates_under_skew() {
        let z = ZipfSampler::new(1000, 1.1);
        assert!(z.share(0) > 50.0 * z.share(999));
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top 10 of 1000 ranks carry a large share of the traffic.
        assert!(head > 2_000, "head ranks drew only {head}/10000");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
