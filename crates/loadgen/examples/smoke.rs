//! Runs every stock scenario at small scale and prints the report lines.
//!
//! A fast end-to-end sanity pass over the loadgen engine; the committed
//! numbers come from `cargo bench --bench loadgen`, not from this.

use asbestos_loadgen::{
    run_scenario, Baseline, LaneOverflowChurn, LoginStorm, SustainedFlood, ZipfChurn,
};

fn main() {
    for (shards, lanes) in [(1usize, 1usize), (4, 4)] {
        let r = run_scenario(
            &mut Baseline {
                users: 8,
                requests: 64,
                shards,
                lanes,
            },
            7,
        );
        println!("{}", r.summary_line());
        let r = run_scenario(&mut ZipfChurn::new(32, 200, 1.1, shards, lanes), 11);
        println!("{}", r.summary_line());
        let r = run_scenario(&mut LoginStorm::new(24, shards, lanes), 13);
        println!("{}", r.summary_line());
        let r = run_scenario(
            &mut SustainedFlood {
                requests: 220,
                flood_factor: 10,
                shards,
                lanes,
            },
            17,
        );
        println!("{}", r.summary_line());
        let r = run_scenario(&mut LaneOverflowChurn::new(6, 24, shards, lanes), 19);
        println!("{}", r.summary_line());
    }
}
