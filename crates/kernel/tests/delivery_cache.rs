//! The delivery-decision cache must be semantically invisible.
//!
//! Three pins:
//!
//! 1. A property test: for random label tuples — including duplicates that
//!    provoke cache hits, and a capacity-1 cache that forces evictions —
//!    the cached kernel delivers, drops, and relabels *bitwise identically*
//!    to an uncached kernel running the same workload.
//! 2. A covert-channel regression: the §8 heartbeat construction drops
//!    exactly the same messages with the cache on, off, and when replayed
//!    hot (every decision served from cache).
//! 3. The O(1) promise: a cache-hit delivery performs zero `Label::clone`
//!    calls (measured by the labels crate's global clone counter).

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Kernel, Label, Level, SendArgs, Value};
use asbestos_labels::Handle;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies: small handle domain so tuples repeat and interact.
// ---------------------------------------------------------------------

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Star),
        Just(Level::L0),
        Just(Level::L1),
        Just(Level::L2),
        Just(Level::L3),
    ]
}

prop_compose! {
    fn arb_label()(
        default in arb_level(),
        pairs in prop::collection::vec((0u64..12, arb_level()), 0..6),
    ) -> Label {
        let pairs: Vec<(Handle, Level)> =
            pairs.into_iter().map(|(h, l)| (Handle::from_raw(h), l)).collect();
        Label::from_pairs(default, &pairs)
    }
}

#[derive(Clone, Debug)]
struct SendPlan {
    contaminate: Label,
    verify: Label,
    decont_send: Label,
    decont_recv: Label,
}

prop_compose! {
    fn arb_send_plan()(
        contaminate in arb_label(),
        verify in arb_label(),
        decont_send in arb_label(),
        decont_recv in arb_label(),
    ) -> SendPlan {
        SendPlan { contaminate, verify, decont_send, decont_recv }
    }
}

#[derive(Clone, Debug)]
struct Plan {
    /// Sender send label; all-star senders can use decontamination labels.
    ps: Label,
    /// Receiver labels.
    qs: Label,
    qr: Label,
    /// Destination port label `p_R`.
    pr: Label,
    /// The messages, sent in order. Duplicates are common by construction
    /// (small domains), and the workload is sent twice to guarantee the
    /// cached kernel serves hits.
    sends: Vec<SendPlan>,
}

prop_compose! {
    fn arb_plan()(
        all_star in any::<bool>(),
        ps in arb_label(),
        qs in arb_label(),
        qr in arb_label(),
        pr in arb_label(),
        sends in prop::collection::vec(arb_send_plan(), 1..6),
    ) -> Plan {
        let ps = if all_star { Label::bottom() } else { ps };
        Plan { ps, qs, qr, pr, sends }
    }
}

// ---------------------------------------------------------------------
// The workload driver.
// ---------------------------------------------------------------------

/// Everything observable about one run, compared bitwise across cache
/// configurations.
#[derive(Debug, PartialEq)]
struct Observed {
    received: Vec<Value>,
    sent: u64,
    delivered: u64,
    dropped_label: u64,
    dropped_port_decont: u64,
    dropped_total: u64,
    recv_send_label: Label,
    recv_recv_label: Label,
    recv_send_fp: u64,
    recv_recv_fp: u64,
    sender_send_label: Label,
}

/// Runs `plan` on a kernel with the given delivery-cache capacity and
/// returns every observable effect. The whole send list is replayed twice
/// so identical tuples recur within one run.
fn run_plan(plan: &Plan, cache_capacity: usize) -> Observed {
    let mut kernel = Kernel::new(1234);
    kernel.set_delivery_cache_capacity(cache_capacity);

    let received = Arc::new(Mutex::new(Vec::<Value>::new()));
    let log = received.clone();
    let pr = plan.pr.clone();
    kernel.spawn(
        "recv",
        Category::Other,
        service_with_start(
            move |sys| {
                let port = sys.new_port(Label::top());
                sys.set_port_label(port, pr.clone()).unwrap();
                sys.publish_env("recv.port", Value::Handle(port));
            },
            move |_sys, msg| {
                log.lock().unwrap().push(msg.body.clone());
            },
        ),
    );
    let recv_port = kernel.global_env("recv.port").unwrap().as_handle().unwrap();
    let recv_pid = kernel.find_process("recv").unwrap();
    kernel.set_process_labels(recv_pid, Some(plan.qs.clone()), Some(plan.qr.clone()));

    let sends = plan.sends.clone();
    kernel.spawn(
        "sender",
        Category::Other,
        service_with_start(
            |sys| {
                let port = sys.new_port(Label::top());
                sys.set_port_label(port, Label::top()).unwrap();
                sys.publish_env("sender.port", Value::Handle(port));
            },
            move |sys, _msg| {
                for (i, s) in sends.iter().enumerate() {
                    let args = SendArgs::new()
                        .contaminate(s.contaminate.clone())
                        .verify(s.verify.clone())
                        .grant(s.decont_send.clone())
                        .raise_recv(s.decont_recv.clone());
                    // Privilege violations surface at send; both kernels
                    // must agree, so just ignore them here.
                    let _ = sys.send_args(recv_port, Value::U64(i as u64), &args);
                }
            },
        ),
    );
    let sender_port = kernel
        .global_env("sender.port")
        .unwrap()
        .as_handle()
        .unwrap();
    let sender_pid = kernel.find_process("sender").unwrap();
    kernel.set_process_labels(sender_pid, Some(plan.ps.clone()), None);

    // Two rounds: the second replays tuples the first warmed the cache
    // with (interleaved with whatever relabeling round one caused).
    kernel.inject(sender_port, Value::Unit);
    kernel.run();
    kernel.inject(sender_port, Value::Unit);
    kernel.run();

    let stats = kernel.stats();
    let received = received.lock().unwrap().clone();
    let recv = kernel.process(recv_pid);
    let sender = kernel.process(sender_pid);
    Observed {
        received,
        sent: stats.sent,
        delivered: stats.delivered,
        dropped_label: stats.dropped_label_check,
        dropped_port_decont: stats.dropped_port_decont,
        dropped_total: stats.dropped_total(),
        recv_send_label: (*recv.send_label).clone(),
        recv_recv_label: (*recv.recv_label).clone(),
        recv_send_fp: recv.send_label.fingerprint(),
        recv_recv_fp: recv.recv_label.fingerprint(),
        sender_send_label: (*sender.send_label).clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decision *and* effect labels must be bitwise-identical between the
    /// cached and uncached paths, across random tuples and evictions.
    #[test]
    fn cached_delivery_is_bitwise_identical(plan in arb_plan()) {
        let uncached = run_plan(&plan, 0);
        let cached = run_plan(&plan, 1 << 16);
        // A capacity-1 cache evicts on almost every insertion, exercising
        // the miss → insert → evict → re-miss interleavings.
        let evicting = run_plan(&plan, 1);
        prop_assert_eq!(&cached, &uncached);
        prop_assert_eq!(&evicting, &uncached);
    }
}

// ---------------------------------------------------------------------
// Covert-channel regression.
// ---------------------------------------------------------------------

/// The §8 heartbeat construction: tainted A contaminates relay B0, C
/// refuses the taint, so C hears B1 but not B0. The *set of drops* is the
/// information flow — the cache must reproduce it exactly.
fn run_heartbeat(cache_capacity: usize, rounds: usize) -> (Vec<String>, u64) {
    let mut kernel = Kernel::new(81);
    kernel.set_delivery_cache_capacity(cache_capacity);

    let heard = Arc::new(Mutex::new(Vec::<String>::new()));
    let h2 = heard.clone();
    kernel.spawn(
        "C",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("c.port", Value::Handle(p));
            },
            move |_sys, msg| {
                h2.lock()
                    .unwrap()
                    .push(msg.body.as_str().unwrap_or("?").into());
            },
        ),
    );
    let c_port = kernel.global_env("c.port").unwrap().as_handle().unwrap();

    for name in ["B0", "B1"] {
        let key = format!("{name}.port");
        let beat = name.to_string();
        kernel.spawn(
            name,
            Category::Other,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&key, Value::Handle(p));
                },
                move |sys, _msg| {
                    sys.send(c_port, Value::Str(beat.clone())).unwrap();
                },
            ),
        );
    }
    let b0 = kernel.global_env("B0.port").unwrap().as_handle().unwrap();
    let b1 = kernel.global_env("B1.port").unwrap().as_handle().unwrap();

    // Out-of-band taint: B0 carries t at 3; C refuses anything above 1.
    let t = Handle::from_raw(0x77);
    let b0_pid = kernel.find_process("B0").unwrap();
    kernel.set_process_labels(
        b0_pid,
        Some(Label::from_pairs(Level::L1, &[(t, Level::L3)])),
        None,
    );
    let c_pid = kernel.find_process("C").unwrap();
    kernel.set_process_labels(
        c_pid,
        None,
        Some(Label::from_pairs(Level::L2, &[(t, Level::L1)])),
    );

    for _ in 0..rounds {
        kernel.inject(b0, Value::Unit);
        kernel.inject(b1, Value::Unit);
        kernel.run();
    }
    let heard = heard.lock().unwrap().clone();
    (heard, kernel.stats().dropped_label_check)
}

#[test]
fn covert_channel_unchanged_by_cache() {
    // 8 rounds: round one misses, rounds two through eight are pure cache
    // hits in the cached kernel — and every round must drop B0's beat and
    // deliver B1's, in both kernels.
    let (heard_off, drops_off) = run_heartbeat(0, 8);
    let (heard_on, drops_on) = run_heartbeat(1 << 16, 8);
    assert_eq!(heard_off, heard_on, "cache changed which messages arrive");
    assert_eq!(drops_off, drops_on, "cache changed which messages drop");
    assert_eq!(drops_on, 8, "B0's tainted beat must drop every round");
    assert_eq!(heard_on, vec!["B1"; 8]);
}

#[test]
fn relabeling_invalidates_by_fingerprint() {
    // C hears B1 while permissive, then voluntarily restricts its receive
    // label. The earlier cached "deliver" decision must not resurrect the
    // flow: the restricted Q_R has a different fingerprint, hence a
    // different key.
    let mut kernel = Kernel::new(7);
    let heard = Arc::new(Mutex::new(0u32));
    let h2 = heard.clone();
    kernel.spawn(
        "C",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("c.port", Value::Handle(p));
            },
            move |_sys, _msg| {
                *h2.lock().unwrap() += 1;
            },
        ),
    );
    let c_port = kernel.global_env("c.port").unwrap().as_handle().unwrap();
    let c_pid = kernel.find_process("C").unwrap();

    let t = Handle::from_raw(0x5);
    kernel.spawn(
        "B",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("b.port", Value::Handle(p));
            },
            move |sys, _msg| {
                sys.send(c_port, Value::Unit).unwrap();
            },
        ),
    );
    let b_port = kernel.global_env("b.port").unwrap().as_handle().unwrap();
    let b_pid = kernel.find_process("B").unwrap();
    kernel.set_process_labels(
        b_pid,
        Some(Label::from_pairs(Level::L1, &[(t, Level::L2)])),
        None,
    );

    // Warm the cache: B's partially tainted beat reaches default C.
    kernel.inject(b_port, Value::Unit);
    kernel.run();
    assert_eq!(*heard.lock().unwrap(), 1);
    assert!(kernel.stats().cache_misses > 0);

    // C restricts; the same send must now drop even though the cache holds
    // a hot "deliver" entry for the old label tuple.
    let restricted = kernel
        .process(c_pid)
        .recv_label
        .glb(&Label::from_pairs(Level::L3, &[(t, Level::L1)]));
    kernel.set_process_labels(c_pid, None, Some(restricted));
    let drops_before = kernel.stats().dropped_label_check;
    kernel.inject(b_port, Value::Unit);
    kernel.run();
    assert_eq!(
        *heard.lock().unwrap(),
        1,
        "restricted C must not hear the beat"
    );
    assert_eq!(kernel.stats().dropped_label_check, drops_before + 1);
}

// ---------------------------------------------------------------------
// The O(1) hot path.
// ---------------------------------------------------------------------

#[test]
fn cache_hit_delivery_does_zero_label_clones() {
    let mut kernel = Kernel::new(99);
    kernel.spawn(
        "sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            |_sys, _msg| {},
        ),
    );
    let port = kernel.global_env("sink.port").unwrap().as_handle().unwrap();

    // Warm: the first delivery misses and pays the full Figure 4 walk.
    kernel.inject(port, Value::Unit);
    assert!(kernel.step());
    let warm_hits = kernel.stats().cache_hits;

    // Hot: identical tuple. The delivery must be clone-free end to end.
    kernel.inject(port, Value::Unit);
    let clones_before = Label::clone_count();
    assert!(kernel.step());
    let clones_after = Label::clone_count();
    assert_eq!(
        clones_after - clones_before,
        0,
        "cache-hit delivery must not clone labels"
    );
    assert_eq!(kernel.stats().cache_hits, warm_hits + 1);
    assert_eq!(kernel.stats().delivered, 2);
}

#[test]
fn cache_memory_is_accounted() {
    let mut kernel = Kernel::new(3);
    kernel.spawn(
        "sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            |_sys, _msg| {},
        ),
    );
    let port = kernel.global_env("sink.port").unwrap().as_handle().unwrap();
    assert_eq!(kernel.kmem_report().delivery_cache_bytes, 0);
    kernel.inject(port, Value::Unit);
    kernel.run();
    let report = kernel.kmem_report();
    assert!(
        report.delivery_cache_bytes > 0,
        "cached decision not billed"
    );
    assert!(report.total_bytes() >= report.delivery_cache_bytes);
    // Disabling the cache releases the memory.
    kernel.set_delivery_cache_capacity(0);
    assert_eq!(kernel.kmem_report().delivery_cache_bytes, 0);
}
