//! Lifecycle of the persistent shard worker pool.
//!
//! Three contracts, each of which `std::thread::scope` gave the old
//! engine for free and the pool must reproduce:
//!
//! * a panicking service handler propagates out of `run()` (via
//!   `resume_unwind`) without deadlocking the other workers, and the
//!   pool keeps serving later `run()` calls;
//! * dropping a kernel — even mid-workload, with messages still queued —
//!   joins every worker thread;
//! * back-to-back `run()` calls reuse the same parked workers instead of
//!   spawning fresh threads (observed through the monotone wakeup
//!   counter, which a rebuilt pool would reset, and through the host's
//!   thread count).
//!
//! Thread counts are read from `/proc/self/task`; a file-local lock
//! serializes these tests so concurrent tests in this binary cannot
//! perturb the counts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, Handle, Kernel, Label, Value};

static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Live threads in this process (tasks in `/proc/self/task`).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, |dir| dir.count())
}

/// Waits (briefly) for the thread count to settle at `expected`.
fn assert_threads_settle_at(expected: usize, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = live_threads();
        if now == expected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: thread count stuck at {now}, expected {expected}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Deploys one counting sink per shard; returns the kernel, the sinks'
/// ports (index = shard), and the shared delivery log.
fn deploy_sinks(
    seed: u64,
    shards: usize,
    workers: usize,
) -> (Kernel, Vec<Handle>, Arc<Mutex<Vec<u64>>>) {
    let mut kernel = Kernel::new_sharded(seed, shards);
    kernel.set_worker_threads(workers);
    let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut ports = Vec::new();
    for shard in 0..shards {
        let key = format!("sink{shard}.port");
        let publish_key = key.clone();
        let l2 = log.clone();
        kernel.spawn_on(
            shard,
            &format!("sink{shard}"),
            Category::Other,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&publish_key, Value::Handle(p));
                },
                move |_sys, msg| {
                    if let Value::U64(n) = msg.body {
                        l2.lock().unwrap().push(n);
                    }
                },
            ),
        );
        ports.push(kernel.global_env(&key).unwrap().as_handle().unwrap());
    }
    (kernel, ports, log)
}

#[test]
fn worker_panic_propagates_without_deadlock_and_pool_survives() {
    let _guard = serial();
    let (mut kernel, ports, log) = deploy_sinks(0xB00, 4, 2);

    // A bomb on shard 1: panics the pool worker draining that shard.
    kernel.spawn_on(
        1,
        "bomb",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("bomb.port", Value::Handle(p));
            },
            |_sys, _msg| panic!("bomb handler detonated"),
        ),
    );
    let bomb = kernel.global_env("bomb.port").unwrap().as_handle().unwrap();

    // Every shard gets work, so both workers are mid-round when the
    // panic fires on one of them.
    for &port in &ports {
        kernel.inject(port, Value::U64(7));
    }
    kernel.inject(bomb, Value::Unit);

    // Expected panic: silence the default hook for the duration.
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| kernel.run()));
    let _ = std::panic::take_hook();

    let payload = result.expect_err("handler panic must propagate out of run()");
    let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(message, "bomb handler detonated", "panic payload survives");

    // No worker deadlocked: the pool serves the next run and delivers.
    // (The aborted round's stragglers may ride along; only the tag-8
    // batch injected *after* the panic is asserted.)
    let wakeups_before = kernel.pool_wakeups();
    for &port in &ports {
        kernel.inject(port, Value::U64(8));
    }
    kernel.run();
    assert_eq!(
        log.lock().unwrap().iter().filter(|&&n| n == 8).count(),
        ports.len(),
        "post-panic run delivers on every shard"
    );
    assert!(
        kernel.pool_wakeups() > wakeups_before,
        "the same pool handled the post-panic run"
    );
}

#[test]
fn back_to_back_runs_reuse_the_same_pool() {
    let _guard = serial();
    let (mut kernel, ports, log) = deploy_sinks(0xBEE, 4, 3);

    for &port in &ports {
        kernel.inject(port, Value::U64(1));
    }
    kernel.run();
    let wakeups_first = kernel.pool_wakeups();
    assert!(
        wakeups_first >= 3,
        "every worker woke for the first parallel round (saw {wakeups_first})"
    );
    let threads_with_pool = live_threads();

    for &port in &ports {
        kernel.inject(port, Value::U64(2));
    }
    kernel.run();
    // The wakeup counter lives in the pool: growth across runs proves the
    // pool object (and its parked threads) survived; a rebuilt pool
    // restarts the counter.
    let wakeups_second = kernel.pool_wakeups();
    assert!(
        wakeups_second > wakeups_first,
        "second run woke the same pool ({wakeups_first} → {wakeups_second})"
    );
    assert_eq!(
        live_threads(),
        threads_with_pool,
        "second run spawned no new threads"
    );
    assert_eq!(log.lock().unwrap().len(), 2 * ports.len());

    // The counters surface through the merged god-mode stats.
    let stats = kernel.stats();
    assert_eq!(stats.worker_wakeups, wakeups_second);
    assert!(stats.rounds >= 2, "each run executed at least one round");
}

#[test]
fn drop_mid_workload_joins_all_workers() {
    let _guard = serial();
    let base_threads = live_threads();
    let (mut kernel, ports, _log) = deploy_sinks(0xDEAD, 4, 4);

    for &port in &ports {
        kernel.inject(port, Value::U64(1));
    }
    kernel.run();
    assert_threads_settle_at(base_threads + 4, "pool of 4 parked workers is live");

    // Mid-workload: new messages queued, never drained.
    for &port in &ports {
        kernel.inject(port, Value::U64(2));
    }
    assert!(kernel.queue_len() > 0, "workload genuinely pending");
    drop(kernel);
    assert_threads_settle_at(base_threads, "drop joined every worker");
}

#[test]
fn sequential_and_single_shard_configurations_spawn_no_threads() {
    let _guard = serial();
    let base_threads = live_threads();

    // Multi-shard with a worker budget of 1: the sweep scheduler.
    let (mut kernel, ports, log) = deploy_sinks(0x5E0, 4, 1);
    for &port in &ports {
        kernel.inject(port, Value::U64(3));
    }
    kernel.run();
    assert_eq!(
        live_threads(),
        base_threads,
        "sweep scheduler is threadless"
    );
    assert_eq!(kernel.pool_wakeups(), 0);
    assert_eq!(log.lock().unwrap().len(), ports.len());
    assert!(kernel.stats().rounds >= 1, "sweeps still count as rounds");
    drop(kernel);

    // Single shard: the monolithic engine, no pool, no channels.
    let (mut kernel, ports, _log) = deploy_sinks(0x51, 1, 4);
    kernel.inject(ports[0], Value::U64(4));
    kernel.run();
    assert_eq!(live_threads(), base_threads);
    assert_eq!(kernel.pool_wakeups(), 0);
    let stats = kernel.stats();
    assert_eq!(
        (stats.rounds, stats.xshard_subround, stats.xshard_barrier),
        (0, 0, 0),
        "single-shard kernels never route or round"
    );
    assert_eq!(kernel.kmem_report().pool_bytes, 0);
}
