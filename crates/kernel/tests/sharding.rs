//! Multi-shard delivery semantics.
//!
//! The sharded engine must be an *invisible* parallelization: label
//! evaluation always runs on the destination shard against the same state
//! the monolithic engine would have read, per-sender-per-port FIFO order
//! survives routing, and independent traffic chains produce exactly the
//! same deliveries and drops no matter how the kernel is partitioned.
//!
//! The CI shard matrix sets `ASBESTOS_TEST_SHARDS`; the property tests
//! here always compare shard counts {1, 2, 3, 4} and additionally include
//! the matrix value when present.

use std::sync::{Arc, Mutex};

use asbestos_kernel::util::service_with_start;
use asbestos_kernel::{Category, DropReason, Handle, Kernel, Label, Level, SendArgs, Value};
use proptest::test_runner::TestRng;

/// Shard counts exercised by every test, plus the CI matrix value.
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 3, 4];
    if let Ok(v) = std::env::var("ASBESTOS_TEST_SHARDS") {
        if let Ok(n) = v.parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

// ---------------------------------------------------------------------
// Smoke: explicit cross-shard request/reply.
// ---------------------------------------------------------------------

#[test]
fn cross_shard_request_reply() {
    for shards in shard_counts() {
        let mut kernel = Kernel::new_sharded(7, shards);
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        // Echo server pinned to the last shard.
        kernel.spawn_on(
            shards - 1,
            "echo",
            Category::Other,
            service_with_start(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("echo.port", Value::Handle(p));
                },
                |sys, msg| {
                    if let Value::List(items) = &msg.body {
                        let reply_to = items[0].as_handle().unwrap();
                        let n = items[1].as_u64().unwrap();
                        sys.send(reply_to, Value::U64(n * 10)).unwrap();
                    }
                },
            ),
        );
        let echo = kernel.global_env("echo.port").unwrap().as_handle().unwrap();

        // Client pinned to shard 0: fires 5 requests, logs 5 replies.
        let l2 = log.clone();
        kernel.spawn_on(
            0,
            "client",
            Category::Other,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("client.port", Value::Handle(p));
                    for n in 1..=5u64 {
                        sys.send(echo, Value::List(vec![Value::Handle(p), Value::U64(n)]))
                            .unwrap();
                    }
                },
                move |_sys, msg| {
                    l2.lock().unwrap().push(msg.body.as_u64().unwrap());
                },
            ),
        );

        kernel.run();
        assert_eq!(
            *log.lock().unwrap(),
            vec![10, 20, 30, 40, 50],
            "{shards}-shard request/reply"
        );
        assert_eq!(kernel.stats().delivered, 10);
        assert_eq!(kernel.queue_len(), 0);
    }
}

/// Regression: a message parked in a shard outbox by a coordinator-phase
/// send (here: a handler running inside `spawn`'s on_start) must be
/// routed — and delivered — by the sequential `step()` scheduler, not
/// reported as Idle and silently stranded.
#[test]
fn step_routes_outbox_messages_before_reporting_idle() {
    let mut kernel = Kernel::new_sharded(13, 2);
    let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let l2 = log.clone();
    kernel.spawn_on(
        1,
        "receiver",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("r.port", Value::Handle(p));
            },
            move |_sys, msg| l2.lock().unwrap().push(msg.body.as_u64().unwrap()),
        ),
    );
    let target = kernel.global_env("r.port").unwrap().as_handle().unwrap();

    // The sender's on_start runs during spawn (coordinator phase) and
    // sends cross-shard: the message lands in shard 0's outbox while
    // every mailbox is empty.
    kernel.spawn_on(
        0,
        "sender",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.send(target, Value::U64(77)).unwrap();
            },
            |_, _| {},
        ),
    );
    assert_eq!(kernel.queue_len(), 1, "message parked in the outbox");

    // Drive with the sequential debug scheduler only.
    let mut steps = 0;
    while kernel.step() {
        steps += 1;
        assert!(steps < 100, "step() livelocked");
    }
    assert_eq!(*log.lock().unwrap(), vec![77], "outbox message delivered");
    assert_eq!(kernel.stats().delivered, 1);
    assert_eq!(kernel.queue_len(), 0);
}

// ---------------------------------------------------------------------
// Property: any shard count delivers/drops the same multiset as one.
// ---------------------------------------------------------------------

/// One chain's script: the sender performs these steps, in order, against
/// its dedicated receiver. Per-sender-per-port FIFO order is preserved by
/// the router, so each chain's outcome is independent of sharding — which
/// is exactly what the test pins.
#[derive(Clone)]
enum Step {
    /// Send tagged `n`, contaminated with sender handle `h` at level 3.
    /// Delivers iff the receiver's `Q_R(h)` has been raised first.
    Tainted { handle: usize, tag: u64 },
    /// Send carrying `D_R = {h at 3}`: raises the receiver's `Q_R(h)`
    /// (the sender holds ⋆ for its own handles, so Figure 4 permits it).
    RaiseRecv { handle: usize, tag: u64 },
    /// Plain untainted send; always delivers.
    Plain { tag: u64 },
}

/// Builds a deterministic randomized workload: `chains` independent
/// sender→receiver pairs, each with a scripted mix of tainted sends,
/// receive-label raises, and plain sends.
fn random_scripts(chains: usize, rng: &mut TestRng) -> Vec<Vec<Step>> {
    (0..chains)
        .map(|chain| {
            let steps = 4 + rng.below(20) as usize;
            let mut tag = (chain as u64) << 32;
            (0..steps)
                .map(|_| {
                    tag += 1;
                    match rng.below(3) {
                        0 => Step::Tainted {
                            handle: rng.below(3) as usize,
                            tag,
                        },
                        1 => Step::RaiseRecv {
                            handle: rng.below(3) as usize,
                            tag,
                        },
                        _ => Step::Plain { tag },
                    }
                })
                .collect()
        })
        .collect()
}

/// Everything a chain test needs to drive the workload by hand: the
/// kernel, per-chain receiver logs, the senders' trigger ports, and the
/// receivers' delivery ports (steal tests migrate those).
struct ChainRig {
    kernel: Kernel,
    logs: Vec<Arc<Mutex<Vec<u64>>>>,
    triggers: Vec<Handle>,
    recv_ports: Vec<Handle>,
}

/// Runs the chain workload on `shards` shards; returns per-chain receiver
/// logs plus (delivered, label drops, sent) counters.
fn run_chains(scripts: &[Vec<Step>], shards: usize, seed: u64) -> (Vec<Vec<u64>>, (u64, u64, u64)) {
    let mut rig = setup_chains(scripts, shards, seed);
    for &port in &rig.triggers {
        rig.kernel.inject(port, Value::Unit);
    }
    rig.kernel.run();
    assert_eq!(rig.kernel.queue_len(), 0);
    rig.outcome()
}

impl ChainRig {
    fn outcome(&self) -> (Vec<Vec<u64>>, (u64, u64, u64)) {
        let stats = self.kernel.stats();
        let traces = self
            .logs
            .iter()
            .map(|l| l.lock().unwrap().clone())
            .collect();
        (
            traces,
            (stats.delivered, stats.dropped_label_check, stats.sent),
        )
    }
}

/// Spawns the chain workload without injecting the triggers, so tests
/// can interleave injection, partial draining, and explicit port steals.
fn setup_chains(scripts: &[Vec<Step>], shards: usize, seed: u64) -> ChainRig {
    let mut kernel = Kernel::new_sharded(seed, shards);
    let logs: Vec<Arc<Mutex<Vec<u64>>>> = scripts
        .iter()
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let mut trigger_ports = Vec::new();
    let mut recv_ports = Vec::new();

    for (chain, script) in scripts.iter().enumerate() {
        // Receiver and sender deliberately land on *different* shards
        // (when there are several) so most chains route cross-shard.
        let recv_shard = chain % shards;
        let send_shard = (chain + 1) % shards;

        let l2 = logs[chain].clone();
        let recv_key = format!("chain{chain}.recv");
        let publish_key = recv_key.clone();
        kernel.spawn_on(
            recv_shard,
            &format!("recv{chain}"),
            Category::Other,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&publish_key, Value::Handle(p));
                },
                move |_sys, msg| {
                    l2.lock().unwrap().push(msg.body.as_u64().unwrap());
                },
            ),
        );
        let target = kernel.global_env(&recv_key).unwrap().as_handle().unwrap();
        recv_ports.push(target);

        let script = script.clone();
        let send_key = format!("chain{chain}.send");
        let publish_key = send_key.clone();
        kernel.spawn_on(
            send_shard,
            &format!("send{chain}"),
            Category::Other,
            service_with_start(
                move |sys| {
                    let handles = [sys.new_handle(), sys.new_handle(), sys.new_handle()];
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&publish_key, Value::Handle(p));
                    sys.set_env("h0", Value::Handle(handles[0]));
                    sys.set_env("h1", Value::Handle(handles[1]));
                    sys.set_env("h2", Value::Handle(handles[2]));
                },
                move |sys, _msg| {
                    let h = |sys: &asbestos_kernel::Sys<'_>, i: usize| {
                        sys.env(&format!("h{i}")).unwrap().as_handle().unwrap()
                    };
                    for step in &script {
                        match *step {
                            Step::Tainted { handle, tag } => {
                                let taint =
                                    Label::from_pairs(Level::Star, &[(h(sys, handle), Level::L3)]);
                                sys.send_args(
                                    target,
                                    Value::U64(tag),
                                    &SendArgs::new().contaminate(taint),
                                )
                                .unwrap();
                            }
                            Step::RaiseRecv { handle, tag } => {
                                let dr =
                                    Label::from_pairs(Level::Star, &[(h(sys, handle), Level::L3)]);
                                sys.send_args(
                                    target,
                                    Value::U64(tag),
                                    &SendArgs::new().raise_recv(dr),
                                )
                                .unwrap();
                            }
                            Step::Plain { tag } => {
                                sys.send(target, Value::U64(tag)).unwrap();
                            }
                        }
                    }
                },
            ),
        );
        trigger_ports.push(kernel.global_env(&send_key).unwrap().as_handle().unwrap());
    }

    ChainRig {
        kernel,
        logs,
        triggers: trigger_ports,
        recv_ports,
    }
}

#[test]
fn sharded_delivery_matches_single_shard() {
    let mut rng = TestRng::deterministic("sharding::multiset");
    for case in 0..12 {
        let scripts = random_scripts(6, &mut rng);
        let (base_traces, base_counts) = run_chains(&scripts, 1, 0x5A5A + case);
        for shards in shard_counts() {
            if shards == 1 {
                continue;
            }
            let (traces, counts) = run_chains(&scripts, shards, 0x5A5A + case);
            // Per-chain traces are *identical* (not just same multiset):
            // chains are independent and per-sender-per-port FIFO holds.
            assert_eq!(
                traces, base_traces,
                "case {case}: {shards}-shard per-chain delivery traces"
            );
            assert_eq!(
                counts, base_counts,
                "case {case}: {shards}-shard delivered/dropped/sent counters"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Sub-round routing: cross-shard hops no longer cost a round each.
// ---------------------------------------------------------------------

/// A 4-hop relay across shards 0→1→2→3. The pre-pool engine paid one
/// barrier round per hop; with sub-round routing the sweep scheduler
/// completes the whole chain in a single round, every hop picked up
/// mid-round through the inbound channels.
#[test]
fn forward_relay_completes_in_one_round() {
    let mut kernel = Kernel::new_sharded(21, 4);
    kernel.set_worker_threads(1); // deterministic sweep scheduler
    let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    // Stage i forwards to stage i+1; the last stage logs. Spawn in
    // reverse so each stage can resolve its successor's port at start.
    let l2 = log.clone();
    kernel.spawn_on(
        3,
        "stage3",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("stage3.port", Value::Handle(p));
            },
            move |_sys, msg| l2.lock().unwrap().push(msg.body.as_u64().unwrap()),
        ),
    );
    for stage in (0..3).rev() {
        let next = kernel
            .global_env(&format!("stage{}.port", stage + 1))
            .unwrap()
            .as_handle()
            .unwrap();
        let key = format!("stage{stage}.port");
        let publish_key = key.clone();
        kernel.spawn_on(
            stage,
            &format!("stage{stage}"),
            Category::Other,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&publish_key, Value::Handle(p));
                },
                move |sys, msg| {
                    sys.send(next, Value::U64(msg.body.as_u64().unwrap() + 1))
                        .unwrap();
                },
            ),
        );
    }
    let head = kernel
        .global_env("stage0.port")
        .unwrap()
        .as_handle()
        .unwrap();

    kernel.inject(head, Value::U64(0));
    kernel.run();

    assert_eq!(*log.lock().unwrap(), vec![3], "relay value walked 3 hops");
    let stats = kernel.stats();
    assert_eq!(
        stats.rounds, 1,
        "sub-round routing resolves a forward chain in one sweep"
    );
    assert_eq!(
        stats.xshard_subround, 3,
        "every hop was picked up mid-round"
    );
    assert_eq!(stats.xshard_barrier, 0, "no hop waited out a barrier");
}

// ---------------------------------------------------------------------
// Parallel rounds are deterministic: same workload, same trace.
// ---------------------------------------------------------------------

#[test]
fn parallel_runs_are_reproducible() {
    let mut rng = TestRng::deterministic("sharding::reproducible");
    let scripts = random_scripts(8, &mut rng);
    let (first_traces, first_counts) = run_chains(&scripts, 4, 99);
    for _ in 0..3 {
        let (traces, counts) = run_chains(&scripts, 4, 99);
        assert_eq!(traces, first_traces, "multi-shard run must be reproducible");
        assert_eq!(counts, first_counts);
    }
}

// ---------------------------------------------------------------------
// Per-port backpressure (the new queue bound).
// ---------------------------------------------------------------------

#[test]
fn per_port_queue_limit_drops_only_the_hot_port() {
    for shards in shard_counts() {
        let mut kernel = Kernel::new_sharded(11, shards);
        kernel.set_port_queue_limit(3);

        let seen: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        for (name, key) in [("hot", "hot.port"), ("cold", "cold.port")] {
            let s2 = seen.clone();
            kernel.spawn(
                name,
                Category::Other,
                service_with_start(
                    move |sys| {
                        let p = sys.new_port(Label::top());
                        sys.set_port_label(p, Label::top()).unwrap();
                        sys.publish_env(key, Value::Handle(p));
                    },
                    move |_sys, _msg| s2.lock().unwrap().push(name),
                ),
            );
        }
        let hot = kernel.global_env("hot.port").unwrap().as_handle().unwrap();
        let cold = kernel.global_env("cold.port").unwrap().as_handle().unwrap();

        // A single flooder bursts 10 at the hot port, then 2 at the cold
        // one, all within one handler activation (so nothing drains in
        // between). Only the hot port may drop.
        kernel.spawn(
            "flooder",
            Category::Other,
            service_with_start(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("flood.port", Value::Handle(p));
                },
                move |sys, _msg| {
                    for i in 0..10u64 {
                        sys.send(hot, Value::U64(i)).unwrap();
                    }
                    sys.send(cold, Value::U64(100)).unwrap();
                    sys.send(cold, Value::U64(101)).unwrap();
                },
            ),
        );
        let flood = kernel
            .global_env("flood.port")
            .unwrap()
            .as_handle()
            .unwrap();
        kernel.inject(flood, Value::Unit);
        kernel.run();

        let stats = kernel.stats();
        assert_eq!(
            stats.dropped_port_queue_full, 7,
            "{shards}-shard: 10 sends at bound 3 drop 7"
        );
        assert_eq!(stats.dropped_queue_full, 0, "shard-wide bound untouched");
        assert_eq!(stats.dropped_total(), 7);
        let seen = seen.lock().unwrap();
        assert_eq!(
            seen.iter().filter(|s| **s == "hot").count(),
            3,
            "{shards}-shard: hot port delivers up to its bound"
        );
        assert_eq!(
            seen.iter().filter(|s| **s == "cold").count(),
            2,
            "{shards}-shard: cold port never starves"
        );
    }
}

/// `DropReason::PortQueueFull` is part of the public vocabulary.
#[test]
fn port_queue_full_is_a_distinct_drop_reason() {
    assert_ne!(DropReason::PortQueueFull, DropReason::QueueFull);
    let _ = Handle::from_raw(1); // keep the import exercised on all paths
}

// ---------------------------------------------------------------------
// Work stealing: whole-queue port migration is delivery-invisible.
// ---------------------------------------------------------------------

/// Randomized steal schedules interleaved with partial draining: inject
/// everything, deliver a few messages, migrate a random receiver port
/// (its pending queue moves wholesale with it), repeat, then drain. The
/// per-chain traces — not just the multiset — must match the 1-shard
/// baseline: per-sender-per-port FIFO survives any sequence of steals.
#[test]
fn steal_schedules_preserve_fifo_and_multiset() {
    let mut rng = TestRng::deterministic("sharding::steals");
    let mut migrations_total = 0u32;
    for case in 0..8u64 {
        let scripts = random_scripts(6, &mut rng);
        let (base_traces, base_counts) = run_chains(&scripts, 1, 0xBEEF + case);
        for shards in shard_counts() {
            if shards == 1 {
                continue;
            }
            let mut rig = setup_chains(&scripts, shards, 0xBEEF + case);
            for &port in &rig.triggers {
                rig.kernel.inject(port, Value::Unit);
            }
            let mut migrations = 0u32;
            for _ in 0..6 {
                // Deliver a few messages so queues are mid-drain, then
                // steal a random receiver — pending messages and all.
                for _ in 0..=rng.below(8) {
                    if !rig.kernel.step() {
                        break;
                    }
                }
                let chain = rng.below(rig.recv_ports.len() as u64) as usize;
                let to = rng.below(shards as u64) as usize;
                let port = rig.recv_ports[chain];
                if rig.kernel.migrate_port_owner(port, to).is_some() {
                    migrations += 1;
                    assert_eq!(
                        rig.kernel.port_shard(port),
                        to,
                        "router directory tracks the migrated port"
                    );
                }
            }
            rig.kernel.run();
            assert_eq!(rig.kernel.queue_len(), 0);
            let (traces, counts) = rig.outcome();
            assert_eq!(
                traces, base_traces,
                "case {case}: {shards}-shard traces after {migrations} steals"
            );
            assert_eq!(
                counts, base_counts,
                "case {case}: {shards}-shard counters after {migrations} steals"
            );
            migrations_total += migrations;
        }
    }
    assert!(
        migrations_total > 20,
        "schedule exercised real migrations (got {migrations_total})"
    );
}

// ---------------------------------------------------------------------
// The tuner is not a cross-user channel.
// ---------------------------------------------------------------------

/// A victim's delivery traces must be bit-identical whether or not an
/// unrelated user floods the system while the control loop is armed and
/// reacting. The attacker's load may move the *attacker's* ports and
/// resize the *attacker's* shard caches — never alter what the victim
/// observes.
#[test]
fn tuner_reactions_to_a_flood_are_invisible_to_other_users() {
    let run = |with_attacker: bool| -> (Vec<u64>, u64) {
        let mut kernel = Kernel::new_sharded(31, 4);
        kernel.set_worker_threads(1);
        kernel.set_tuning_enabled(true);
        // Aggressive thresholds so the attacker's flood (thousands of
        // deliveries per window) trips the loop, while the victim's
        // trickle stays far below the activity floor.
        let mut policy = asbestos_kernel::DefaultPolicy::default();
        policy.min_busy_nanos = 200_000;
        policy.steal_ratio = 1.05;
        policy.steal_patience = 1;
        kernel.set_tune_policy(Box::new(policy));

        // Victim: spawned FIRST in both configurations so its handles,
        // ports, and placement are identical with and without the flood.
        let victim_log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let l2 = victim_log.clone();
        kernel.spawn_on(
            0,
            "victim-recv",
            Category::Other,
            service_with_start(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("victim.recv", Value::Handle(p));
                },
                move |_sys, msg| l2.lock().unwrap().push(msg.body.as_u64().unwrap()),
            ),
        );
        let victim_target = kernel
            .global_env("victim.recv")
            .unwrap()
            .as_handle()
            .unwrap();
        kernel.spawn_on(
            1,
            "victim-send",
            Category::Other,
            service_with_start(
                |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env("victim.send", Value::Handle(p));
                },
                move |sys, msg| {
                    let wave = msg.body.as_u64().unwrap();
                    for i in 0..3 {
                        sys.send(victim_target, Value::U64(wave * 10 + i)).unwrap();
                    }
                },
            ),
        );
        let victim_trigger = kernel
            .global_env("victim.send")
            .unwrap()
            .as_handle()
            .unwrap();

        // Attacker: one flooder fanning out to four sinks pinned to one
        // shard, so the shard runs hot and its ports are steal bait.
        let mut attacker_trigger = None;
        if with_attacker {
            let mut sinks = Vec::new();
            for i in 0..4 {
                let key = format!("sink{i}.port");
                let publish_key = key.clone();
                kernel.spawn_on(
                    3,
                    &format!("sink{i}"),
                    Category::Other,
                    service_with_start(
                        move |sys| {
                            let p = sys.new_port(Label::top());
                            sys.set_port_label(p, Label::top()).unwrap();
                            sys.publish_env(&publish_key, Value::Handle(p));
                        },
                        |_, _| {},
                    ),
                );
                sinks.push(kernel.global_env(&key).unwrap().as_handle().unwrap());
            }
            kernel.spawn_on(
                2,
                "flooder",
                Category::Other,
                service_with_start(
                    |sys| {
                        let p = sys.new_port(Label::top());
                        sys.set_port_label(p, Label::top()).unwrap();
                        sys.publish_env("flood.port", Value::Handle(p));
                    },
                    move |sys, _msg| {
                        for round in 0..400u64 {
                            for &sink in &sinks {
                                sys.send(sink, Value::U64(round)).unwrap();
                            }
                        }
                    },
                ),
            );
            attacker_trigger = Some(
                kernel
                    .global_env("flood.port")
                    .unwrap()
                    .as_handle()
                    .unwrap(),
            );
        }

        // Several waves so the control loop gets multiple observation
        // windows: arm, observe, steal, re-observe.
        for wave in 0..6u64 {
            kernel.inject(victim_trigger, Value::U64(wave));
            if let Some(flood) = attacker_trigger {
                kernel.inject(flood, Value::Unit);
            }
            kernel.run();
        }
        assert_eq!(kernel.queue_len(), 0);

        let trace = victim_log.lock().unwrap().clone();
        (trace, kernel.tuner_actions())
    };

    let (quiet_trace, quiet_actions) = run(false);
    let (noisy_trace, noisy_actions) = run(true);

    // The victim-only system sits below the activity floor: armed but
    // untouched. The flood makes the tuner actually react — this test is
    // only meaningful if it does.
    assert_eq!(quiet_actions, 0, "victim trickle stays below the floor");
    assert!(
        noisy_actions > 0,
        "flood must trip the control loop for this regression to bite"
    );
    // And none of those reactions — steals, resizes — are visible to the
    // victim: its delivery trace (the only surface a guest can observe
    // in this model) is bit-identical.
    assert_eq!(noisy_trace, quiet_trace, "victim trace unchanged by flood");
    assert_eq!(
        quiet_trace.len(),
        18,
        "victim saw every one of its own messages"
    );
}

// ---------------------------------------------------------------------
// Determinism guard: ambient tuning never touches deterministic modes.
// ---------------------------------------------------------------------

/// Without an explicit `set_tuning_enabled(true)` override, the tuner
/// must stay inert in every configuration the golden-trace suites pin:
/// the sequential sweep (`workers == 1`), a single shard, and any run
/// with tuning explicitly forced off — even under a hair-trigger policy
/// and a workload that would otherwise trip every threshold.
#[test]
fn ambient_tuning_is_inert_in_deterministic_modes() {
    let hair_trigger = || {
        let mut policy = asbestos_kernel::DefaultPolicy::default();
        policy.min_busy_nanos = 0;
        policy.steal_ratio = 1.0;
        policy.steal_patience = 0;
        Box::new(policy)
    };
    let mut rng = TestRng::deterministic("sharding::inert");
    let scripts = random_scripts(8, &mut rng);

    // Sequential sweep at 4 shards, ambient (env-default) tuning.
    let mut rig = setup_chains(&scripts, 4, 0xD00D);
    rig.kernel.set_worker_threads(1);
    rig.kernel.set_tune_policy(hair_trigger());
    assert!(
        !rig.kernel.tuning_active(),
        "sweep mode: ambient tuning off"
    );
    for &port in &rig.triggers {
        rig.kernel.inject(port, Value::Unit);
    }
    rig.kernel.run();
    assert_eq!(rig.kernel.tuner_actions(), 0, "sweep mode: no actions");

    // Single shard: inert even when explicitly forced on.
    let mut rig = setup_chains(&scripts, 1, 0xD00D);
    rig.kernel.set_tuning_enabled(true);
    rig.kernel.set_tune_policy(hair_trigger());
    assert!(!rig.kernel.tuning_active(), "1 shard: tuning can't arm");
    for &port in &rig.triggers {
        rig.kernel.inject(port, Value::Unit);
    }
    rig.kernel.run();
    assert_eq!(rig.kernel.tuner_actions(), 0, "1 shard: no actions");

    // Parallel pool with tuning explicitly forced off.
    let mut rig = setup_chains(&scripts, 4, 0xD00D);
    rig.kernel.set_worker_threads(4);
    rig.kernel.set_tuning_enabled(false);
    rig.kernel.set_tune_policy(hair_trigger());
    assert!(!rig.kernel.tuning_active(), "forced off: tuning off");
    for &port in &rig.triggers {
        rig.kernel.inject(port, Value::Unit);
    }
    rig.kernel.run();
    assert_eq!(rig.kernel.tuner_actions(), 0, "forced off: no actions");
}
