//! Property tests for the event-process memory model: arbitrary sequences
//! of writes, reads, and `ep_clean` calls against a flat reference model.
//!
//! The oracle is a pair of byte maps (base contents, EP overlay); the
//! system under test is the real COW machinery (base page table, EP delta,
//! frame pool) driven through the syscall surface.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::ep_service_fn;
use asbestos_kernel::{Category, Kernel, Label, Value};
use proptest::prelude::*;

/// One memory operation.
#[derive(Clone, Debug)]
enum MemOp {
    /// Write `data` at `addr` (base process during setup, EP afterwards).
    Write { addr: u64, data: Vec<u8> },
    /// Read `len` bytes at `addr` and compare against the oracle.
    Read { addr: u64, len: usize },
    /// `ep_clean` over `[addr, addr+len)`.
    Clean { addr: u64, len: usize },
}

/// Keep the address space small so pages collide constantly.
const SPACE: u64 = 6 * 4096;

fn arb_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (0..SPACE - 64, prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(addr, data)| { MemOp::Write { addr, data } }),
        (0..SPACE - 64, 1usize..64).prop_map(|(addr, len)| MemOp::Read { addr, len }),
        (0..SPACE - 64, 1usize..8192).prop_map(|(addr, len)| MemOp::Clean { addr, len }),
    ]
}

/// The flat oracle: base bytes plus an overlay of EP-private pages.
#[derive(Default)]
struct Oracle {
    base: BTreeMap<u64, u8>,
    /// Private page contents, per page number.
    overlay: BTreeMap<u64, [u8; 4096]>,
}

impl Oracle {
    fn base_page(&self, vpn: u64) -> [u8; 4096] {
        let mut page = [0u8; 4096];
        for (addr, b) in self.base.range(vpn * 4096..(vpn + 1) * 4096) {
            page[(addr % 4096) as usize] = *b;
        }
        page
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            let vpn = a / 4096;
            if !self.overlay.contains_key(&vpn) {
                let page = self.base_page(vpn);
                self.overlay.insert(vpn, page);
            }
            self.overlay.get_mut(&vpn).expect("inserted above")[(a % 4096) as usize] = b;
        }
    }

    fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64)
            .map(|i| {
                let a = addr + i;
                let vpn = a / 4096;
                match self.overlay.get(&vpn) {
                    Some(page) => page[(a % 4096) as usize],
                    None => self.base.get(&a).copied().unwrap_or(0),
                }
            })
            .collect()
    }

    fn clean(&mut self, addr: u64, len: usize) {
        let start_vpn = addr / 4096;
        let end_vpn = (addr + len as u64).div_ceil(4096);
        for vpn in start_vpn..end_vpn {
            self.overlay.remove(&vpn);
        }
    }

    fn private_pages(&self) -> usize {
        self.overlay.len()
    }
}

/// Runs the op sequence through a real event process and the oracle.
fn run_case(base_writes: Vec<(u64, Vec<u8>)>, ops: Vec<MemOp>) {
    let mut kernel = Kernel::new(7);
    let mut oracle = Oracle::default();

    let ops_cell: Arc<Mutex<Vec<MemOp>>> = Arc::new(Mutex::new(ops));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let pages: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));

    // Base memory setup mirrors into the oracle's base map.
    let base_for_service = base_writes.clone();
    for (addr, data) in &base_writes {
        for (i, &b) in data.iter().enumerate() {
            oracle.base.insert(addr + i as u64, b);
        }
    }

    let ops2 = ops_cell.clone();
    let fail2 = failures.clone();
    let pages2 = pages.clone();
    kernel.spawn_ep_service(
        "mem",
        Category::Other,
        ep_service_fn(
            move |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("mem.port", Value::Handle(p));
                for (addr, data) in &base_for_service {
                    sys.mem_write(*addr, data).unwrap();
                }
            },
            move |sys, _msg| {
                let mut oracle_ep = OracleEp::default();
                for op in ops2.lock().unwrap().iter() {
                    match op {
                        MemOp::Write { addr, data } => {
                            sys.mem_write(*addr, data).unwrap();
                            oracle_ep.writes.push((*addr, data.clone()));
                        }
                        MemOp::Read { addr, len } => {
                            let got = sys.mem_read(*addr, *len).unwrap();
                            oracle_ep.reads.push((*addr, *len, got));
                        }
                        MemOp::Clean { addr, len } => {
                            sys.ep_clean(*addr, *len).unwrap();
                            oracle_ep.cleans.push((*addr, *len));
                        }
                    }
                }
                *pages2.lock().unwrap() = sys.ep_private_pages();
                // Stash the observations for the test body to check.
                fail2.lock().unwrap().push(serde_free_encode(&oracle_ep));
            },
        ),
    );

    let port = kernel.global_env("mem.port").unwrap().as_handle().unwrap();
    kernel.inject(port, Value::Unit);
    kernel.run();

    // Replay against the oracle in the same order, checking reads.
    let encoded = failures.lock().unwrap().first().cloned().expect("EP ran");
    let observed = serde_free_decode(&encoded);
    let mut idx = 0;
    for op in ops_cell.lock().unwrap().iter() {
        match op {
            MemOp::Write { addr, data } => oracle.write(*addr, data),
            MemOp::Read { addr, len } => {
                let expect = oracle.read(*addr, *len);
                let (oaddr, olen, got) = &observed.reads[idx];
                assert_eq!((*oaddr, *olen), (*addr, *len));
                assert_eq!(got, &expect, "read mismatch at {addr:#x}+{len}");
                idx += 1;
            }
            MemOp::Clean { addr, len } => oracle.clean(*addr, *len),
        }
    }
    assert_eq!(
        *pages.lock().unwrap(),
        oracle.private_pages(),
        "private page count"
    );
}

/// Observations captured inside the handler (encoded without serde to keep
/// the closure `'static`-friendly and dependency-free).
#[derive(Default, Clone)]
struct OracleEp {
    writes: Vec<(u64, Vec<u8>)>,
    reads: Vec<(u64, usize, Vec<u8>)>,
    cleans: Vec<(u64, usize)>,
}

fn serde_free_encode(o: &OracleEp) -> String {
    let reads: Vec<String> = o
        .reads
        .iter()
        .map(|(a, l, d)| {
            format!(
                "{a}:{l}:{}",
                d.iter().map(|b| format!("{b:02x}")).collect::<String>()
            )
        })
        .collect();
    reads.join(";")
}

fn serde_free_decode(s: &str) -> OracleEp {
    let mut out = OracleEp::default();
    if s.is_empty() {
        return out;
    }
    for part in s.split(';') {
        let mut bits = part.split(':');
        let a: u64 = bits.next().unwrap().parse().unwrap();
        let l: usize = bits.next().unwrap().parse().unwrap();
        let hex = bits.next().unwrap();
        let bytes: Vec<u8> = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
            .collect();
        out.reads.push((a, l, bytes));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ep_memory_matches_flat_model(
        base in prop::collection::vec((0..SPACE - 64, prop::collection::vec(any::<u8>(), 1..64)), 0..6),
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        run_case(base, ops);
    }
}

#[test]
fn regression_write_clean_read() {
    // Clean must revert to *base* content, not zero, when a base page
    // exists under the overlay.
    run_case(
        vec![(100, vec![1, 2, 3, 4])],
        vec![
            MemOp::Write {
                addr: 100,
                data: vec![9, 9],
            },
            MemOp::Read { addr: 100, len: 4 },
            MemOp::Clean { addr: 0, len: 4096 },
            MemOp::Read { addr: 100, len: 4 },
        ],
    );
}

#[test]
fn regression_cross_page_write() {
    run_case(
        vec![],
        vec![
            MemOp::Write {
                addr: 4090,
                data: vec![5; 20],
            },
            MemOp::Read {
                addr: 4088,
                len: 30,
            },
            MemOp::Clean { addr: 4096, len: 1 },
            MemOp::Read {
                addr: 4090,
                len: 20,
            },
        ],
    );
}
