//! Integration tests for the event-process abstraction (§6): creation on
//! base-port delivery, per-EP labels, copy-on-write memory isolation,
//! `ep_clean`/`ep_exit`, and the paper's session-cache usage pattern.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::{ep_service_fn, service_with_start, Recorder};
use asbestos_kernel::{Category, EpId, Kernel, Label, Level, SendArgs, Value};

/// Address where workers keep their per-session counter.
const SESSION_ADDR: u64 = 0x10_000;
/// Address of base-initialized shared data.
const SHARED_ADDR: u64 = 0x0;
/// Scratch area cleaned between events.
const SCRATCH_ADDR: u64 = 0x7f_0000;

/// Spawns the standard test worker: an EP service that
/// * reads base-shared data,
/// * keeps a per-session event counter in private memory,
/// * creates a session port on first activation and reports it (plus the
///   counter) to the recorder port.
fn spawn_worker(kernel: &mut Kernel) -> asbestos_kernel::ProcessId {
    kernel.spawn_ep_service(
        "worker",
        Category::Okws,
        ep_service_fn(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("worker.port", Value::Handle(p));
                sys.mem_write(SHARED_ADDR, b"SHARED-BY-ALL").unwrap();
            },
            |sys, _msg| {
                // Verify base memory is visible.
                let shared = sys.mem_read(SHARED_ADDR, 13).unwrap();
                assert_eq!(&shared, b"SHARED-BY-ALL");

                // Bump the private session counter (written via COW).
                let count = sys.mem_read_u64(SESSION_ADDR).unwrap() + 1;
                sys.mem_write_u64(SESSION_ADDR, count).unwrap();

                // Scratch writes that a tidy worker cleans before yielding.
                sys.mem_write(SCRATCH_ADDR, &[0xAA; 64]).unwrap();

                // First activation: make a session port (the uW of §7.2).
                let session_port = if sys.is_new_ep() {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.mem_write_u64(SESSION_ADDR + 8, p.raw()).unwrap();
                    p
                } else {
                    asbestos_kernel::Handle::from_raw(sys.mem_read_u64(SESSION_ADDR + 8).unwrap())
                };

                // Report (session_port, count) to the recorder.
                let rec = sys.env("rec.port").unwrap().as_handle().unwrap();
                sys.send(
                    rec,
                    Value::List(vec![Value::Handle(session_port), Value::U64(count)]),
                )
                .unwrap();

                sys.ep_clean(SCRATCH_ADDR, 64).unwrap();
            },
        ),
    )
}

#[test]
fn base_port_forks_a_fresh_ep_per_message() {
    let mut kernel = Kernel::new(21);
    let (rec, log) = Recorder::new("rec.port");
    kernel.spawn("recorder", Category::Other, Box::new(rec));
    let worker = spawn_worker(&mut kernel);
    let wport = kernel
        .global_env("worker.port")
        .unwrap()
        .as_handle()
        .unwrap();

    for _ in 0..3 {
        kernel.inject(wport, Value::Unit);
    }
    kernel.run();

    assert_eq!(kernel.stats().eps_created, 3);
    assert_eq!(kernel.live_eps(worker).len(), 3);
    // Each EP saw count == 1: fresh private memory, not shared.
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 3);
    for entry in log.iter() {
        let items = entry.body.as_list().unwrap();
        assert_eq!(items[1].as_u64(), Some(1));
    }
    // Three distinct session ports.
    let mut ports: Vec<_> = log
        .iter()
        .map(|e| e.body.as_list().unwrap()[0].as_handle().unwrap())
        .collect();
    ports.sort();
    ports.dedup();
    assert_eq!(ports.len(), 3);
}

#[test]
fn ep_port_resumes_the_same_ep() {
    let mut kernel = Kernel::new(22);
    let (rec, log) = Recorder::new("rec.port");
    kernel.spawn("recorder", Category::Other, Box::new(rec));
    spawn_worker(&mut kernel);
    let wport = kernel
        .global_env("worker.port")
        .unwrap()
        .as_handle()
        .unwrap();

    kernel.inject(wport, Value::Unit);
    kernel.run();
    let session_port = log.lock().unwrap()[0].body.as_list().unwrap()[0]
        .as_handle()
        .unwrap();

    // Messages to the session port reactivate the same EP: its counter
    // keeps incrementing in its private pages (§7.3's session pattern).
    kernel.inject(session_port, Value::Unit);
    kernel.inject(session_port, Value::Unit);
    kernel.run();

    assert_eq!(kernel.stats().eps_created, 1, "no extra EPs forked");
    let log = log.lock().unwrap();
    let counts: Vec<u64> = log
        .iter()
        .map(|e| e.body.as_list().unwrap()[1].as_u64().unwrap())
        .collect();
    assert_eq!(counts, vec![1, 2, 3]);
}

#[test]
fn ep_memory_is_isolated_and_cow() {
    let mut kernel = Kernel::new(23);
    let (rec, log) = Recorder::new("rec.port");
    kernel.spawn("recorder", Category::Other, Box::new(rec));
    let worker = spawn_worker(&mut kernel);
    let wport = kernel
        .global_env("worker.port")
        .unwrap()
        .as_handle()
        .unwrap();

    kernel.inject(wport, Value::Unit);
    kernel.inject(wport, Value::Unit);
    kernel.run();

    // Both EPs wrote SESSION_ADDR; each has a private copy, and the base
    // page table does not contain the session page at all.
    let eps = kernel.live_eps(worker);
    assert_eq!(eps.len(), 2);
    for &eid in &eps {
        // Session page + scratch was cleaned, so exactly 1 private page
        // (session port stored alongside the counter on the same page).
        assert_eq!(
            kernel.event_process(eid).delta.len(),
            1,
            "after ep_clean only the session page should remain"
        );
    }
    // Base process has only the shared page.
    assert_eq!(kernel.process(worker).page_table.len(), 1);
    // Counters were independent (both saw 1).
    let log = log.lock().unwrap();
    assert_eq!(log[0].body.as_list().unwrap()[1].as_u64(), Some(1));
    assert_eq!(log[1].body.as_list().unwrap()[1].as_u64(), Some(1));
}

#[test]
fn ep_clean_discards_scratch_pages() {
    let mut kernel = Kernel::new(24);
    let (rec, _log) = Recorder::new("rec.port");
    kernel.spawn("recorder", Category::Other, Box::new(rec));
    let worker = kernel.spawn_ep_service(
        "messy",
        Category::Okws,
        ep_service_fn(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("messy.port", Value::Handle(p));
            },
            |sys, msg| {
                // Dirty three scratch pages and one durable page.
                sys.mem_write(SCRATCH_ADDR, &[1; 4096]).unwrap();
                sys.mem_write(SCRATCH_ADDR + 4096, &[2; 4096]).unwrap();
                sys.mem_write(SCRATCH_ADDR + 8192, &[3; 100]).unwrap();
                sys.mem_write_u64(SESSION_ADDR, 7).unwrap();
                assert_eq!(sys.ep_private_pages(), 4);
                if msg.body.as_str() == Some("tidy") {
                    sys.ep_clean(SCRATCH_ADDR, 3 * 4096).unwrap();
                    assert_eq!(sys.ep_private_pages(), 1);
                    // Cleaned pages revert to base contents (zeros here).
                    let back = sys.mem_read(SCRATCH_ADDR, 4).unwrap();
                    assert_eq!(back, vec![0, 0, 0, 0]);
                }
            },
        ),
    );
    let port = kernel
        .global_env("messy.port")
        .unwrap()
        .as_handle()
        .unwrap();
    kernel.inject(port, Value::Str("tidy".into()));
    kernel.inject(port, Value::Str("messy".into()));
    kernel.run();

    let eps = kernel.live_eps(worker);
    assert_eq!(eps.len(), 2);
    let pages: Vec<usize> = eps
        .iter()
        .map(|&e| kernel.event_process(e).delta.len())
        .collect();
    // The tidy EP kept 1 page; the messy one kept all 4 (the paper's
    // "active session" worst case works exactly like this, §9.1).
    let mut sorted = pages.clone();
    sorted.sort();
    assert_eq!(sorted, vec![1, 4]);
}

#[test]
fn ep_exit_frees_pages_and_ports() {
    let mut kernel = Kernel::new(25);
    let (rec, log) = Recorder::new("rec.port");
    kernel.spawn("recorder", Category::Other, Box::new(rec));
    let worker = kernel.spawn_ep_service(
        "transient",
        Category::Okws,
        ep_service_fn(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("transient.port", Value::Handle(p));
            },
            |sys, _msg| {
                sys.mem_write(SESSION_ADDR, &[9; 4096]).unwrap();
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                let rec = sys.env("rec.port").unwrap().as_handle().unwrap();
                sys.send(rec, Value::Handle(p)).unwrap();
                sys.ep_exit().unwrap();
            },
        ),
    );
    let port = kernel
        .global_env("transient.port")
        .unwrap()
        .as_handle()
        .unwrap();
    let frames_before = kernel.kmem_report().user_frame_bytes;
    kernel.inject(port, Value::Unit);
    kernel.run();

    assert_eq!(kernel.stats().eps_created, 1);
    assert_eq!(kernel.stats().eps_exited, 1);
    assert!(kernel.live_eps(worker).is_empty());
    // The EP's private page was released.
    assert_eq!(kernel.kmem_report().user_frame_bytes, frames_before);
    // Its session port is dead: messages to it are dropped.
    let dead_port = log.lock().unwrap()[0].body.as_handle().unwrap();
    kernel.inject(dead_port, Value::Unit);
    kernel.run();
    assert_eq!(kernel.stats().dropped_no_port, 1);
}

#[test]
fn ep_labels_are_private_to_each_ep() {
    // §6.1: "the ﬁle server would end up contaminating an event process's
    // send label with the user's handle, correctly reflecting that just the
    // event process was contaminated."
    let mut kernel = Kernel::new(26);
    let (rec, _log) = Recorder::new("rec.port");
    kernel.spawn("recorder", Category::Other, Box::new(rec));
    let worker = kernel.spawn_ep_service(
        "labeled",
        Category::Okws,
        ep_service_fn(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("labeled.port", Value::Handle(p));
            },
            |_sys, _msg| {},
        ),
    );
    let wport = kernel
        .global_env("labeled.port")
        .unwrap()
        .as_handle()
        .unwrap();

    // A taint-owner contaminates the worker differently per message.
    kernel.spawn(
        "tainter",
        Category::Other,
        service_with_start(
            move |sys| {
                let ut = sys.new_handle();
                let vt = sys.new_handle();
                sys.publish_env("ut", Value::Handle(ut));
                sys.publish_env("vt", Value::Handle(vt));
                for t in [ut, vt] {
                    let cs = Label::from_pairs(Level::Star, &[(t, Level::L3)]);
                    let dr = Label::from_pairs(Level::Star, &[(t, Level::L3)]);
                    sys.send_args(
                        wport,
                        Value::Unit,
                        &SendArgs::new().contaminate(cs).raise_recv(dr),
                    )
                    .unwrap();
                }
            },
            |_, _| {},
        ),
    );
    kernel.run();

    let ut = kernel.global_env("ut").unwrap().as_handle().unwrap();
    let vt = kernel.global_env("vt").unwrap().as_handle().unwrap();
    let eps = kernel.live_eps(worker);
    assert_eq!(eps.len(), 2);
    let labels: Vec<(Level, Level)> = eps
        .iter()
        .map(|&e| {
            let ep = kernel.event_process(e);
            (ep.send_label.get(ut), ep.send_label.get(vt))
        })
        .collect();
    // One EP is uT-tainted only, the other vT-tainted only.
    assert!(labels.contains(&(Level::L3, Level::L1)));
    assert!(labels.contains(&(Level::L1, Level::L3)));
    // The base process stays untainted: future users fork clean EPs.
    let base = kernel.process(worker);
    assert_eq!(base.send_label.get(ut), Level::L1);
    assert_eq!(base.send_label.get(vt), Level::L1);
}

#[test]
fn tainted_ep_cannot_reach_other_users_session_port() {
    // The §7.2 isolation argument, reduced to its kernel mechanics: W[u]
    // (tainted uT 3) must not be able to send to W[v]'s session port once
    // W[v] is tainted vT 3 — and vice versa.
    let mut kernel = Kernel::new(27);
    let (rec, log) = Recorder::new("rec.port");
    let rec_pid = kernel.spawn("recorder", Category::Other, Box::new(rec));
    // The recorder plays the role of trusted infrastructure that may see
    // any user's taint (out-of-band label assignment, as in §5.2).
    kernel.set_process_labels(rec_pid, None, Some(Label::top()));
    kernel.spawn_ep_service(
        "worker",
        Category::Okws,
        ep_service_fn(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("w.port", Value::Handle(p));
            },
            |sys, msg| {
                match msg.body.as_str() {
                    // First event: create our session port and report it.
                    None => {
                        let p = sys.new_port(Label::top());
                        sys.set_port_label(p, Label::top()).unwrap();
                        let rec = sys.env("rec.port").unwrap().as_handle().unwrap();
                        sys.send(rec, Value::Handle(p)).unwrap();
                    }
                    // Attack event: try to message another session's port.
                    Some(_) => {
                        let target = asbestos_kernel::Handle::from_raw(
                            msg.body.as_str().unwrap().parse::<u64>().unwrap(),
                        );
                        sys.send(target, Value::Str("stolen".into())).unwrap();
                    }
                }
            },
        ),
    );
    let wport = kernel.global_env("w.port").unwrap().as_handle().unwrap();

    // Contaminate two sessions with different user taints.
    kernel.spawn(
        "tainter",
        Category::Other,
        service_with_start(
            move |sys| {
                for _ in 0..2 {
                    let t = sys.new_handle();
                    let cs = Label::from_pairs(Level::Star, &[(t, Level::L3)]);
                    let dr = Label::from_pairs(Level::Star, &[(t, Level::L3)]);
                    sys.send_args(
                        wport,
                        Value::Unit,
                        &SendArgs::new().contaminate(cs).raise_recv(dr),
                    )
                    .unwrap();
                }
            },
            |_, _| {},
        ),
    );
    kernel.run();
    let log_snapshot: Vec<_> = log.lock().unwrap().iter().map(|e| e.body.clone()).collect();
    assert_eq!(log_snapshot.len(), 2);
    let port_u = log_snapshot[0].as_handle().unwrap();
    let port_v = log_snapshot[1].as_handle().unwrap();

    // Tell session u to attack session v's port.
    kernel.inject(port_u, Value::Str(format!("{}", port_v.raw())));
    let delivered_before = kernel.stats().delivered;
    kernel.run();
    // The attack message itself was delivered to u's EP; u's forward to
    // v's port was dropped by the label check (u's taint ≠ v's taint).
    assert_eq!(kernel.stats().delivered, delivered_before + 1);
    assert_eq!(kernel.stats().dropped_label_check, 1);
}

#[test]
fn ep_syscall_guards() {
    let mut kernel = Kernel::new(28);
    let errors = Arc::new(Mutex::new(Vec::new()));
    let e2 = errors.clone();
    kernel.spawn(
        "plain",
        Category::Other,
        service_with_start(
            move |sys| {
                // ep_clean/ep_exit outside an event process must fail.
                e2.lock().unwrap().push(sys.ep_clean(0, 10).unwrap_err());
                e2.lock().unwrap().push(sys.ep_exit().unwrap_err());
            },
            |_, _| {},
        ),
    );
    kernel.run();
    use asbestos_kernel::SysError;
    assert_eq!(
        *errors.lock().unwrap(),
        vec![SysError::NotEventProcess, SysError::NotEventProcess]
    );
}

#[test]
fn ep_struct_accounting_matches_paper() {
    // §6.1: EP kernel state is 44 bytes (plus labels); a process is 320.
    let mut kernel = Kernel::new(29);
    kernel.spawn_ep_service(
        "w",
        Category::Okws,
        ep_service_fn(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("w.port", Value::Handle(p));
            },
            |_, _| {},
        ),
    );
    let wport = kernel.global_env("w.port").unwrap().as_handle().unwrap();
    let before = kernel.kmem_report();
    kernel.inject(wport, Value::Unit);
    kernel.run();
    let after = kernel.kmem_report();
    // One new EP: 44 bytes + two ~300-byte labels.
    assert_eq!(after.ep_bytes - before.ep_bytes, 44 + 600);
}

#[test]
fn many_sessions_cost_about_one_page_each() {
    // The headline claim, at kernel granularity: N cached sessions, each
    // holding one dirty page, cost ~N pages of user memory plus small
    // kernel overhead — not N process images.
    let mut kernel = Kernel::new(30);
    let (rec, _log) = Recorder::new("rec.port");
    kernel.spawn("recorder", Category::Other, Box::new(rec));
    let worker = spawn_worker(&mut kernel);
    let wport = kernel
        .global_env("worker.port")
        .unwrap()
        .as_handle()
        .unwrap();

    let n = 500;
    let before = kernel.kmem_report();
    for _ in 0..n {
        kernel.inject(wport, Value::Unit);
    }
    kernel.run();
    let after = kernel.kmem_report();

    let user_pages = (after.user_frame_bytes - before.user_frame_bytes) / 4096;
    assert_eq!(user_pages, n, "exactly one private page per session");
    let kernel_overhead = after.total_bytes()
        - before.total_bytes()
        - (after.user_frame_bytes - before.user_frame_bytes);
    let per_session = kernel_overhead / n;
    // EP struct + labels + session-port vnode + port label: well under a
    // page; Figure 6 measures ~0.5 page in the full OKWS configuration.
    assert!(
        (600..3000).contains(&per_session),
        "kernel overhead per session out of range: {per_session} bytes"
    );
    // And no EpId collisions: every session is its own EP.
    assert_eq!(kernel.stats().eps_created as usize, n);
    let ids: Vec<EpId> = kernel.live_eps(worker);
    assert_eq!(ids.len(), n);
}
