//! Integration tests for the Figure 4 IPC semantics: every rule in the
//! paper's `send`/`new_port`/`set_port_label` specification, exercised
//! through real processes on a running kernel.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::{service_with_start, Recorder};
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, SendArgs, SysError, Value};

fn taint(h: Handle) -> Label {
    Label::from_pairs(Level::Star, &[(h, Level::L3)])
}

fn grant(h: Handle) -> Label {
    Label::from_pairs(Level::L3, &[(h, Level::Star)])
}

fn raise(h: Handle) -> Label {
    Label::from_pairs(Level::Star, &[(h, Level::L3)])
}

// ---------------------------------------------------------------------
// Basic transport.
// ---------------------------------------------------------------------

#[test]
fn default_processes_can_communicate() {
    // Default send label {1} ⊑ default receive label {2}: ordinary
    // processes exchange messages freely once a port is open.
    let mut kernel = Kernel::new(1);
    let (rec, log) = Recorder::new("r.port");
    kernel.spawn("receiver", Category::Other, Box::new(rec));
    let rport = kernel.global_env("r.port").unwrap().as_handle().unwrap();

    kernel.spawn(
        "sender",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.send(rport, Value::Str("hello".into())).unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(log.lock().unwrap().len(), 1);
    assert_eq!(log.lock().unwrap()[0].body.as_str(), Some("hello"));
}

#[test]
fn fresh_ports_are_closed_until_granted() {
    // Figure 4: new_port sets p_R(p) ← 0 and P_S(p) ← ⋆; since every other
    // process has P_S(p) ≥ 1, nothing gets through until the creator acts.
    let mut kernel = Kernel::new(2);
    let received = Arc::new(Mutex::new(0u32));
    let r2 = received.clone();
    kernel.spawn(
        "owner",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.publish_env("closed.port", Value::Handle(p));
            },
            move |_, _| *r2.lock().unwrap() += 1,
        ),
    );
    let p = kernel
        .global_env("closed.port")
        .unwrap()
        .as_handle()
        .unwrap();

    kernel.spawn(
        "stranger",
        Category::Other,
        service_with_start(
            move |sys| {
                // send reports success; the drop is silent (§4).
                sys.send(p, Value::Unit).unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(*received.lock().unwrap(), 0);
    assert_eq!(kernel.stats().dropped_label_check, 1);
    assert_eq!(kernel.stats().delivered, 0);
}

#[test]
fn capability_grant_and_redistribution() {
    // §5.5: the creator grants send rights with D_S = {p ⋆, 3}; the grantee
    // can redistribute the right further — exactly like a capability.
    let mut kernel = Kernel::new(3);
    let received = Arc::new(Mutex::new(Vec::<String>::new()));

    // Owner: creates the protected port; counts what arrives.
    let r2 = received.clone();
    kernel.spawn(
        "owner",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.publish_env("cap.port", Value::Handle(p));
                // A command port the test drives (open to all).
                let cmd = sys.new_port(Label::top());
                sys.set_port_label(cmd, Label::top()).unwrap();
                sys.publish_env("owner.cmd", Value::Handle(cmd));
            },
            move |sys, msg| match msg.body.as_str() {
                Some("grant-to-alice") => {
                    let p = sys.env("cap.port").unwrap().as_handle().unwrap();
                    let alice = sys.env("alice.cmd").unwrap().as_handle().unwrap();
                    sys.send_args(
                        alice,
                        Value::Str("you-may-send".into()),
                        &SendArgs::new().grant(grant(p)),
                    )
                    .unwrap();
                }
                _ => r2.lock().unwrap().push(format!("{}", msg.body)),
            },
        ),
    );
    let cap_port = kernel.global_env("cap.port").unwrap().as_handle().unwrap();

    // Alice: when told, sends to the protected port and regrants to Bob.
    kernel.spawn(
        "alice",
        Category::Other,
        service_with_start(
            |sys| {
                let cmd = sys.new_port(Label::top());
                sys.set_port_label(cmd, Label::top()).unwrap();
                sys.publish_env("alice.cmd", Value::Handle(cmd));
            },
            move |sys, msg| {
                if msg.body.as_str() == Some("you-may-send") {
                    assert!(sys.has_star(cap_port), "grant should confer ⋆");
                    sys.send(cap_port, Value::Str("from-alice".into())).unwrap();
                    // Redistribute the capability to Bob.
                    let bob = sys.env("bob.cmd").unwrap().as_handle().unwrap();
                    sys.send_args(
                        bob,
                        Value::Str("you-may-send".into()),
                        &SendArgs::new().grant(grant(cap_port)),
                    )
                    .unwrap();
                }
            },
        ),
    );

    // Bob: sends upon receiving the regranted capability.
    kernel.spawn(
        "bob",
        Category::Other,
        service_with_start(
            |sys| {
                let cmd = sys.new_port(Label::top());
                sys.set_port_label(cmd, Label::top()).unwrap();
                sys.publish_env("bob.cmd", Value::Handle(cmd));
            },
            move |sys, msg| {
                if msg.body.as_str() == Some("you-may-send") {
                    sys.send(cap_port, Value::Str("from-bob".into())).unwrap();
                }
            },
        ),
    );

    let owner_cmd = kernel.global_env("owner.cmd").unwrap().as_handle().unwrap();
    kernel.inject(owner_cmd, Value::Str("grant-to-alice".into()));
    kernel.run();
    assert_eq!(
        *received.lock().unwrap(),
        vec!["\"from-alice\"", "\"from-bob\""]
    );
    assert_eq!(kernel.stats().dropped_label_check, 0);
}

#[test]
fn granting_without_star_is_rejected_at_send() {
    // Figure 4 requirement (2): D_S(h) < 3 requires P_S(h) = ⋆. This check
    // depends only on the sender's own labels, so it errors loudly.
    let mut kernel = Kernel::new(4);
    let (rec, _log) = Recorder::new("r.port");
    kernel.spawn("receiver", Category::Other, Box::new(rec));
    let rport = kernel.global_env("r.port").unwrap().as_handle().unwrap();

    let result = Arc::new(Mutex::new(None));
    let r2 = result.clone();
    kernel.spawn(
        "forger",
        Category::Other,
        service_with_start(
            move |sys| {
                let someone_elses = Handle::from_raw(0x123);
                let outcome = sys.send_args(
                    rport,
                    Value::Unit,
                    &SendArgs::new().grant(grant(someone_elses)),
                );
                *r2.lock().unwrap() = Some(outcome);
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(
        *result.lock().unwrap(),
        Some(Err(SysError::PrivilegeViolation))
    );
}

// ---------------------------------------------------------------------
// Contamination and information flow (§5.2).
// ---------------------------------------------------------------------

#[test]
fn contamination_propagates_and_blocks() {
    // A process that reads tainted data (via C_S) gets its send label
    // raised (Equation 4) and then cannot reach default receivers.
    let mut kernel = Kernel::new(5);
    let leaked = Arc::new(Mutex::new(0u32));

    // The would-be leak target: an ordinary open port.
    let l2 = leaked.clone();
    kernel.spawn(
        "public-sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            move |_, _| *l2.lock().unwrap() += 1,
        ),
    );

    // The middleman: receives u's data, then tries to forward it.
    kernel.spawn(
        "middleman",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("mid.port", Value::Handle(p));
            },
            move |sys, msg| {
                // Forward whatever arrives to the public sink.
                let sink = sys.env("sink.port").unwrap().as_handle().unwrap();
                sys.send(sink, msg.body.clone()).unwrap();
            },
        ),
    );

    // The file server stand-in: holds u's taint handle, sends tainted data.
    kernel.spawn(
        "fileserver",
        Category::Other,
        service_with_start(
            |sys| {
                let ut = sys.new_handle();
                sys.publish_env("u.taint", Value::Handle(ut));
                let mid = sys.env("mid.port").unwrap().as_handle().unwrap();
                // Raise the middleman's receive label (we hold uT ⋆), then
                // send u's secret contaminated with uT 3.
                sys.send_args(
                    mid,
                    Value::Str("u-secret".into()),
                    &SendArgs::new().contaminate(taint(ut)).raise_recv(raise(ut)),
                )
                .unwrap();
            },
            |_, _| {},
        ),
    );

    kernel.run();
    // The secret reached the middleman but its forward was dropped: the
    // middleman's send label now carries uT 3 and the sink's receive label
    // does not accept it.
    assert_eq!(*leaked.lock().unwrap(), 0);
    assert_eq!(kernel.stats().dropped_label_check, 1);
}

#[test]
fn star_holders_resist_contamination() {
    // §5.3: if P_S(h) = ⋆, receiving h-tainted data leaves P_S(h) = ⋆ —
    // the declassifier pattern.
    let mut kernel = Kernel::new(6);
    let forwarded = Arc::new(Mutex::new(0u32));

    let f2 = forwarded.clone();
    kernel.spawn(
        "public-sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            move |_, _| *f2.lock().unwrap() += 1,
        ),
    );

    // The compartment owner & declassifier.
    kernel.spawn(
        "owner",
        Category::Other,
        service_with_start(
            |sys| {
                let ut = sys.new_handle();
                sys.publish_env("u.taint", Value::Handle(ut));
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("owner.port", Value::Handle(p));
                // Allow tainted messages in.
                sys.raise_recv(ut, Level::L3).unwrap();
            },
            move |sys, msg| {
                // Tainted data arrived; because we hold uT ⋆ our send label
                // is unchanged and we can declassify by forwarding.
                let ut = sys.env("u.taint").unwrap().as_handle().unwrap();
                assert!(sys.has_star(ut), "⋆ must survive contamination");
                let sink = sys.env("sink.port").unwrap().as_handle().unwrap();
                sys.send(sink, msg.body.clone()).unwrap();
            },
        ),
    );
    let ut = kernel.global_env("u.taint").unwrap().as_handle().unwrap();
    let owner_port = kernel
        .global_env("owner.port")
        .unwrap()
        .as_handle()
        .unwrap();

    // A tainted process sends to the owner.
    kernel.spawn(
        "tainted",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.self_contaminate(&taint(ut));
                sys.send(owner_port, Value::Str("secret".into())).unwrap();
            },
            |_, _| {},
        ),
    );

    kernel.run();
    assert_eq!(*forwarded.lock().unwrap(), 1, "declassified data must flow");
}

#[test]
fn decontaminate_send_clears_taint() {
    // §5.3 decontamination: a ⋆-holder can lower another process's send
    // label with D_S, restoring its ability to talk to the system.
    let mut kernel = Kernel::new(7);
    let reached = Arc::new(Mutex::new(0u32));

    let r2 = reached.clone();
    kernel.spawn(
        "public-sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            move |_, _| *r2.lock().unwrap() += 1,
        ),
    );

    kernel.spawn(
        "victim",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("victim.port", Value::Handle(p));
            },
            move |sys, msg| {
                if msg.body.as_str() == Some("try-send") {
                    let sink = sys.env("sink.port").unwrap().as_handle().unwrap();
                    sys.send(sink, Value::Str("am-i-clean".into())).unwrap();
                }
            },
        ),
    );
    let victim_port = kernel
        .global_env("victim.port")
        .unwrap()
        .as_handle()
        .unwrap();

    kernel.spawn(
        "owner",
        Category::Other,
        service_with_start(
            move |sys| {
                let ut = sys.new_handle();
                // Taint the victim: contaminate + raise its receive so the
                // taint can even be delivered.
                sys.send_args(
                    victim_port,
                    Value::Str("tainting-you".into()),
                    &SendArgs::new().contaminate(taint(ut)).raise_recv(raise(ut)),
                )
                .unwrap();
                // Tell it to try sending (it will fail: tainted).
                sys.send(victim_port, Value::Str("try-send".into()))
                    .unwrap();
                // Decontaminate it with D_S = {uT ⋆...}? No — D_S lowers the
                // level back to the default: {uT 1} entries in D_S need ⋆ too.
                let ds = Label::from_pairs(Level::L3, &[(ut, Level::L1)]);
                sys.send_args(
                    victim_port,
                    Value::Str("decontaminated".into()),
                    &SendArgs::new().grant(ds),
                )
                .unwrap();
                // Now it can send again.
                sys.send(victim_port, Value::Str("try-send".into()))
                    .unwrap();
            },
            |_, _| {},
        ),
    );

    kernel.run();
    assert_eq!(
        *reached.lock().unwrap(),
        1,
        "only the post-decontamination send lands"
    );
    assert_eq!(kernel.stats().dropped_label_check, 1);
}

#[test]
fn delivery_checks_happen_at_receive_time() {
    // §4: "the kernel cannot tell whether a message is deliverable until
    // the instant that the receiving process tries to receive it, since in
    // the meantime the process's labels can change."
    let mut kernel = Kernel::new(8);
    let got = Arc::new(Mutex::new(Vec::<String>::new()));

    let g2 = got.clone();
    kernel.spawn(
        "receiver",
        Category::Other,
        service_with_start(
            |sys| {
                let ut = sys.new_handle();
                sys.publish_env("t", Value::Handle(ut));
                sys.raise_recv(ut, Level::L3).unwrap();
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("recv.port", Value::Handle(p));
            },
            move |sys, msg| {
                g2.lock()
                    .unwrap()
                    .push(msg.body.as_str().unwrap_or("?").to_string());
                // After the first message, refuse all taint for t.
                let t = sys.env("t").unwrap().as_handle().unwrap();
                let restrict = Label::from_pairs(Level::L3, &[(t, Level::L2)]);
                sys.lower_recv_label(&restrict);
            },
        ),
    );
    let t = kernel.global_env("t").unwrap().as_handle().unwrap();
    let port = kernel.global_env("recv.port").unwrap().as_handle().unwrap();

    kernel.spawn(
        "sender",
        Category::Other,
        service_with_start(
            move |sys| {
                // Both sends succeed; both are tainted identically. Between
                // their deliveries the receiver lowers its receive label, so
                // only the first lands.
                let args = SendArgs::new().contaminate(taint(t));
                sys.send_args(port, Value::Str("first".into()), &args)
                    .unwrap();
                sys.send_args(port, Value::Str("second".into()), &args)
                    .unwrap();
            },
            |_, _| {},
        ),
    );

    kernel.run();
    assert_eq!(*got.lock().unwrap(), vec!["first"]);
    assert_eq!(kernel.stats().dropped_label_check, 1);
}

// ---------------------------------------------------------------------
// Verification labels and integrity (§5.4).
// ---------------------------------------------------------------------

#[test]
fn verification_label_proves_identity() {
    // The §5.4 file-server write check: accept a write only when the sender
    // proves it speaks for u by supplying V with V(uG) ≤ 0.
    let mut kernel = Kernel::new(9);
    let accepted = Arc::new(Mutex::new(Vec::<String>::new()));

    // A process that will be granted the right to speak for u.
    kernel.spawn(
        "u-speaker",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("speaker.port", Value::Handle(p));
            },
            move |sys, msg| {
                if msg.body.as_str() == Some("you-speak-for-u") {
                    let ug = sys.env("u.grant").unwrap().as_handle().unwrap();
                    let fs = sys.env("fs.port").unwrap().as_handle().unwrap();
                    assert_eq!(sys.send_label().get(ug), Level::L0);
                    // Prove identity with V = {uG 0, 3} (§5.4: the sender
                    // explicitly names the credential it exercises — the
                    // confused-deputy countermeasure).
                    let v = Label::from_pairs(Level::L3, &[(ug, Level::L0)]);
                    sys.send_args(fs, Value::Str("u-write".into()), &SendArgs::new().verify(v))
                        .unwrap();
                }
            },
        ),
    );

    // The file server: creates uG, grants the speaker uG 0, checks writes.
    let a2 = accepted.clone();
    kernel.spawn(
        "fileserver",
        Category::Other,
        service_with_start(
            |sys| {
                let ug = sys.new_handle();
                sys.publish_env("u.grant", Value::Handle(ug));
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("fs.port", Value::Handle(p));
                // Grant uG 0 to the speaker (requires our ⋆, which we hold
                // as creator).
                let speaker = sys.env("speaker.port").unwrap().as_handle().unwrap();
                let ds = Label::from_pairs(Level::L3, &[(ug, Level::L0)]);
                sys.send_args(
                    speaker,
                    Value::Str("you-speak-for-u".into()),
                    &SendArgs::new().grant(ds),
                )
                .unwrap();
            },
            move |sys, msg| {
                let ug = sys.env("u.grant").unwrap().as_handle().unwrap();
                // §5.4: check V(uG) ≤ 0 before accepting the write.
                if msg.verify.get(ug) <= Level::L0 {
                    a2.lock()
                        .unwrap()
                        .push(msg.body.as_str().unwrap_or("?").to_string());
                }
            },
        ),
    );
    let ug = kernel.global_env("u.grant").unwrap().as_handle().unwrap();
    let fs = kernel.global_env("fs.port").unwrap().as_handle().unwrap();

    // An imposter: claiming uG 0 in V makes the kernel drop the message
    // (V must upper-bound E_S, and the imposter's E_S(uG) = 1 > 0), and
    // omitting V gets the message delivered but rejected by the app check.
    kernel.spawn(
        "imposter",
        Category::Other,
        service_with_start(
            move |sys| {
                let v = Label::from_pairs(Level::L3, &[(ug, Level::L0)]);
                sys.send_args(
                    fs,
                    Value::Str("forged-write".into()),
                    &SendArgs::new().verify(v),
                )
                .unwrap();
                sys.send(fs, Value::Str("unverified-write".into())).unwrap();
            },
            |_, _| {},
        ),
    );

    kernel.run();
    assert_eq!(*accepted.lock().unwrap(), vec!["u-write"]);
    assert_eq!(kernel.stats().dropped_label_check, 1, "forged V must drop");
}

#[test]
fn verification_label_is_delivered_to_receiver() {
    // §5.4: "Unlike the other optional labels ... the verification label is
    // also passed up to the receiving application."
    let mut kernel = Kernel::new(10);
    let (rec, log) = Recorder::new("r.port");
    kernel.spawn("receiver", Category::Other, Box::new(rec));
    let rport = kernel.global_env("r.port").unwrap().as_handle().unwrap();

    kernel.spawn(
        "sender",
        Category::Other,
        service_with_start(
            move |sys| {
                let mine = sys.new_handle(); // P_S(mine) = ⋆
                sys.publish_env("sender.handle", Value::Handle(mine));
                let v = Label::from_pairs(Level::L3, &[(mine, Level::L0)]);
                sys.send_args(rport, Value::Unit, &SendArgs::new().verify(v))
                    .unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();
    let mine = kernel
        .global_env("sender.handle")
        .unwrap()
        .as_handle()
        .unwrap();
    let entries = log.lock().unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].verify.get(mine), Level::L0);
    assert_eq!(entries[0].verify.default_level(), Level::L3);
}

#[test]
fn mandatory_integrity_level_zero_is_fragile() {
    // §5.4: a process with P_S(uG) = 0 loses the privilege the moment it
    // receives from a process that does not speak for u — level 0 cannot be
    // re-disseminated and decays on contact with ordinary (level 1) input,
    // so it cannot launder low-integrity data into u's files.
    let mut kernel = Kernel::new(11);

    let trusted = kernel.spawn(
        "trusted",
        Category::Other,
        service_with_start(
            |sys| {
                let ug = sys.new_handle();
                sys.publish_env("ug", Value::Handle(ug));
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("trusted.port", Value::Handle(p));
                // Drop from ⋆ (creator privilege) to mandatory level 0:
                // self-contamination is a lub, and max(⋆, 0) = 0.
                sys.self_contaminate(&Label::from_pairs(Level::Star, &[(ug, Level::L0)]));
            },
            move |sys, _msg| {
                // After receiving plain input, P_S(uG) must have decayed to 1.
                let ug = sys.env("ug").unwrap().as_handle().unwrap();
                assert_eq!(
                    sys.send_label().get(ug),
                    Level::L1,
                    "level 0 must decay on ordinary input"
                );
            },
        ),
    );
    let tport = kernel
        .global_env("trusted.port")
        .unwrap()
        .as_handle()
        .unwrap();
    let ug = kernel.global_env("ug").unwrap().as_handle().unwrap();
    assert_eq!(kernel.process(trusted).send_label.get(ug), Level::L0);

    kernel.spawn(
        "ordinary",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.send(tport, Value::Str("low-integrity".into())).unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(kernel.stats().delivered, 1);
    assert_eq!(kernel.process(trusted).send_label.get(ug), Level::L1);
}

// ---------------------------------------------------------------------
// Port labels (§5.5).
// ---------------------------------------------------------------------

#[test]
fn port_label_blocks_taint_the_process_would_accept() {
    // The mail-reader pattern: the process receive label accepts taint, but
    // a specific port's label refuses it — kernel-side message filtering.
    let mut kernel = Kernel::new(12);
    let got = Arc::new(Mutex::new(Vec::<String>::new()));

    let g2 = got.clone();
    kernel.spawn(
        "mail-reader",
        Category::Other,
        service_with_start(
            |sys| {
                let t = sys.new_handle();
                sys.publish_env("attachment.taint", Value::Handle(t));
                // Process-wide: accept t-tainted messages.
                sys.raise_recv(t, Level::L3).unwrap();
                // But this port refuses them: p_R = {t 1, 3}.
                let p = sys.new_port(Label::from_pairs(Level::L3, &[(t, Level::L1)]));
                sys.set_port_label(p, Label::from_pairs(Level::L3, &[(t, Level::L1)]))
                    .unwrap();
                sys.publish_env("filtered.port", Value::Handle(p));
                // And an unfiltered port accepts everything.
                let open = sys.new_port(Label::top());
                sys.set_port_label(open, Label::top()).unwrap();
                sys.publish_env("open.port", Value::Handle(open));
            },
            move |_sys, msg| {
                g2.lock().unwrap().push(format!("{}", msg.body));
            },
        ),
    );
    let t = kernel
        .global_env("attachment.taint")
        .unwrap()
        .as_handle()
        .unwrap();
    let filtered = kernel
        .global_env("filtered.port")
        .unwrap()
        .as_handle()
        .unwrap();
    let open = kernel.global_env("open.port").unwrap().as_handle().unwrap();

    kernel.spawn(
        "attachment",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.self_contaminate(&taint(t));
                // Tainted: filtered port refuses, open port accepts.
                sys.send(filtered, Value::Str("to-filtered".into()))
                    .unwrap();
                sys.send(open, Value::Str("to-open".into())).unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(*got.lock().unwrap(), vec!["\"to-open\""]);
    assert_eq!(kernel.stats().dropped_label_check, 1);
}

#[test]
fn port_label_bounds_decontamination() {
    // Figure 4 requirement (4): D_R ⊑ p_R — a port with a low label cannot
    // be used to force taint acceptance onto its owner.
    let mut kernel = Kernel::new(13);
    let got = Arc::new(Mutex::new(0u32));

    let g2 = got.clone();
    kernel.spawn(
        "careful-server",
        Category::Other,
        service_with_start(
            |sys| {
                let t = sys.new_handle();
                sys.publish_env("t", Value::Handle(t));
                // Port label {t 2, 3}: refuses decontamination above 2 for t.
                let label = Label::from_pairs(Level::L3, &[(t, Level::L2)]);
                let p = sys.new_port(label.clone());
                sys.set_port_label(p, label).unwrap();
                sys.publish_env("srv.port", Value::Handle(p));
            },
            move |_, _| *g2.lock().unwrap() += 1,
        ),
    );
    let t = kernel.global_env("t").unwrap().as_handle().unwrap();
    let srv = kernel.global_env("srv.port").unwrap().as_handle().unwrap();

    kernel.spawn(
        "contaminator",
        Category::Other,
        service_with_start(
            move |sys| {
                // We don't own t... create our own handle we DO own.
                let _ = t;
                let mine = sys.new_handle();
                sys.publish_env("mine", Value::Handle(mine));
                // Try to contaminate the server while raising its receive
                // label for our handle: D_R = {mine 3}; the port label says
                // p_R(mine) = 3 (default), so this one is fine.
                sys.send_args(
                    srv,
                    Value::Str("ok".into()),
                    &SendArgs::new()
                        .contaminate(taint(mine))
                        .raise_recv(raise(mine)),
                )
                .unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(*got.lock().unwrap(), 1);

    // Now a ⋆-holder for t itself tries to force t-taint through the port:
    // D_R = {t 3} but p_R(t) = 2, so requirement (4) fails and the message
    // is dropped even though the sender holds the privilege.
    let holder = kernel.spawn(
        "t-holder",
        Category::Other,
        asbestos_kernel::util::service_with_start(
            move |sys| {
                // Acquire ⋆ for t is impossible (not creator); so simulate a
                // holder by creating a fresh handle and a fresh careful port
                // inside this test process instead.
                let t2 = sys.new_handle();
                let label = Label::from_pairs(Level::L3, &[(t2, Level::L2)]);
                let p2 = sys.new_port(label.clone());
                sys.set_port_label(p2, label).unwrap();
                // Self-send with D_R(t2) = 3 > p_R(t2) = 2: dropped (req 4).
                sys.send_args(
                    p2,
                    Value::Str("forced".into()),
                    &SendArgs::new().raise_recv(raise(t2)),
                )
                .unwrap();
            },
            |_, _| {},
        ),
    );
    let _ = holder;
    kernel.run();
    assert_eq!(kernel.stats().dropped_port_decont, 1);
}

#[test]
fn set_port_label_requires_receive_rights() {
    let mut kernel = Kernel::new(14);
    let (rec, _log) = Recorder::new("r.port");
    kernel.spawn("receiver", Category::Other, Box::new(rec));
    let rport = kernel.global_env("r.port").unwrap().as_handle().unwrap();

    let outcome = Arc::new(Mutex::new(None));
    let o2 = outcome.clone();
    kernel.spawn(
        "meddler",
        Category::Other,
        service_with_start(
            move |sys| {
                *o2.lock().unwrap() = Some(sys.set_port_label(rport, Label::top()));
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(*outcome.lock().unwrap(), Some(Err(SysError::NotPortOwner)));
}

#[test]
fn dissociated_port_drops_messages() {
    let mut kernel = Kernel::new(15);
    let got = Arc::new(Mutex::new(0u32));
    let g2 = got.clone();
    kernel.spawn(
        "server",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("p", Value::Handle(p));
            },
            move |sys, msg| {
                *g2.lock().unwrap() += 1;
                if msg.body.as_str() == Some("shut-down") {
                    let p = sys.env("p").unwrap().as_handle().unwrap();
                    sys.dissociate_port(p).unwrap();
                }
            },
        ),
    );
    let p = kernel.global_env("p").unwrap().as_handle().unwrap();
    kernel.inject(p, Value::Str("shut-down".into()));
    kernel.inject(p, Value::Str("after".into()));
    kernel.run();
    assert_eq!(*got.lock().unwrap(), 1);
    assert_eq!(
        kernel.stats().dropped_no_port + kernel.stats().dropped_no_owner,
        1
    );
}

// ---------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------

#[test]
fn exit_process_cleans_up() {
    let mut kernel = Kernel::new(16);
    kernel.spawn(
        "mortal",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("mortal.port", Value::Handle(p));
                sys.mem_write(0x1000, &[1, 2, 3]).unwrap();
            },
            |sys, _msg| {
                sys.exit_process();
            },
        ),
    );
    let p = kernel
        .global_env("mortal.port")
        .unwrap()
        .as_handle()
        .unwrap();
    kernel.inject(p, Value::Unit);
    kernel.inject(p, Value::Unit); // second message: no owner anymore
    kernel.run();
    assert_eq!(kernel.stats().delivered, 1);
    // Exit dissociates the port, so the second message finds no port.
    assert_eq!(kernel.stats().dropped_no_port, 1);
    // Page freed.
    assert_eq!(kernel.kmem_report().user_frame_bytes, 0);
}

#[test]
fn spawned_children_inherit_labels() {
    let mut kernel = Kernel::new(17);
    kernel.spawn(
        "parent",
        Category::Other,
        service_with_start(
            |sys| {
                let h = sys.new_handle();
                sys.publish_env("h", Value::Handle(h));
                sys.self_contaminate(&Label::from_pairs(
                    Level::Star,
                    &[(Handle::from_raw(1), Level::L2)],
                ));
                let child = sys
                    .spawn(
                        "child",
                        Category::Other,
                        service_with_start(
                            |csys| {
                                let h = csys.env("h").unwrap().as_handle().unwrap();
                                // Fork-style privilege distribution: child
                                // inherits ⋆ for the parent's handle.
                                assert!(csys.has_star(h));
                                assert_eq!(csys.send_label().get(Handle::from_raw(1)), Level::L2);
                            },
                            |_, _| {},
                        ),
                    )
                    .unwrap();
                let _ = child;
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(kernel.process_count(), 2);
}

#[test]
fn queue_limit_drops_silently() {
    let mut kernel = Kernel::new(18);
    let (rec, log) = Recorder::new("r.port");
    kernel.spawn("receiver", Category::Other, Box::new(rec));
    let rport = kernel.global_env("r.port").unwrap().as_handle().unwrap();
    // Tiny queue.
    kernel.set_queue_limit(2);
    kernel.spawn(
        "flooder",
        Category::Other,
        service_with_start(
            move |sys| {
                for i in 0..5u64 {
                    // All sends report success.
                    sys.send(rport, Value::U64(i)).unwrap();
                }
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(log.lock().unwrap().len(), 2);
    assert_eq!(kernel.stats().dropped_queue_full, 3);
}
