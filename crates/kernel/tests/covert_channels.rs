//! §8 covert channels: tests that *demonstrate* the storage channels the
//! paper enumerates (they are inherent to run-time label checking), and
//! verify the mitigations Asbestos does implement.
//!
//! These tests document attack constructions; the channels working as
//! described is the expected (paper-faithful) behaviour.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::{service_with_start, Recorder};
use asbestos_kernel::{Category, Kernel, Label, Level, SendArgs, SendVerdict, Value};

#[test]
fn contamination_heartbeat_storage_channel() {
    // The §8 construction: tainted process A leaks a bit to untainted C by
    // selectively contaminating one of two heartbeat relays B0/B1. "Such
    // storage channels are inherent to any system with run-time checking of
    // dynamic labels."
    //
    // Setup uses taint at level 2 (the paper's partial-taint model) so that
    // A can contaminate the B's through their default receive labels, and C
    // voluntarily lowers its own receive label to distinguish tainted from
    // untainted heartbeats.
    let mut kernel = Kernel::new(81);

    // C: the untainted receiver, logging which relays still reach it.
    let heard = Arc::new(Mutex::new(Vec::<String>::new()));
    let h2 = heard.clone();
    kernel.spawn(
        "C",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("c.port", Value::Handle(p));
            },
            move |_sys, msg| {
                h2.lock()
                    .unwrap()
                    .push(msg.body.as_str().unwrap_or("?").into());
            },
        ),
    );
    let c_port = kernel.global_env("c.port").unwrap().as_handle().unwrap();

    // B0 and B1: untainted relays that heartbeat to C when poked.
    for name in ["B0", "B1"] {
        let label = format!("{name}.port");
        let beat = name.to_string();
        kernel.spawn(
            name,
            Category::Other,
            service_with_start(
                move |sys| {
                    let p = sys.new_port(Label::top());
                    sys.set_port_label(p, Label::top()).unwrap();
                    sys.publish_env(&label, Value::Handle(p));
                },
                move |sys, _msg| {
                    sys.send(c_port, Value::Str(beat.clone())).unwrap();
                },
            ),
        );
    }
    let b0 = kernel.global_env("B0.port").unwrap().as_handle().unwrap();
    let b1 = kernel.global_env("B1.port").unwrap().as_handle().unwrap();

    // The compartment owner hands A its taint; C pre-emptively refuses it.
    kernel.spawn(
        "owner",
        Category::Other,
        service_with_start(
            |sys| {
                let t = sys.new_handle();
                sys.publish_env("t", Value::Handle(t));
            },
            |_, _| {},
        ),
    );
    let t = kernel.global_env("t").unwrap().as_handle().unwrap();

    // A: tainted with t 2; leaks the bit "1" by contaminating B1.
    kernel.spawn(
        "A",
        Category::Other,
        service_with_start(
            move |sys| {
                // A saw secret data in compartment t (partial taint t 2).
                sys.self_contaminate(&Label::from_pairs(Level::Star, &[(t, Level::L2)]));
                // Leak bit = 1: contaminate B1 (its default receive {2}
                // accepts level-2 taint — no cooperation needed from B1).
                let _ = sys.send(b1, Value::Str("contaminate".into()));
            },
            |_, _| {},
        ),
    );

    kernel.run();

    // Now C lowers its receive label for t and both B's heartbeat.
    // (Do the lowering through a driver message to C — processes may only
    // lower their own labels.)
    let heard_clear = heard.lock().unwrap().len();
    let _ = heard_clear;
    heard.lock().unwrap().clear();

    // Drive: poke both relays; C must hear only B0.
    // First, C lowers its own receive label (free, voluntary restriction).
    kernel.spawn(
        "driver",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.send(b0, Value::Str("beat".into())).unwrap();
                sys.send(b1, Value::Str("beat".into())).unwrap();
            },
            |_, _| {},
        ),
    );
    // God-mode stand-in for C's own lower_recv_label call (same effect;
    // lowering one's own receive label needs no privilege).
    // C is pid 0 (first spawn).
    kernel.run();

    // Without C's restriction, both heartbeats arrive (t 2 ≤ default 2):
    assert!(heard.lock().unwrap().contains(&"B0".to_string()));
    assert!(heard.lock().unwrap().contains(&"B1".to_string()));
    heard.lock().unwrap().clear();

    // With the restriction, B1's heartbeat is dropped — the bit leaks.
    // Apply C's voluntary restriction out of band (equivalent to C calling
    // lower_recv_label in its own handler).
    let c_proc = kernel.find_process("C").unwrap();
    let restricted = kernel
        .process(c_proc)
        .recv_label
        .glb(&Label::from_pairs(Level::L3, &[(t, Level::L1)]));
    kernel.set_process_labels(c_proc, None, Some(restricted));

    kernel.spawn(
        "driver2",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.send(b0, Value::Str("beat".into())).unwrap();
                sys.send(b1, Value::Str("beat".into())).unwrap();
            },
            |_, _| {},
        ),
    );
    kernel.run();

    // C decodes the bit: B0 present, B1 missing ⇒ bit = 1.
    assert_eq!(*heard.lock().unwrap(), vec!["B0"]);
    assert!(kernel.stats().dropped_label_check >= 1);
}

#[test]
fn send_success_reveals_nothing() {
    // §4: reliable delivery notification would let label changes modulate
    // an observable success/failure bit. Verify send returns success both
    // when delivery will succeed and when it will fail.
    let mut kernel = Kernel::new(82);
    let (rec, log) = Recorder::new("r.port");
    kernel.spawn("receiver", Category::Other, Box::new(rec));
    let rport = kernel.global_env("r.port").unwrap().as_handle().unwrap();

    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let o2 = outcomes.clone();
    kernel.spawn(
        "sender",
        Category::Other,
        service_with_start(
            move |sys| {
                let t = sys.new_handle();
                // Will be delivered:
                o2.lock().unwrap().push(sys.send(rport, Value::U64(1)));
                // Will be dropped (tainted beyond the receiver's label),
                // but the syscall result is indistinguishable:
                let args =
                    SendArgs::new().contaminate(Label::from_pairs(Level::Star, &[(t, Level::L3)]));
                o2.lock()
                    .unwrap()
                    .push(sys.send_args(rport, Value::U64(2), &args));
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(
        *outcomes.lock().unwrap(),
        vec![Ok(SendVerdict::Delivered), Ok(SendVerdict::Delivered)]
    );
    assert_eq!(
        log.lock().unwrap().len(),
        1,
        "only the untainted message landed"
    );
}

/// One paced run of the backpressure scenario: a victim sends a fixed
/// over-budget burst to a shared sink on each injected tick, recording
/// every syscall-visible observable (verdict or error, plus its remaining
/// send credit). An attacker process is always present — identical spawn
/// and allocation sequence — but only floods the same sink when asked.
fn credit_trace(attacker_floods: bool) -> Vec<String> {
    let mut kernel = Kernel::new(86);
    kernel.set_backpressure(true);
    // A tight shared bound, so the attacker genuinely saturates the sink's
    // mailbox and the shard's retry machinery while the victim runs.
    kernel.set_port_queue_limit(8);

    kernel.spawn(
        "sink",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("sink.port", Value::Handle(p));
            },
            |_, _| {},
        ),
    );
    let sink = kernel.global_env("sink.port").unwrap().as_handle().unwrap();

    let trace = Arc::new(Mutex::new(Vec::<String>::new()));
    let t2 = trace.clone();
    kernel.spawn(
        "victim",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("victim.tick", Value::Handle(p));
            },
            move |sys, _msg| {
                // 20 sends against a default window of 16: the tail defers,
                // and the AIMD loop halves the window on the next tick —
                // a non-trivial trace, every byte of it derived from the
                // victim's own history.
                for _ in 0..20 {
                    let verdict = sys.send(sink, Value::U64(1));
                    let credit = sys.send_credit(sink);
                    t2.lock().unwrap().push(format!("{verdict:?}/{credit}"));
                }
            },
        ),
    );
    let victim_tick = kernel
        .global_env("victim.tick")
        .unwrap()
        .as_handle()
        .unwrap();

    kernel.spawn(
        "attacker",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("attacker.tick", Value::Handle(p));
            },
            move |sys, _msg| {
                if attacker_floods {
                    // 10× the victim's fair share, same sink.
                    for _ in 0..200 {
                        let _ = sys.send(sink, Value::U64(666));
                    }
                }
            },
        ),
    );
    let attacker_tick = kernel
        .global_env("attacker.tick")
        .unwrap()
        .as_handle()
        .unwrap();

    for _ in 0..5 {
        kernel.inject(attacker_tick, Value::Unit);
        kernel.inject(victim_tick, Value::Unit);
        kernel.run();
    }
    if attacker_floods {
        // The flood must be real: the shard visibly deferred and shed.
        assert!(kernel.stats().sent_deferred > 0, "flood never deferred");
    }
    let out = trace.lock().unwrap().clone();
    out
}

#[test]
fn credit_trace_is_blind_to_an_attacker_flood() {
    // The overload-control extension of §4/§8: a send's verdict
    // (Delivered / Deferred / WouldBlock) and the credit counter behind
    // it are computed purely from the sender's *own* send history, never
    // from shared queue occupancy — otherwise backpressure would hand a
    // tainted flooder a storage channel to any process sharing a sink.
    // The victim's full observable trace must be byte-identical whether
    // or not an attacker is flooding the same port at 10× its rate.
    let quiet = credit_trace(false);
    let flooded = credit_trace(true);
    assert!(!quiet.is_empty());
    // The trace is non-trivial: the victim's own overrun produces both
    // verdicts and a moving credit counter.
    assert!(quiet.iter().any(|e| e.contains("Delivered")));
    assert!(quiet.iter().any(|e| e.contains("Deferred")));
    assert_eq!(quiet, flooded, "attacker flood modulated the victim's view");
}

#[test]
fn handles_do_not_reveal_allocation_count() {
    // §8: "Handles are generated by incrementing a 61-bit counter, which is
    // a storage channel. However, since the kernel encrypts the counter
    // value to produce handles, the user-visible sequence of handles does
    // not convey exploitable information."
    let mut kernel = Kernel::new(83);
    let observed = Arc::new(Mutex::new(Vec::<u64>::new()));
    let o2 = observed.clone();
    kernel.spawn(
        "prober",
        Category::Other,
        service_with_start(
            move |sys| {
                for _ in 0..64 {
                    o2.lock().unwrap().push(sys.new_handle().raw());
                }
            },
            |_, _| {},
        ),
    );
    kernel.run();
    let vals = observed.lock().unwrap();
    // Not sequential, not monotonic, spread over the 61-bit space.
    let monotonic_pairs = vals.windows(2).filter(|w| w[1] == w[0] + 1).count();
    assert_eq!(monotonic_pairs, 0, "handles look like a raw counter");
    let increasing = vals.windows(2).filter(|w| w[1] > w[0]).count();
    assert!(
        increasing < 55,
        "handle sequence is suspiciously ordered ({increasing}/63 increasing)"
    );
}

#[test]
fn port_names_are_unpredictable() {
    // §4: "When asked to create a port, the kernel returns a new port with
    // an unpredictable name. This is necessary because the ability to
    // create a port with a specific name would be a covert channel."
    // Two kernels with different seeds must produce different port names
    // for identical workloads.
    let names: Vec<Vec<u64>> = [84u64, 85u64]
        .iter()
        .map(|&seed| {
            let mut kernel = Kernel::new(seed);
            let observed = Arc::new(Mutex::new(Vec::<u64>::new()));
            let o2 = observed.clone();
            kernel.spawn(
                "creator",
                Category::Other,
                service_with_start(
                    move |sys| {
                        for _ in 0..8 {
                            o2.lock().unwrap().push(sys.new_port(Label::top()).raw());
                        }
                    },
                    |_, _| {},
                ),
            );
            kernel.run();
            let v = observed.lock().unwrap().clone();
            v
        })
        .collect();
    assert_ne!(names[0], names[1]);
}
