//! Pins the single-shard engine bit-for-bit.
//!
//! The golden values below were recorded from the pre-sharding delivery
//! engine (PR 1) on a canonical workload that exercises every delivery
//! path: plain delivery, event-process forking and exit, label-check
//! drops, missing-port drops, queue-limit drops, memory copy-on-write,
//! and the delivery-decision cache. A kernel configured with `shards = 1`
//! must reproduce the identical delivery trace, `Stats`, `KmemReport`,
//! and cycle clock — the refactor to a sharded engine is not allowed to
//! perturb the paper-figure configuration in any observable way.

use asbestos_kernel::util::{ep_service_fn, service_with_start, Recorder};
use asbestos_kernel::{Category, Handle, Kernel, KmemReport, Label, Level, Stats, Value};

/// FNV-1a over the delivery trace, so the test pins order and content
/// without listing hundreds of entries.
fn trace_hash(entries: &[(u64, String)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (port, body) in entries {
        eat(&port.to_le_bytes());
        eat(body.as_bytes());
    }
    h
}

/// The canonical workload, parameterized over the kernel construction so
/// the same function drives the golden run and any future configuration.
fn run_workload(mut kernel: Kernel) -> (Kernel, u64, usize) {
    // A sink that records every delivery (the trace).
    let (rec, log) = Recorder::new("sink.port");
    kernel.spawn("sink", Category::Other, Box::new(rec));
    let sink = kernel.global_env("sink.port").unwrap().as_handle().unwrap();

    // An event-process worker: per-message it stores session state in
    // simulated memory (forcing COW frames) and replies to the sink.
    kernel.spawn_ep_service(
        "worker",
        Category::Okws,
        ep_service_fn(
            move |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("worker.port", Value::Handle(p));
                sys.mem_write_u64(0x1000, 7).unwrap();
            },
            move |sys, msg| {
                let n = match msg.body {
                    Value::U64(n) => n,
                    _ => 0,
                };
                let base = sys.mem_read_u64(0x1000).unwrap();
                sys.mem_write_u64(0x2000 + 8 * n, base + n).unwrap();
                sys.send(sink, Value::U64(base + n)).unwrap();
                if n % 3 == 0 {
                    sys.ep_exit().unwrap();
                }
            },
        ),
    );
    let worker = kernel
        .global_env("worker.port")
        .unwrap()
        .as_handle()
        .unwrap();

    // A tainted chatter: its sends carry a compartment at level 3 that
    // default receivers reject, so every send drops at the label check.
    kernel.spawn(
        "tainted",
        Category::Other,
        service_with_start(
            |sys| {
                let t = sys.new_handle();
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("tainted.port", Value::Handle(p));
                sys.self_contaminate(&Label::from_pairs(Level::Star, &[(t, Level::L3)]));
            },
            move |sys, _msg| {
                sys.send(sink, Value::Str("leak?".into())).unwrap();
            },
        ),
    );
    let tainted = kernel
        .global_env("tainted.port")
        .unwrap()
        .as_handle()
        .unwrap();

    // A burster used to exercise the queue limit.
    kernel.spawn(
        "burster",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("burster.port", Value::Handle(p));
            },
            move |sys, _msg| {
                for i in 0..10u64 {
                    sys.send(sink, Value::U64(1000 + i)).unwrap();
                }
            },
        ),
    );
    let burster = kernel
        .global_env("burster.port")
        .unwrap()
        .as_handle()
        .unwrap();

    // Phase 1: repeated worker traffic (cache-hot after the first pass),
    // interleaved with tainted sends and a dead-port probe.
    for round in 0..6u64 {
        for n in 0..4u64 {
            kernel.inject(worker, Value::U64(round * 4 + n));
        }
        kernel.inject(tainted, Value::Unit);
        kernel.inject(Handle::from_raw(0x0dead), Value::Unit);
        kernel.run();
    }

    // Phase 2: a burst against a tiny queue bound (silent QueueFull drops).
    kernel.set_queue_limit(4);
    kernel.inject(burster, Value::Unit);
    kernel.run();
    kernel.set_queue_limit(1 << 20);

    // Phase 3: one more cached pass.
    for n in 0..4u64 {
        kernel.inject(worker, Value::U64(n));
    }
    kernel.run();

    let entries: Vec<(u64, String)> = log
        .lock()
        .unwrap()
        .iter()
        .map(|r| (r.port.raw(), format!("{:?}", r.body)))
        .collect();
    let hash = trace_hash(&entries);
    let count = entries.len();
    (kernel, hash, count)
}

/// Golden values recorded from the pre-sharding engine (PR 1) at seed
/// 0xA5BE. `shards = 1` must match them forever.
#[test]
fn single_shard_matches_pre_refactor_engine() {
    let (kernel, hash, count) = run_workload(Kernel::new(0xA5BE));

    assert_eq!(count, 32, "delivered-to-sink trace length");
    assert_eq!(hash, 0xB927_D831_1B62_50B7, "delivery trace hash");

    let expected_stats = Stats {
        sent: 38,
        injected: 41,
        delivered: 67,
        dropped_label_check: 6,
        dropped_no_port: 6,
        dropped_queue_full: 6,
        eps_created: 28,
        eps_exited: 10,
        context_switches: 44,
        ep_switches: 7,
        cache_hits: 67,
        cache_misses: 6,
        // The deepest the mailboxes ever got during this workload —
        // deterministic like every other counter here. Steals and cache
        // resizes stay zero via the spread below: the tuner is inert on
        // a single-shard kernel by construction.
        queue_depth_hwm: 6,
        ..Stats::default()
    };
    assert_eq!(kernel.stats(), expected_stats);

    let expected_kmem = KmemReport {
        process_bytes: 3680,
        ep_bytes: 11592,
        handle_bytes: 1520,
        queue_bytes: 0,
        delivery_cache_bytes: 3768,
        user_frame_bytes: 77824,
        // A single-shard kernel allocates no pool, no cross-shard
        // channel storage worth billing, and never arms the tuner.
        pool_bytes: 0,
        tuner_bytes: 0,
    };
    assert_eq!(kernel.kmem_report(), expected_kmem);

    assert_eq!(kernel.now(), 1_205_630, "virtual clock");
    assert_eq!(kernel.delivery_cache_len(), 6);
    assert_eq!(kernel.ep_count(), 28);
    assert_eq!(kernel.process_count(), 4);
    assert_eq!(kernel.handle_table().allocated(), 5);
    assert_eq!(kernel.queue_len(), 0);
}
