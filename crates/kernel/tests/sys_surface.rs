//! Edge-case tests for the syscall surface: error paths, privilege
//! boundaries, and environment semantics not covered by the scenario
//! suites.

use std::sync::Arc;
use std::sync::Mutex;

use asbestos_kernel::util::{ep_service_fn, service_with_start};
use asbestos_kernel::{Category, Handle, Kernel, Label, Level, SysError, Value};

/// Collects results of syscalls executed inside a one-shot process.
fn probe(
    seed: u64,
    body: impl FnOnce(&mut asbestos_kernel::Sys<'_>) -> Vec<(&'static str, Result<(), SysError>)>
        + Send
        + 'static,
) -> Vec<(&'static str, Result<(), SysError>)> {
    let mut kernel = Kernel::new(seed);
    let results = Arc::new(Mutex::new(Vec::new()));
    let r2 = results.clone();
    let mut body = Some(body);
    kernel.spawn(
        "probe",
        Category::Other,
        service_with_start(
            move |sys| {
                let body = body.take().expect("start runs once");
                *r2.lock().unwrap() = body(sys);
            },
            |_, _| {},
        ),
    );
    kernel.run();
    Arc::try_unwrap(results)
        .expect("kernel dropped")
        .into_inner()
        .unwrap()
}

#[test]
fn raise_recv_requires_star() {
    let results = probe(401, |sys| {
        let foreign = Handle::from_raw(0x999);
        let mine = sys.new_handle();
        vec![
            ("raise-foreign", sys.raise_recv(foreign, Level::L3)),
            ("raise-own", sys.raise_recv(mine, Level::L3)),
            // Lowering (a no-op "raise" to a smaller level) never needs ⋆.
            ("raise-noop", sys.raise_recv(foreign, Level::L1)),
        ]
    });
    assert_eq!(
        results,
        vec![
            ("raise-foreign", Err(SysError::PrivilegeViolation)),
            ("raise-own", Ok(())),
            ("raise-noop", Ok(())),
        ]
    );
}

#[test]
fn port_operations_require_ownership() {
    let mut kernel = Kernel::new(402);
    // First process creates a port...
    kernel.spawn(
        "owner",
        Category::Other,
        service_with_start(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.publish_env("p", Value::Handle(p));
                // The owner can read and set its label.
                assert!(sys.port_label(p).is_ok());
                assert!(sys.set_port_label(p, Label::top()).is_ok());
            },
            |_, _| {},
        ),
    );
    // ...the second may not touch it.
    let errs = Arc::new(Mutex::new(Vec::new()));
    let e2 = errs.clone();
    kernel.spawn(
        "stranger",
        Category::Other,
        service_with_start(
            move |sys| {
                let p = sys.env("p").unwrap().as_handle().unwrap();
                e2.lock().unwrap().push(sys.port_label(p).err());
                e2.lock()
                    .unwrap()
                    .push(sys.set_port_label(p, Label::top()).err());
                e2.lock().unwrap().push(sys.dissociate_port(p).err());
                // Nonexistent handles are equally opaque.
                let ghost = Handle::from_raw(0x1234);
                e2.lock().unwrap().push(sys.port_label(ghost).err());
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(
        *errs.lock().unwrap(),
        vec![
            Some(SysError::NotPortOwner),
            Some(SysError::NotPortOwner),
            Some(SysError::NotPortOwner),
            Some(SysError::NotPortOwner),
        ]
    );
}

#[test]
fn memory_argument_validation() {
    let results = probe(403, |sys| {
        vec![
            ("write-empty", sys.mem_write(0, &[]).map(|_| ())),
            ("read-empty", sys.mem_read(0, 0).map(|_| ())),
            (
                "write-overflow",
                sys.mem_write(u64::MAX - 1, &[1, 2, 3]).map(|_| ()),
            ),
            ("write-ok", sys.mem_write(0x5000, &[1]).map(|_| ())),
        ]
    });
    assert_eq!(
        results,
        vec![
            ("write-empty", Err(SysError::InvalidArgument)),
            ("read-empty", Err(SysError::InvalidArgument)),
            ("write-overflow", Err(SysError::InvalidArgument)),
            ("write-ok", Ok(())),
        ]
    );
}

#[test]
fn spawning_inside_event_processes_is_forbidden() {
    let mut kernel = Kernel::new(404);
    let seen = Arc::new(Mutex::new(None));
    let s2 = seen.clone();
    kernel.spawn_ep_service(
        "w",
        Category::Other,
        ep_service_fn(
            |sys| {
                let p = sys.new_port(Label::top());
                sys.set_port_label(p, Label::top()).unwrap();
                sys.publish_env("w.port", Value::Handle(p));
            },
            move |sys, _msg| {
                let err = sys
                    .spawn(
                        "child",
                        Category::Other,
                        asbestos_kernel::util::service_fn(|_, _| {}),
                    )
                    .err();
                *s2.lock().unwrap() = err;
            },
        ),
    );
    let port = kernel.global_env("w.port").unwrap().as_handle().unwrap();
    kernel.inject(port, Value::Unit);
    kernel.run();
    assert_eq!(*seen.lock().unwrap(), Some(SysError::EventProcessForbidden));
}

#[test]
fn env_lookup_prefers_process_over_global() {
    let mut kernel = Kernel::new(405);
    kernel.set_global_env("key", Value::Str("global".into()));
    let seen = Arc::new(Mutex::new(Vec::new()));
    let s2 = seen.clone();
    kernel.spawn(
        "p",
        Category::Other,
        service_with_start(
            move |sys| {
                s2.lock().unwrap().push(sys.env("key"));
                sys.set_env("key", Value::Str("local".into()));
                s2.lock().unwrap().push(sys.env("key"));
                s2.lock().unwrap().push(sys.env("missing"));
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(
        *seen.lock().unwrap(),
        vec![
            Some(Value::Str("global".into())),
            Some(Value::Str("local".into())),
            None,
        ]
    );
}

#[test]
fn children_inherit_process_env_snapshot() {
    let mut kernel = Kernel::new(406);
    kernel.spawn(
        "parent",
        Category::Other,
        service_with_start(
            |sys| {
                sys.set_env("inherited", Value::U64(7));
                sys.spawn(
                    "child",
                    Category::Other,
                    service_with_start(
                        |csys| {
                            assert_eq!(csys.env("inherited"), Some(Value::U64(7)));
                            // The child's changes do not flow back.
                            csys.set_env("inherited", Value::U64(8));
                        },
                        |_, _| {},
                    ),
                )
                .unwrap();
                assert_eq!(sys.env("inherited"), Some(Value::U64(7)));
            },
            |_, _| {},
        ),
    );
    kernel.run();
}

#[test]
fn self_contamination_discards_stars() {
    // §5.3: "Only a process itself can remove ⋆ levels from its send
    // label" — and it can, via plain self-contamination (max(⋆, ℓ) = ℓ).
    let results = probe(407, |sys| {
        let h = sys.new_handle();
        assert!(sys.has_star(h));
        sys.self_contaminate(&Label::from_pairs(Level::Star, &[(h, Level::L1)]));
        assert!(!sys.has_star(h));
        assert_eq!(sys.send_label().get(h), Level::L1);
        // Once dropped, privilege does not come back.
        sys.self_contaminate(&Label::bottom());
        assert_eq!(sys.send_label().get(h), Level::L1);
        vec![("done", Ok(()))]
    });
    assert_eq!(results, vec![("done", Ok(()))]);
}

#[test]
fn lower_recv_label_is_free_and_sticky() {
    let mut kernel = Kernel::new(408);
    let pid = kernel.spawn(
        "p",
        Category::Other,
        service_with_start(
            |sys| {
                let h = Handle::from_raw(0x77);
                sys.lower_recv_label(&Label::from_pairs(Level::L3, &[(h, Level::L0)]));
                assert_eq!(sys.recv_label().get(h), Level::L0);
                // Raising it back requires ⋆ we do not have.
                assert_eq!(
                    sys.raise_recv(h, Level::L2),
                    Err(SysError::PrivilegeViolation)
                );
            },
            |_, _| {},
        ),
    );
    kernel.run();
    assert_eq!(
        kernel.process(pid).recv_label.get(Handle::from_raw(0x77)),
        Level::L0
    );
}

#[test]
fn queued_from_tracks_pending_sends() {
    let mut kernel = Kernel::new(409);
    let (rec, _log) = asbestos_kernel::util::Recorder::new("r");
    kernel.spawn("rec", Category::Other, Box::new(rec));
    let port = kernel.global_env("r").unwrap().as_handle().unwrap();
    let sender = kernel.spawn(
        "sender",
        Category::Other,
        service_with_start(
            move |sys| {
                sys.send(port, Value::Unit).unwrap();
                sys.send(port, Value::Unit).unwrap();
            },
            |_, _| {},
        ),
    );
    assert_eq!(kernel.queued_from(sender), 2);
    kernel.run();
    assert_eq!(kernel.queued_from(sender), 0);
}

#[test]
fn boot_epochs_mint_disjoint_handles() {
    // §5.1: handle values are unique since boot. With a durable store a
    // deployment actually reboots, so each boot epoch must key the handle
    // cipher differently — same seed, different epoch, different handles.
    let handles = |epoch: u64| -> Vec<u64> {
        let mut kernel = asbestos_kernel::Kernel::with_boot_epoch(
            42,
            asbestos_kernel::CostModel::default(),
            1,
            epoch,
        );
        assert_eq!(kernel.boot_epoch(), epoch);
        let minted = Arc::new(Mutex::new(Vec::new()));
        let m2 = minted.clone();
        kernel.spawn(
            "minter",
            Category::Other,
            service_with_start(
                move |sys| {
                    for _ in 0..32 {
                        m2.lock().unwrap().push(sys.new_handle().raw());
                    }
                },
                |_, _| {},
            ),
        );
        let out = minted.lock().unwrap().clone();
        out
    };
    let epoch1 = handles(1);
    let epoch2 = handles(2);
    let zero_a = handles(0);
    let zero_b = handles(0);
    // Epoch 0 is deterministic (the pre-durability configuration)...
    assert_eq!(zero_a, zero_b);
    // ...and distinct epochs share no handle values at all.
    assert!(epoch1.iter().all(|h| !epoch2.contains(h)));
    assert!(epoch1.iter().all(|h| !zero_a.contains(h)));
}

#[test]
fn teardown_runs_service_hooks_once() {
    struct Flushy {
        flushed: Arc<Mutex<u32>>,
    }
    impl asbestos_kernel::Service for Flushy {
        fn on_message(
            &mut self,
            _sys: &mut asbestos_kernel::Sys<'_>,
            _msg: &asbestos_kernel::Message,
        ) {
        }
        fn on_teardown(&mut self, _sys: &mut asbestos_kernel::Sys<'_>) {
            *self.flushed.lock().unwrap() += 1;
        }
    }
    let flushed = Arc::new(Mutex::new(0));
    let mut kernel = Kernel::new_sharded(411, 2);
    for i in 0..3 {
        kernel.spawn(
            &format!("svc-{i}"),
            Category::Other,
            Box::new(Flushy {
                flushed: flushed.clone(),
            }),
        );
    }
    // Event-process services have no durable state; no hook, no panic.
    kernel.spawn_ep_service("epsvc", Category::Other, ep_service_fn(|_| {}, |_, _| {}));
    kernel.run();
    assert_eq!(*flushed.lock().unwrap(), 0, "teardown is explicit");
    kernel.teardown();
    assert_eq!(*flushed.lock().unwrap(), 3, "every plain service flushed");
}
