//! God-mode kernel statistics.
//!
//! Asbestos's `send` deliberately tells the *sender* nothing about delivery
//! (§4); drops caused by label checks are visible only here, to tests and
//! benchmarks, never to simulated processes.

/// Why a queued message was dropped instead of delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Figure 4 requirement (1) failed: `E_S ⋢ (Q_R ⊔ D_R) ⊓ V ⊓ p_R`.
    LabelCheck,
    /// Figure 4 requirement (4) failed: `D_R ⋢ p_R`.
    PortLabelDecont,
    /// The destination handle does not name a port.
    NoSuchPort,
    /// The port has no owner (dissociated or its owner exited).
    NoOwner,
    /// The kernel message queue hit its configured limit (§8's resource
    /// exhaustion caveat made explicit).
    QueueFull,
    /// The destination port's own mailbox hit the per-port bound: local
    /// backpressure, so one hot port cannot starve every other mailbox.
    PortQueueFull,
}

/// Counters describing kernel activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Messages accepted by `send` (including ones later dropped).
    pub sent: u64,
    /// Messages injected by the external world (god-mode).
    pub injected: u64,
    /// Messages delivered to a handler.
    pub delivered: u64,
    /// Drops: label check (requirement 1).
    pub dropped_label_check: u64,
    /// Drops: decontamination exceeded the port label (requirement 4).
    pub dropped_port_decont: u64,
    /// Drops: destination was not a port.
    pub dropped_no_port: u64,
    /// Drops: port had no owner.
    pub dropped_no_owner: u64,
    /// Drops: queue full.
    pub dropped_queue_full: u64,
    /// Drops: the destination port's own mailbox was full (per-port
    /// backpressure).
    pub dropped_port_queue_full: u64,
    /// Event processes created.
    pub eps_created: u64,
    /// Event processes exited.
    pub eps_exited: u64,
    /// Full process-to-process context switches.
    pub context_switches: u64,
    /// Event-process switches within one process.
    pub ep_switches: u64,
    /// Delivery-decision cache hits (Figure 4 evaluations replayed in O(1)).
    pub cache_hits: u64,
    /// Delivery-decision cache misses (full Figure 4 evaluations).
    pub cache_misses: u64,
    /// Delivery-decision cache evictions (capacity pressure).
    pub cache_evictions: u64,
    /// Scheduler rounds executed by the multi-shard run loop (a
    /// single-shard kernel runs the monolithic loop and counts none).
    pub rounds: u64,
    /// Times a parked pool worker woke for a round. Back-to-back `run()`
    /// calls on one kernel keep growing this counter without creating a
    /// thread — that is the pool reuse this field exists to observe.
    pub worker_wakeups: u64,
    /// Cross-shard messages the destination shard picked up mid-round,
    /// without waiting for a barrier (sub-round routing). With parallel
    /// pool workers the subround/barrier split depends on thread timing;
    /// the *sum* of the two is scheduling-invariant.
    pub xshard_subround: u64,
    /// Cross-shard messages that waited out a round barrier before the
    /// destination shard picked them up.
    pub xshard_barrier: u64,
    /// Non-empty swap-drains of this shard's inbound cross-shard channel.
    /// `(xshard_subround + xshard_barrier) / xshard_batch_drains` is the
    /// mean batch length — the batching-efficacy observable: amortization
    /// of the channel mutex degrades toward 1 message per drain.
    pub xshard_batch_drains: u64,
    /// Largest batch one swap-drain ever pulled.
    pub xshard_batch_max: u64,
    /// Deepest one shard's mailboxes have ever been (messages pending at
    /// once). In the merged view this is a maximum across shards, so a
    /// hot shard's backlog is visible even when the mean stays flat.
    pub queue_depth_hwm: u64,
    /// Whole-port-queue steals this shard adopted (hot-shard work
    /// stealing: a process and all its port queues migrated here).
    pub steals: u64,
    /// Times the tuner resized this shard's delivery cache.
    pub cache_resizes: u64,
    /// Messages parked in the backpressure retry queue instead of being
    /// enqueued (credit overrun or shared-capacity pressure). Zero unless
    /// backpressure is armed.
    pub sent_deferred: u64,
    /// Messages shed by overload control: sends refused with
    /// `WouldBlock` after the sender exhausted its deferral quota, plus
    /// (silent) retry-queue backstop overflow.
    pub dropped_shed: u64,
    /// Parked messages re-admitted from the retry queue once capacity
    /// returned.
    pub retry_flushed: u64,
}

impl Stats {
    /// Total messages dropped for any reason.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_label_check
            + self.dropped_port_decont
            + self.dropped_no_port
            + self.dropped_no_owner
            + self.dropped_queue_full
            + self.dropped_port_queue_full
            + self.dropped_shed
    }

    /// Records a drop.
    pub(crate) fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::LabelCheck => self.dropped_label_check += 1,
            DropReason::PortLabelDecont => self.dropped_port_decont += 1,
            DropReason::NoSuchPort => self.dropped_no_port += 1,
            DropReason::NoOwner => self.dropped_no_owner += 1,
            DropReason::QueueFull => self.dropped_queue_full += 1,
            DropReason::PortQueueFull => self.dropped_port_queue_full += 1,
        }
    }

    /// Adds another counter set into this one (shard merging; the
    /// cluster crate uses it to merge per-kernel views the same way).
    pub fn absorb(&mut self, other: &Stats) {
        self.sent += other.sent;
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.dropped_label_check += other.dropped_label_check;
        self.dropped_port_decont += other.dropped_port_decont;
        self.dropped_no_port += other.dropped_no_port;
        self.dropped_no_owner += other.dropped_no_owner;
        self.dropped_queue_full += other.dropped_queue_full;
        self.dropped_port_queue_full += other.dropped_port_queue_full;
        self.eps_created += other.eps_created;
        self.eps_exited += other.eps_exited;
        self.context_switches += other.context_switches;
        self.ep_switches += other.ep_switches;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.rounds += other.rounds;
        self.worker_wakeups += other.worker_wakeups;
        self.xshard_subround += other.xshard_subround;
        self.xshard_barrier += other.xshard_barrier;
        self.xshard_batch_drains += other.xshard_batch_drains;
        // A maximum, not a sum: the merged view reports the largest batch
        // any shard drained.
        self.xshard_batch_max = self.xshard_batch_max.max(other.xshard_batch_max);
        // Also a maximum: the deepest backlog any single shard saw.
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.steals += other.steals;
        self.cache_resizes += other.cache_resizes;
        self.sent_deferred += other.sent_deferred;
        self.dropped_shed += other.dropped_shed;
        self.retry_flushed += other.retry_flushed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_accounting() {
        let mut s = Stats::default();
        s.record_drop(DropReason::LabelCheck);
        s.record_drop(DropReason::LabelCheck);
        s.record_drop(DropReason::NoOwner);
        assert_eq!(s.dropped_label_check, 2);
        assert_eq!(s.dropped_no_owner, 1);
        assert_eq!(s.dropped_total(), 3);
    }
}
