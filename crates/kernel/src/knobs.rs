//! The consolidated `ASBESTOS_*` environment knobs.
//!
//! Every runtime knob the workspace reads from the environment is named
//! here, and the three parse shapes they share live here too. The
//! subsystems keep their own defaults and domain types (the kernel's
//! cache capacity, the store's group-commit policy) and delegate the
//! string handling to this module, so a new knob is one constant plus a
//! call to an already-tested parser — not a seventh ad-hoc
//! `env::var(..).parse()` chain.
//!
//! | knob | shape | consumer |
//! |---|---|---|
//! | `ASBESTOS_WORKERS` | count | worker-thread budget (`kernel.rs`) |
//! | `ASBESTOS_CACHE_CAP` | count (0 = off) | delivery-cache bound (`delivery.rs`) |
//! | `ASBESTOS_PORT_QUEUE` | positive count | per-port queue bound (`shard.rs`) |
//! | `ASBESTOS_TUNE` | on/off flag | self-tuning loop (`tuner.rs`) |
//! | `ASBESTOS_DB_GROUP_COMMIT` | auto-or-count | WAL group commit (`db::durable`) |
//! | `ASBESTOS_NETD_LANES` | count | CI matrix lane count (tests) |
//! | `ASBESTOS_TEST_SHARDS` | count | CI matrix shard count (tests) |
//! | `ASBESTOS_KERNELS` | count | federation kernel count (`cluster`) |
//! | `ASBESTOS_CLUSTER_SOCKET` | path | federation socket directory (`cluster`) |

/// Worker-thread budget for multi-shard rounds.
pub const WORKERS_ENV: &str = "ASBESTOS_WORKERS";
/// Per-shard delivery-decision cache bound (`0` disables caching).
pub const CACHE_CAP_ENV: &str = "ASBESTOS_CACHE_CAP";
/// Per-port message-queue bound.
pub const PORT_QUEUE_ENV: &str = "ASBESTOS_PORT_QUEUE";
/// Self-tuning control loop arm/disarm flag.
pub const TUNE_ENV: &str = "ASBESTOS_TUNE";
/// WAL group-commit batch: a number, or `auto` for the adaptive
/// controller.
pub const DB_GROUP_COMMIT_ENV: &str = "ASBESTOS_DB_GROUP_COMMIT";
/// netd lane count exercised by the CI matrix.
pub const NETD_LANES_ENV: &str = "ASBESTOS_NETD_LANES";
/// Shard count exercised by the CI matrix.
pub const TEST_SHARDS_ENV: &str = "ASBESTOS_TEST_SHARDS";
/// Federated kernel count exercised by the CI matrix (see
/// `crates/cluster`).
pub const KERNELS_ENV: &str = "ASBESTOS_KERNELS";
/// Directory for the federation's path-based Unix sockets; unset means
/// anonymous in-process socket pairs.
pub const CLUSTER_SOCKET_ENV: &str = "ASBESTOS_CLUSTER_SOCKET";

/// Reads a knob's raw value.
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Parses a count knob: a whitespace-tolerant `usize`. Unset or
/// unparsable is `None`; `0` is a legal count (some knobs use it to mean
/// "disabled").
pub fn parse_count(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok())
}

/// Parses a count knob that must be at least 1 (queue bounds, lane
/// counts): like [`parse_count`], but `0` is rejected too.
pub fn parse_positive(value: Option<&str>) -> Option<usize> {
    parse_count(value).filter(|&n| n > 0)
}

/// Parses an on/off flag that defaults to *on*: everything except
/// `off`/`0`/`false` (case-insensitive, whitespace-tolerant) — including
/// unset — means enabled.
pub fn parse_enabled(value: Option<&str>) -> bool {
    !matches!(
        value.map(str::trim).map(str::to_ascii_lowercase).as_deref(),
        Some("off") | Some("0") | Some("false")
    )
}

/// Parsed value of an auto-or-count knob (`ASBESTOS_DB_GROUP_COMMIT`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AutoOrCount {
    /// The self-tuning controller.
    Auto,
    /// A fixed count, at least 1.
    Count(usize),
}

/// Parses an auto-or-count knob: `auto` (any case) selects the adaptive
/// controller, a number `>= 1` fixes the count, and unset, junk, or `0`
/// are `None` (the consumer's default applies).
pub fn parse_auto_or_count(value: Option<&str>) -> Option<AutoOrCount> {
    let v = value.map(str::trim)?;
    if v.eq_ignore_ascii_case("auto") {
        return Some(AutoOrCount::Auto);
    }
    parse_positive(Some(v)).map(AutoOrCount::Count)
}

/// Reads a count knob from the environment.
pub fn count(name: &str) -> Option<usize> {
    parse_count(raw(name).as_deref())
}

/// Reads an at-least-1 count knob from the environment.
pub fn positive(name: &str) -> Option<usize> {
    parse_positive(raw(name).as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(parse_count(None), None);
        assert_eq!(parse_count(Some("not-a-number")), None);
        assert_eq!(parse_count(Some("")), None);
        assert_eq!(parse_count(Some("0")), Some(0));
        assert_eq!(parse_count(Some("4096")), Some(4096));
        assert_eq!(parse_count(Some(" 64 ")), Some(64));
    }

    #[test]
    fn positive_counts_reject_zero() {
        assert_eq!(parse_positive(Some("0")), None);
        assert_eq!(parse_positive(Some("1")), Some(1));
        assert_eq!(parse_positive(Some(" 4096 ")), Some(4096));
        assert_eq!(parse_positive(None), None);
    }

    #[test]
    fn flags_default_on() {
        assert!(parse_enabled(None));
        assert!(parse_enabled(Some("on")));
        assert!(parse_enabled(Some("ON")));
        assert!(parse_enabled(Some("anything")));
        assert!(!parse_enabled(Some("off")));
        assert!(!parse_enabled(Some(" OFF ")));
        assert!(!parse_enabled(Some("0")));
        assert!(!parse_enabled(Some("false")));
    }

    #[test]
    fn auto_or_count_shapes() {
        assert_eq!(parse_auto_or_count(None), None);
        assert_eq!(parse_auto_or_count(Some("junk")), None);
        assert_eq!(parse_auto_or_count(Some("0")), None);
        assert_eq!(parse_auto_or_count(Some("8")), Some(AutoOrCount::Count(8)));
        assert_eq!(parse_auto_or_count(Some("auto")), Some(AutoOrCount::Auto));
        assert_eq!(parse_auto_or_count(Some(" AUTO ")), Some(AutoOrCount::Auto));
    }

    #[test]
    fn knob_names_are_namespaced() {
        for name in [
            WORKERS_ENV,
            CACHE_CAP_ENV,
            PORT_QUEUE_ENV,
            TUNE_ENV,
            DB_GROUP_COMMIT_ENV,
            NETD_LANES_ENV,
            TEST_SHARDS_ENV,
            KERNELS_ENV,
            CLUSTER_SOCKET_ENV,
        ] {
            assert!(name.starts_with("ASBESTOS_"), "{name}");
        }
    }
}
