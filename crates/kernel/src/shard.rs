//! One kernel shard: a self-contained slice of the kernel.
//!
//! A [`KernelShard`] owns every structure one delivery touches — the
//! processes and event processes scheduled on it, the vnode table for the
//! ports they own, the frame pool backing their memory, the per-port
//! mailboxes feeding its delivery loop, the delivery-decision cache, the
//! cycle clock, and the statistics counters. Shards share no mutable
//! state: the only cross-shard structures are the read-mostly
//! [`Router`](crate::router::Router) maps and the per-shard inbound
//! channels of the shared [`InboxSet`]. A cross-shard send pushes into
//! the *destination's* inbound channel the moment it resolves —
//! mid-drain, no barrier — and each shard drains its own channel at
//! deterministic points of its delivery loop (sub-round routing). That
//! isolation is what makes `&mut KernelShard` safe to hand to a pool
//! worker thread.
//!
//! Label evaluation always runs here, on the shard owning the destination
//! port, against the destination's own labels — Figure 4's semantics are
//! per-delivery and see exactly the same state they saw in the monolithic
//! engine, so sharding changes throughput, never policy.

use std::collections::VecDeque;
use std::sync::Arc;

use asbestos_labels::{ops, Handle, Label};

use crate::backpressure::{Backpressure, SendVerdict};
use crate::cycles::{Category, CostModel, CycleClock};
use crate::delivery::{default_cache_cap, DeliveryCache, Mailboxes};
use crate::event_process::EventProcess;
use crate::handle_table::{HandleTable, PortOwner, Vnode, VnodeKind};
use crate::ids::{EpId, ExecCtx, ProcessId};
use crate::kernel::{KmemReport, DEFAULT_QUEUE_LIMIT};
use crate::memory::{FrameId, FramePool, PageTable, Vpn, PAGE_SIZE};
use crate::message::{Message, QueuedMessage, SendArgs};
use crate::process::{Body, EpService, Process, Service};
use crate::router::{InboxSet, PullPoint, Router};
use crate::stats::{DropReason, Stats};
use crate::sys::Sys;
use crate::value::Value;

/// Default bound on queued messages per destination port. Like the
/// shard-wide bound it defaults high enough never to fire; deployments
/// lower it so one hot port cannot monopolize the whole queue budget
/// (§8's resource-exhaustion caveat, applied per port).
pub const DEFAULT_PORT_QUEUE_LIMIT: usize = DEFAULT_QUEUE_LIMIT;

/// Environment variable overriding the per-port queue bound.
pub use crate::knobs::PORT_QUEUE_ENV;

/// Parses a per-port queue bound from an env-var value. Unset,
/// unparsable, or zero (a port that could never accept a message) fall
/// back to [`DEFAULT_PORT_QUEUE_LIMIT`].
pub(crate) fn port_queue_limit_from(value: Option<&str>) -> usize {
    crate::knobs::parse_positive(value).unwrap_or(DEFAULT_PORT_QUEUE_LIMIT)
}

/// The per-port queue bound for new shards: `ASBESTOS_PORT_QUEUE` if set
/// and valid, else [`DEFAULT_PORT_QUEUE_LIMIT`].
pub(crate) fn default_port_queue_limit() -> usize {
    port_queue_limit_from(crate::knobs::raw(PORT_QUEUE_ENV).as_deref())
}

/// Everything one process owns, packed to cross a shard boundary during
/// hot-shard work stealing (see [`KernelShard::export_process`]).
pub(crate) struct ProcessExport {
    proc: Process,
    /// Unique source frames and their page contents.
    frame_contents: Vec<(FrameId, Box<[u8]>)>,
    /// vpn → source frame id, preserving the sharing structure.
    mappings: Vec<(Vpn, FrameId)>,
    /// Per owned port: handle, vnode (receive rights), whole pending
    /// queue.
    ports: Vec<(Handle, Vnode, VecDeque<QueuedMessage>)>,
}

/// One shard of the kernel: a complete, isolated delivery engine.
pub struct KernelShard {
    /// This shard's number (the shard half of packed ids).
    pub(crate) id: u16,
    pub(crate) cost: CostModel,
    pub(crate) clock: CycleClock,
    pub(crate) handles: HandleTable,
    pub(crate) processes: Vec<Process>,
    pub(crate) eps: Vec<EventProcess>,
    pub(crate) frames: FramePool,
    pub(crate) mailboxes: Mailboxes,
    /// Every shard's inbound cross-shard channel, shared kernel-wide.
    /// Sends to other shards push into `xshard[dest]`; this shard's own
    /// pending inbound messages live in `xshard[self.id]` until
    /// [`KernelShard::pull_inbound`] drains them.
    pub(crate) xshard: Arc<InboxSet>,
    /// Reusable swap partner for [`KernelShard::pull_inbound`]: drained
    /// batches land here, are enqueued, and the emptied (but still
    /// capacitied) buffer swaps back into the inbound channel on the next
    /// drain — steady state allocates nothing.
    pub(crate) drain_buf: Vec<QueuedMessage>,
    pub(crate) queue_limit: usize,
    pub(crate) port_queue_limit: usize,
    pub(crate) delivery_cache: DeliveryCache,
    pub(crate) stats: Stats,
    /// Overload-control state: credit windows, the retry queue, per-port
    /// pressure counters. Inert unless armed (see
    /// [`crate::backpressure`]).
    pub(crate) bp: Backpressure,
    /// Mailbox depth at which this shard reports itself overloaded to
    /// deployment-side shedders ([`crate::Sys::overloaded`]). Starts at
    /// `usize::MAX` (never) and is adapted downward by the tuner's
    /// shed-threshold loop when port-queue drops appear.
    pub(crate) shed_threshold: usize,
    pub(crate) last_ctx: Option<ExecCtx>,
    /// Real (host) nanoseconds this shard's delivery loop has run, over
    /// all `run()` calls. Shards model parallel cores, so the busiest
    /// shard's busy time is what an adequately-cored host's wall clock
    /// would measure for the whole run — the `scale_shards` bench reads
    /// this. Deliberately *not* part of [`Stats`]: host timing is
    /// nondeterministic, and `Stats` is pinned by the golden-trace test.
    pub(crate) busy_nanos: u64,
}

impl KernelShard {
    /// `lane`/`lanes` partition the handle-cipher counter space: shard
    /// `i` of an ordinary kernel is lane `i` of `num_shards`; shard `i`
    /// of federated kernel `k` (slot `k` of `slots`) is lane
    /// `k*num_shards + i` of `slots*num_shards`, so every handle minted
    /// anywhere in a cluster is unique cluster-wide (§5.1's "unique
    /// since boot", across the whole federation).
    pub(crate) fn new(
        seed: u64,
        id: u16,
        lane: u64,
        lanes: u64,
        cost: CostModel,
        xshard: Arc<InboxSet>,
    ) -> KernelShard {
        KernelShard {
            id,
            cost,
            clock: CycleClock::new(),
            handles: HandleTable::with_partition(seed, lane, lanes),
            processes: Vec::new(),
            eps: Vec::new(),
            frames: FramePool::new(),
            mailboxes: Mailboxes::default(),
            xshard,
            drain_buf: Vec::new(),
            queue_limit: DEFAULT_QUEUE_LIMIT,
            port_queue_limit: default_port_queue_limit(),
            delivery_cache: DeliveryCache::new(default_cache_cap()),
            stats: Stats::default(),
            bp: Backpressure::default(),
            shed_threshold: usize::MAX,
            last_ctx: None,
            busy_nanos: 0,
        }
    }

    /// This shard's number.
    pub fn shard_id(&self) -> usize {
        self.id as usize
    }

    // ------------------------------------------------------------------
    // Spawning and process lifecycle.
    // ------------------------------------------------------------------

    pub(crate) fn spawn_body(
        &mut self,
        router: &Router,
        name: &str,
        category: Category,
        body: Body,
        inherit_from: Option<ProcessId>,
    ) -> ProcessId {
        let mut proc = Process::new(name, category, body);
        if let Some(parent) = inherit_from {
            debug_assert_eq!(parent.shard(), self.id as usize, "fork is shard-local");
            let p = &self.processes[parent.index()];
            // Fork semantics: the child inherits the parent's labels (§5.3's
            // "either by forking or using ... decontamination") and env.
            proc.send_label = p.send_label.clone();
            proc.recv_label = p.recv_label.clone();
            proc.env = p.env.clone();
        }
        self.processes.push(proc);
        let pid = ProcessId::new(self.id, self.processes.len() - 1);
        // Run the start hook in the new process's (base) context.
        let mut body = self.processes[pid.index()]
            .body
            .take()
            .expect("freshly spawned process has a body");
        {
            let mut sys = Sys::new(self, router, ExecCtx { pid, ep: None }, false);
            match &mut body {
                Body::Plain(s) => s.on_start(&mut sys),
                Body::Event(s) => s.on_base_start(&mut sys),
            }
        }
        if self.processes[pid.index()].alive {
            self.processes[pid.index()].body = Some(body);
        }
        pid
    }

    pub(crate) fn create_ep(&mut self, pid: ProcessId) -> EpId {
        let p = &self.processes[pid.index()];
        // `Arc` bumps: the EP shares the base's label storage until either
        // side's labels change.
        let ep = EventProcess::new(pid, Arc::clone(&p.send_label), Arc::clone(&p.recv_label));
        self.eps.push(ep);
        let eid = EpId::new(self.id, self.eps.len() - 1);
        self.processes[pid.index()].eps.push(eid);
        self.stats.eps_created += 1;
        self.clock.charge(Category::KernelIpc, self.cost.ep_create);
        eid
    }

    pub(crate) fn invoke(
        &mut self,
        router: &Router,
        pid: ProcessId,
        ep: Option<EpId>,
        is_new_ep: bool,
        msg: &Message,
    ) {
        let Some(mut body) = self.processes[pid.index()].body.take() else {
            return;
        };
        if self.bp.enabled {
            // Each handler activation is one tick of the sender's credit
            // clock: windows refill on the sender's own schedule, never
            // on (attacker-observable) delivery events.
            self.bp.note_activation(pid);
        }
        {
            let mut sys = Sys::new(self, router, ExecCtx { pid, ep }, is_new_ep);
            match &mut body {
                Body::Plain(s) => s.on_message(&mut sys, msg),
                Body::Event(s) => s.on_event(&mut sys, msg),
            }
        }
        if self.processes[pid.index()].alive {
            self.processes[pid.index()].body = Some(body);
        } else {
            drop(body);
            self.cleanup_process(router, pid);
            return;
        }
        if let Some(eid) = ep {
            if !self.eps[eid.index()].alive {
                self.cleanup_ep(router, eid);
            }
        }
    }

    /// Runs every live plain service's `on_teardown` hook (clean
    /// shutdown; see [`crate::Service::on_teardown`]). Event-process
    /// services keep no durable state by construction — their memory is
    /// per-boot simulated frames — so only plain services get the hook.
    pub(crate) fn teardown(&mut self, router: &Router) {
        for index in 0..self.processes.len() {
            if !self.processes[index].alive {
                continue;
            }
            let Some(mut body) = self.processes[index].body.take() else {
                continue;
            };
            let pid = ProcessId::new(self.id, index);
            if let Body::Plain(service) = &mut body {
                let mut sys = Sys::new(self, router, ExecCtx { pid, ep: None }, false);
                service.on_teardown(&mut sys);
            }
            if self.processes[index].alive {
                self.processes[index].body = Some(body);
            }
        }
    }

    pub(crate) fn cleanup_ep(&mut self, router: &Router, eid: EpId) {
        let pid = self.eps[eid.index()].process;
        for frame in self.eps[eid.index()].delta.drain_all() {
            self.frames.release(frame);
        }
        let ports: Vec<Handle> = std::mem::take(&mut self.eps[eid.index()].ports);
        for port in ports {
            self.handles.dissociate(port);
            router.unregister_port(port);
        }
        self.eps[eid.index()].alive = false;
        self.processes[pid.index()].eps.retain(|&e| e != eid);
        self.stats.eps_exited += 1;
    }

    pub(crate) fn cleanup_process(&mut self, router: &Router, pid: ProcessId) {
        let eps: Vec<EpId> = self.processes[pid.index()].eps.clone();
        for eid in eps {
            self.cleanup_ep(router, eid);
        }
        for port in self.handles.ports_owned_by(PortOwner::Process(pid)) {
            self.handles.dissociate(port);
            router.unregister_port(port);
        }
        let table = std::mem::take(&mut self.processes[pid.index()].page_table);
        for (_, frame) in table.iter() {
            self.frames.release(frame);
        }
        self.processes[pid.index()].alive = false;
    }

    // ------------------------------------------------------------------
    // Hot-shard work stealing: whole-process migration.
    // ------------------------------------------------------------------

    /// Packs up everything `pid` owns so the coordinator can hand it to
    /// another shard: the process structure, its address-space contents,
    /// and — per owned port — the vnode (receive rights) plus the whole
    /// pending mailbox queue. Queues move in one piece, never message by
    /// message, so the per-sender-per-port FIFO order is preserved
    /// verbatim; and because the *owner* moves with its ports, label
    /// evaluation keeps running on the shard owning the destination
    /// port's data, exactly as before.
    ///
    /// The source entry stays behind as a dead, nameless husk — pids are
    /// never reused and process indexes must stay stable.
    pub(crate) fn export_process(&mut self, pid: ProcessId) -> ProcessExport {
        let mut ports = Vec::new();
        for port in self.handles.ports_owned_by(PortOwner::Process(pid)) {
            let vnode = self
                .handles
                .take_vnode(port)
                .expect("owned port has a vnode");
            let queue = self.mailboxes.take_port_queue(port);
            ports.push((port, vnode, queue));
        }

        let p = &mut self.processes[pid.index()];
        let mut proc = Process {
            name: std::mem::take(&mut p.name),
            send_label: Arc::clone(&p.send_label),
            recv_label: Arc::clone(&p.recv_label),
            category: p.category,
            page_table: std::mem::take(&mut p.page_table),
            env: std::mem::take(&mut p.env),
            eps: Vec::new(),
            alive: true,
            ep_mode: p.ep_mode,
            body: p.body.take(),
        };
        p.alive = false;

        // Address-space contents: copy each unique frame once, but keep
        // the vpn→frame structure so the destination rebuilds the same
        // sharing (and therefore the same refcounts and kmem footprint).
        let mut mappings = Vec::with_capacity(proc.page_table.len());
        let mut frame_contents: Vec<(FrameId, Box<[u8]>)> = Vec::new();
        for (vpn, frame) in proc.page_table.iter() {
            mappings.push((vpn, frame));
            if !frame_contents.iter().any(|&(f, _)| f == frame) {
                let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
                self.frames.read(frame, 0, &mut data);
                frame_contents.push((frame, data));
            }
        }
        // One release per mapping — the same rule `cleanup_process`
        // follows — then the table resets; the destination pool rebuilds
        // it from the copied contents.
        for &(_, frame) in &mappings {
            self.frames.release(frame);
        }
        proc.page_table = PageTable::new();

        ProcessExport {
            proc,
            frame_contents,
            mappings,
            ports,
        }
    }

    /// Installs a migrated process on this shard: rebuilds its address
    /// space in this shard's frame pool, re-registers its ports in the
    /// Router directory, and adopts each port's pending queue wholesale.
    /// Adopted messages were already counted at their original enqueue,
    /// so no `Stats` message counter moves here — only `steals`.
    pub(crate) fn adopt_process(&mut self, router: &Router, export: ProcessExport) -> ProcessId {
        let ProcessExport {
            mut proc,
            frame_contents,
            mappings,
            ports,
        } = export;

        let mut frame_map: Vec<(FrameId, FrameId)> = Vec::with_capacity(frame_contents.len());
        for (old, data) in frame_contents {
            let new = self.frames.alloc_zeroed();
            self.frames.write(new, 0, &data);
            frame_map.push((old, new));
        }
        let mut mapped_once: Vec<FrameId> = Vec::new();
        for (vpn, old) in mappings {
            let new = frame_map
                .iter()
                .find(|&&(o, _)| o == old)
                .expect("every mapping's frame was exported")
                .1;
            if mapped_once.contains(&new) {
                // alloc_zeroed's initial refcount covered the first
                // mapping; shared frames take one more per extra vpn.
                self.frames.retain(new);
            } else {
                mapped_once.push(new);
            }
            proc.page_table.map(vpn, new);
        }

        let index = self.processes.len();
        let new_pid = ProcessId::new(self.id, index);
        self.processes.push(proc);

        for (port, mut vnode, queue) in ports {
            if let VnodeKind::Port(state) = &mut vnode.kind {
                state.owner = Some(PortOwner::Process(new_pid));
            }
            self.handles.adopt_vnode(port, vnode);
            router.register_port(port, self.id);
            self.mailboxes.push_queue(port, queue);
        }
        self.note_queue_depth();
        self.stats.steals += 1;
        new_pid
    }

    // ------------------------------------------------------------------
    // The send path. All queue policy lives here and in
    // `enqueue_checked`, which the cross-shard routing path shares.
    // ------------------------------------------------------------------

    pub(crate) fn send_from(
        &mut self,
        router: &Router,
        ctx: ExecCtx,
        port: Handle,
        body: Value,
        args: &SendArgs,
    ) -> Result<SendVerdict, crate::error::SysError> {
        let category = self.processes[ctx.pid.index()].category;
        let ps: &Arc<Label> = match ctx.ep {
            Some(eid) => &self.eps[eid.index()].send_label,
            None => &self.processes[ctx.pid.index()].send_label,
        };

        // Charge send cost up front: base + payload + label argument
        // processing. Privilege-failing sends still did this work in the
        // simulated kernel, so they are charged too.
        let label_work = (args.label_work() + ps.entry_count() + 1) as u64;
        self.clock.charge(Category::KernelIpc, self.cost.send_base);
        self.clock.charge(
            Category::KernelIpc,
            body.size_bytes() as u64 * self.cost.msg_byte + label_work * self.cost.label_entry,
        );
        let _ = category;

        // Figure 4 requirement (2): D_S(h) < 3 ⇒ P_S(h) = ⋆.
        if !ops::check_decont_send_privilege(&args.decont_send, ps) {
            return Err(crate::error::SysError::PrivilegeViolation);
        }
        // Figure 4 requirement (3): D_R(h) > ⋆ ⇒ P_S(h) = ⋆.
        if !ops::check_decont_recv_privilege(&args.decont_recv, ps) {
            return Err(crate::error::SysError::PrivilegeViolation);
        }

        // E_S = P_S ⊔ C_S, snapshotted now; delivery checks happen when the
        // receiver is scheduled (§4: delivery is decided at receive time).
        // A no-op C_S — the common case — shares P_S by reference, which
        // also keeps E_S's fingerprint stable across sends and is what
        // makes the delivery cache hit for repeated traffic.
        // (`is_all_star` implies uniform: entries at the default level are
        // normalized away, so an all-star label has no explicit entries.)
        let es = if args.contaminate.is_all_star() {
            Arc::clone(ps)
        } else {
            Arc::new(ops::effective_send(ps, &args.contaminate))
        };

        let qm = QueuedMessage {
            port,
            body,
            es,
            ds: args.decont_send.clone(),
            dr: args.decont_recv.clone(),
            v: args.verify.clone(),
            from: Some(ctx),
        };

        // Route: a port in this shard's vnode table is local (handles are
        // globally unique, so presence here is authoritative); anything
        // else asks the directory. Label evaluation always happens on the
        // destination shard, when the message is popped.
        let dest = if self.handles.get(port).is_some() {
            self.id
        } else if router.remote_kernel_of(port).is_some() {
            // Federation: the port lives on another kernel. Park the
            // message for the gateway; the delivery-time Figure 4 check
            // (and the destination-side queue bounds, and `Stats::sent`)
            // run on the *destination* kernel, so verdicts derive only
            // from destination state. Credits never apply here — a
            // remote verdict would be a cross-kernel covert channel, the
            // same reason injections are credit-free.
            router.push_egress(crate::message::RemoteSend {
                port: qm.port,
                body: qm.body,
                es: qm.es,
                ds: qm.ds,
                dr: qm.dr,
                v: qm.v,
            });
            return Ok(SendVerdict::Delivered);
        } else {
            router.shard_of(port)
        };
        if dest == self.id {
            if self.bp.enabled {
                return self.bp_send_local(ctx.pid, qm);
            }
            self.enqueue_checked(qm);
        } else {
            if self.bp.enabled {
                // Cross-shard sends are credit-free (the loop is
                // shard-local), but channel-bound overflow and the
                // per-sender FIFO barrier park instead of dropping.
                // Parking is silent — the verdict never reflects shared
                // channel state.
                if self.bp.barred(ctx.pid, port)
                    || self.xshard.len(dest as usize) >= self.queue_limit
                {
                    self.park(qm);
                    return Ok(SendVerdict::Delivered);
                }
            }
            // Sub-round routing: push straight into the destination's
            // inbound channel — no outbox, no barrier wait. Queue bounds
            // are ultimately the destination shard's to enforce (it runs
            // `enqueue_checked` when it pulls the batch), but the channel
            // honors this shard's bound so a handler looping on
            // cross-shard sends cannot buffer unbounded memory — the §8
            // backstop the monolithic engine's send-time check provided.
            // (Bounds are kernel-uniform: see `Kernel::set_queue_limit`.)
            if !self.xshard.push(dest as usize, qm, self.queue_limit) {
                self.stats.record_drop(DropReason::QueueFull);
            }
        }
        Ok(SendVerdict::Delivered)
    }

    /// Drains this shard's inbound cross-shard channel into its per-port
    /// mailboxes, applying the destination-side queue bounds exactly as a
    /// local send would. Returns the number of messages pulled; `point`
    /// picks which observability counter they land in.
    pub(crate) fn pull_inbound(&mut self, point: PullPoint) -> usize {
        let mut batch = std::mem::take(&mut self.drain_buf);
        let n = self.xshard.take_into(self.id as usize, &mut batch);
        if n == 0 {
            self.drain_buf = batch;
            return 0;
        }
        match point {
            PullPoint::Barrier => self.stats.xshard_barrier += n as u64,
            PullPoint::Subround => self.stats.xshard_subround += n as u64,
        }
        self.stats.xshard_batch_drains += 1;
        self.stats.xshard_batch_max = self.stats.xshard_batch_max.max(n as u64);
        for qm in batch.drain(..) {
            self.enqueue_inbound(qm);
        }
        // `drain` leaves the capacity in place; hand the buffer back as
        // the next swap partner.
        self.drain_buf = batch;
        n
    }

    /// Applies the queue bounds and enqueues (or silently drops) one
    /// message. Shared by the local send path and cross-shard routing, so
    /// both enforce identical policy on the destination shard's state.
    pub(crate) fn enqueue_checked(&mut self, qm: QueuedMessage) {
        if self.mailboxes.len() >= self.queue_limit {
            // Resource exhaustion drops are silent, like label drops (§4).
            self.stats.record_drop(DropReason::QueueFull);
            return;
        }
        if self.mailboxes.port_len(qm.port) >= self.port_queue_limit {
            // Per-port backpressure: one hot port cannot starve the rest
            // of the shard's mailboxes.
            self.stats.record_drop(DropReason::PortQueueFull);
            self.bp.note_port_drop(qm.port);
            return;
        }
        self.stats.sent += 1;
        self.mailboxes.push(qm);
        self.note_queue_depth();
    }

    /// Mirrors the mailbox high-water mark into this shard's counters
    /// (`Stats::queue_depth_hwm`); called after anything deepens the
    /// mailboxes.
    pub(crate) fn note_queue_depth(&mut self) {
        let hwm = self.mailboxes.depth_hwm() as u64;
        if hwm > self.stats.queue_depth_hwm {
            self.stats.queue_depth_hwm = hwm;
        }
    }

    // ------------------------------------------------------------------
    // Accounting.
    // ------------------------------------------------------------------

    /// This shard's contribution to the Figure 6 memory measurement.
    pub fn kmem_report(&self) -> KmemReport {
        let process_bytes = self
            .processes
            .iter()
            .filter(|p| p.alive)
            .map(Process::kernel_bytes)
            .sum();
        let ep_bytes = self
            .eps
            .iter()
            .filter(|e| e.alive)
            .map(EventProcess::kernel_bytes)
            .sum();
        let handle_bytes = self.handles.kernel_bytes();
        // Pending messages: mailboxes plus anything parked in this
        // shard's inbound cross-shard channel (queue_len counts both).
        // Payload backing buffers are charged **once** per unique buffer,
        // however many queued messages share them — the accounting rule
        // that keeps the zero-copy path's reported footprint honest (N
        // queued refcounts on one 4 KiB buffer hold 4 KiB, not N·4 KiB).
        let mut seen_buffers = std::collections::HashSet::new();
        let mut queue_bytes: usize = 0;
        let mut charge = |qm: &QueuedMessage| {
            queue_bytes += qm.queue_bytes_shallow();
            qm.body.for_each_payload(&mut |p| {
                if !p.is_empty() && seen_buffers.insert(p.backing_id()) {
                    queue_bytes += p.backing_len();
                }
            });
        };
        for qm in self.mailboxes.iter() {
            charge(qm);
        }
        self.xshard.for_each_queued(self.id as usize, &mut charge);
        let delivery_cache_bytes = self.delivery_cache.bytes();
        let user_frame_bytes = self.frames.frames_in_use() * PAGE_SIZE;
        KmemReport {
            process_bytes,
            ep_bytes,
            handle_bytes,
            queue_bytes,
            delivery_cache_bytes,
            user_frame_bytes,
            // Scheduler and tuner bookkeeping are kernel-level, not
            // per-shard; the coordinator fills them in
            // (`Kernel::kmem_report`).
            pool_bytes: 0,
            tuner_bytes: 0,
        }
    }

    /// This shard's statistics counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// This shard's cycle clock.
    pub fn clock(&self) -> &CycleClock {
        &self.clock
    }

    /// This shard's delivery-cache bound right now (0 = disabled). A
    /// static number unless the tuner is armed, in which case it is the
    /// live output of the adaptive-capacity loop.
    pub fn delivery_cache_capacity(&self) -> usize {
        self.delivery_cache.capacity()
    }

    /// Pending messages queued on this shard (mailboxes, its inbound
    /// cross-shard channel, and its backpressure retry queue).
    pub fn queue_len(&self) -> usize {
        self.mailboxes.len() + self.xshard.len(self.id as usize) + self.bp.retry_len()
    }

    /// Real nanoseconds this shard's delivery loop has run (see the field
    /// docs; the busiest shard bounds the wall clock of an
    /// adequately-cored host).
    pub fn busy_nanos(&self) -> u64 {
        self.busy_nanos
    }
}

/// `Box<dyn Service>` and `Box<dyn EpService>` must cross into shard
/// threads; the supertrait bound (see [`Service`], [`EpService`]) is what
/// makes a whole shard `Send`. This assertion pins that property at
/// compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    let _ = assert_send::<KernelShard>;
    let _ = assert_send::<Box<dyn Service>>;
    let _ = assert_send::<Box<dyn EpService>>;
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_queue_limit_parsing() {
        // Unset, junk, and zero (a port that could never accept a
        // message) all fall back to the default.
        assert_eq!(port_queue_limit_from(None), DEFAULT_PORT_QUEUE_LIMIT);
        assert_eq!(
            port_queue_limit_from(Some("not-a-number")),
            DEFAULT_PORT_QUEUE_LIMIT
        );
        assert_eq!(port_queue_limit_from(Some("0")), DEFAULT_PORT_QUEUE_LIMIT);
        assert_eq!(port_queue_limit_from(Some("")), DEFAULT_PORT_QUEUE_LIMIT);
        // Valid values win, whitespace tolerated.
        assert_eq!(port_queue_limit_from(Some("64")), 64);
        assert_eq!(port_queue_limit_from(Some(" 4096 ")), 4096);
    }
}
