//! Cross-shard routing state.
//!
//! A sharded kernel partitions all process, port, and queue state across
//! [`crate::shard::KernelShard`]s; the [`Router`] is the only state shared
//! between them. It holds exactly two read-mostly maps:
//!
//! * the **port directory** — which shard owns each port handle, written
//!   once at `new_port` time (ports never migrate), read on every send
//!   that does not resolve locally;
//! * the **global environment** — the §4 bootstrapping namespace, which
//!   was always whole-kernel state.
//!
//! Everything else a delivery touches (labels, mailboxes, frames, the
//! decision cache) is shard-private, which is what lets shards run their
//! delivery loops on parallel threads without taking a single lock on the
//! hot path: a shard only consults the directory for ports it does not
//! own, and messages crossing shards travel through per-shard outboxes
//! that the coordinator drains between barrier-synchronized rounds.
//!
//! Determinism: directory entries are created before any other shard can
//! learn the handle (handle values propagate through messages and the
//! environment, both of which synchronize at round barriers), so lookup
//! races cannot occur in workloads that follow the §4 bootstrap
//! convention. The *environment* is the one shared-state carve-out:
//! when two shards touch one key in the same round — a write racing a
//! write, or a write racing a `Sys::env` read — the winner is decided by
//! lock order, i.e. by thread scheduling, and such workloads are not
//! reproducible. Publish during spawn (the coordinator phase) and read
//! later, as §4's bootstrap does, and every run is deterministic;
//! single-shard kernels take none of these paths.

use std::collections::{BTreeMap, HashMap};
use std::sync::RwLock;

use asbestos_labels::Handle;

use crate::value::Value;

/// Shared cross-shard state: the port directory and the global
/// environment. See the module docs for the determinism contract.
pub(crate) struct Router {
    num_shards: u16,
    /// Port handle → owning shard. Only populated when `num_shards > 1`;
    /// a single-shard kernel resolves everything locally.
    ports: RwLock<HashMap<Handle, u16>>,
    /// The §4 global environment (init/launcher bootstrap namespace).
    env: RwLock<BTreeMap<String, Value>>,
}

impl Router {
    pub fn new(num_shards: usize) -> Router {
        Router {
            num_shards: num_shards as u16,
            ports: RwLock::new(HashMap::new()),
            env: RwLock::new(BTreeMap::new()),
        }
    }

    /// Records that `port` is owned by `shard`. Single-shard kernels skip
    /// the directory entirely (everything is local).
    pub fn register_port(&self, port: Handle, shard: u16) {
        if self.num_shards > 1 {
            self.ports
                .write()
                .expect("port directory lock")
                .insert(port, shard);
        }
    }

    /// Forgets a port that lost its receive rights (dissociation, owner
    /// exit). Keeps the directory bounded by *live* ports; a racing or
    /// stale send falls back to the hash shard and drops `NoSuchPort`,
    /// the same outcome the owning shard's dissociated vnode produces.
    pub fn unregister_port(&self, port: Handle) {
        if self.num_shards > 1 {
            self.ports
                .write()
                .expect("port directory lock")
                .remove(&port);
        }
    }

    /// The shard a message to `port` must be evaluated on.
    ///
    /// Unknown handles (plain compartments, bogus values) fall back to a
    /// deterministic hash of the handle value; the chosen shard finds no
    /// vnode and records the `NoSuchPort` drop, exactly as a single-shard
    /// kernel would.
    pub fn shard_of(&self, port: Handle) -> u16 {
        if self.num_shards == 1 {
            return 0;
        }
        if let Some(&shard) = self.ports.read().expect("port directory lock").get(&port) {
            return shard;
        }
        (port.raw() % self.num_shards as u64) as u16
    }

    /// Reads a global environment entry.
    pub fn env_get(&self, key: &str) -> Option<Value> {
        self.env.read().expect("env lock").get(key).cloned()
    }

    /// Writes a global environment entry.
    pub fn env_set(&self, key: &str, value: Value) {
        self.env
            .write()
            .expect("env lock")
            .insert(key.to_string(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_and_fallback() {
        let r = Router::new(4);
        let p = Handle::from_raw(0x123);
        // Unknown: deterministic hash fallback.
        assert_eq!(r.shard_of(p), (0x123 % 4) as u16);
        r.register_port(p, 3);
        assert_eq!(r.shard_of(p), 3);
    }

    #[test]
    fn single_shard_skips_directory() {
        let r = Router::new(1);
        let p = Handle::from_raw(0x999);
        r.register_port(p, 0);
        assert_eq!(r.shard_of(p), 0);
        assert!(r.ports.read().unwrap().is_empty());
    }

    #[test]
    fn unregister_forgets_ports() {
        let r = Router::new(4);
        let p = Handle::from_raw(0x40);
        r.register_port(p, 2);
        assert_eq!(r.shard_of(p), 2);
        r.unregister_port(p);
        // Back to the hash fallback, and the map holds nothing.
        assert_eq!(r.shard_of(p), 0);
        assert!(r.ports.read().unwrap().is_empty());
    }

    #[test]
    fn env_roundtrip() {
        let r = Router::new(2);
        assert_eq!(r.env_get("x"), None);
        r.env_set("x", Value::U64(9));
        assert_eq!(r.env_get("x"), Some(Value::U64(9)));
    }
}
