//! Cross-shard routing state.
//!
//! A sharded kernel partitions all process, port, and queue state across
//! [`crate::shard::KernelShard`]s; the [`Router`] is the only state shared
//! between them. It holds exactly two read-mostly maps:
//!
//! * the **port directory** — which shard owns each port handle, written
//!   at `new_port` time and updated only between rounds when the tuner
//!   (or a test) migrates a port's owner to another shard, read on every
//!   send that does not resolve locally;
//! * the **global environment** — the §4 bootstrapping namespace, which
//!   was always whole-kernel state.
//!
//! Everything else a delivery touches (labels, mailboxes, frames, the
//! decision cache) is shard-private, which is what lets shards run their
//! delivery loops on parallel threads without taking a single lock on the
//! hot path: a shard only consults the directory for ports it does not
//! own, and messages crossing shards travel through the per-shard inbound
//! channels of the [`InboxSet`] below — pushed by the *sending* shard the
//! moment the send resolves, drained by the *receiving* shard at
//! deterministic points in its own schedule (sub-round routing; see
//! `kernel.rs` for the round structure).
//!
//! Determinism: directory entries are created before any other shard can
//! learn the handle (handle values propagate through messages and the
//! environment, both of which synchronize at the receiving shard's drain
//! points), so lookup races cannot occur in workloads that follow the §4
//! bootstrap convention. Migration rewrites happen only while the
//! coordinator holds `&mut` over every shard — between rounds, with the
//! in-flight channels flushed first — so no delivery loop can observe a
//! directory entry mid-update. The *environment* is the one shared-state
//! carve-out: when two shards touch one key in the same round — a write
//! racing a write, or a write racing a `Sys::env` read — the winner is
//! decided by lock order, i.e. by thread scheduling, and such workloads
//! are not reproducible. Publish during spawn (the coordinator phase) and
//! read later, as §4's bootstrap does, and every run is deterministic;
//! single-shard kernels take none of these paths.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use asbestos_labels::Handle;

use crate::message::{QueuedMessage, RemoteSend};
use crate::value::Value;

/// Shared cross-shard state: the port directory and the global
/// environment. See the module docs for the determinism contract.
pub(crate) struct Router {
    num_shards: u16,
    /// Port handle → owning shard. Only populated when `num_shards > 1`;
    /// a single-shard kernel resolves everything locally.
    ports: RwLock<HashMap<Handle, u16>>,
    /// The §4 global environment (init/launcher bootstrap namespace).
    env: RwLock<BTreeMap<String, Value>>,
    /// Port handle → remote *kernel* id (federation; see
    /// `crates/cluster`). Written only by the gateway between runs;
    /// empty on every non-federated kernel.
    remote_ports: RwLock<HashMap<Handle, u16>>,
    /// Fast-path guard for the remote directory: sends only take the
    /// `remote_ports` read lock once a gateway has registered something,
    /// so non-federated kernels pay one relaxed atomic load — and the
    /// pre-federation goldens are untouched.
    has_remote: AtomicBool,
    /// Outbound cross-kernel messages, parked until the gateway drains
    /// them ([`crate::Kernel::take_remote_egress`]).
    egress: Mutex<Vec<RemoteSend>>,
}

impl Router {
    pub fn new(num_shards: usize) -> Router {
        Router {
            num_shards: num_shards as u16,
            ports: RwLock::new(HashMap::new()),
            env: RwLock::new(BTreeMap::new()),
            remote_ports: RwLock::new(HashMap::new()),
            has_remote: AtomicBool::new(false),
            egress: Mutex::new(Vec::new()),
        }
    }

    /// Records that `port` is owned by `shard`. Single-shard kernels skip
    /// the directory entirely (everything is local).
    pub fn register_port(&self, port: Handle, shard: u16) {
        if self.num_shards > 1 {
            self.ports
                .write()
                .expect("port directory lock")
                .insert(port, shard);
        }
    }

    /// Forgets a port that lost its receive rights (dissociation, owner
    /// exit). Keeps the directory bounded by *live* ports; a racing or
    /// stale send falls back to the hash shard and drops `NoSuchPort`,
    /// the same outcome the owning shard's dissociated vnode produces.
    pub fn unregister_port(&self, port: Handle) {
        if self.num_shards > 1 {
            self.ports
                .write()
                .expect("port directory lock")
                .remove(&port);
        }
    }

    /// The shard a message to `port` must be evaluated on.
    ///
    /// Unknown handles (plain compartments, bogus values) fall back to a
    /// deterministic hash of the handle value; the chosen shard finds no
    /// vnode and records the `NoSuchPort` drop, exactly as a single-shard
    /// kernel would.
    pub fn shard_of(&self, port: Handle) -> u16 {
        if self.num_shards == 1 {
            return 0;
        }
        if let Some(&shard) = self.ports.read().expect("port directory lock").get(&port) {
            return shard;
        }
        (port.raw() % self.num_shards as u64) as u16
    }

    /// Records that `port` lives on another kernel (federation). The
    /// gateway only registers ports that are *not* local, so the local
    /// vnode check in `send_from` stays authoritative.
    pub fn register_remote_port(&self, port: Handle, kernel: u16) {
        self.remote_ports
            .write()
            .expect("remote directory lock")
            .insert(port, kernel);
        self.has_remote.store(true, Ordering::Release);
    }

    /// Forgets a remote port (the owning kernel unregistered it). Later
    /// sends fall through to the hash shard and drop `NoSuchPort`, the
    /// same outcome a dissociated local port produces.
    pub fn unregister_remote_port(&self, port: Handle) {
        self.remote_ports
            .write()
            .expect("remote directory lock")
            .remove(&port);
    }

    /// The kernel owning `port`, when it is a registered remote port.
    /// One relaxed atomic load on every non-federated kernel.
    pub fn remote_kernel_of(&self, port: Handle) -> Option<u16> {
        if !self.has_remote.load(Ordering::Acquire) {
            return None;
        }
        self.remote_ports
            .read()
            .expect("remote directory lock")
            .get(&port)
            .copied()
    }

    /// Parks one outbound cross-kernel message for the gateway.
    pub fn push_egress(&self, rs: RemoteSend) {
        self.egress.lock().expect("egress lock").push(rs);
    }

    /// Drains every parked outbound cross-kernel message, in send order.
    pub fn take_egress(&self) -> Vec<RemoteSend> {
        std::mem::take(&mut *self.egress.lock().expect("egress lock"))
    }

    /// Snapshot of the whole global environment, in key order (the
    /// gateway diffs this against its mirror to sync env across kernels).
    pub fn env_snapshot(&self) -> Vec<(String, Value)> {
        self.env
            .read()
            .expect("env lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Reads a global environment entry.
    pub fn env_get(&self, key: &str) -> Option<Value> {
        self.env.read().expect("env lock").get(key).cloned()
    }

    /// Writes a global environment entry.
    pub fn env_set(&self, key: &str, value: Value) {
        self.env
            .write()
            .expect("env lock")
            .insert(key.to_string(), value);
    }
}

// ---------------------------------------------------------------------
// Sub-round cross-shard channels.
// ---------------------------------------------------------------------

/// Where a shard stood in its schedule when it pulled inbound messages —
/// only the observability counters care (see [`crate::Stats`]).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum PullPoint {
    /// Pulled at a round boundary: the messages waited out a barrier.
    Barrier,
    /// Pulled mid-round, without any barrier in between (the sub-round
    /// routing fast path).
    Subround,
}

/// One shard's inbound cross-shard channel.
struct Inbox {
    /// Mirror of `queue.len()`, readable without the lock: the empty
    /// check on a receiving shard's hot path must cost one atomic load.
    len: AtomicUsize,
    queue: Mutex<Vec<QueuedMessage>>,
}

/// The coordinator-free cross-shard channels: one inbound queue per
/// shard, shared by every shard (and the coordinator) through one `Arc`.
///
/// A sending shard pushes a cross-shard message here the moment its send
/// resolves — mid-drain, without waiting for a barrier — and the
/// receiving shard drains its own queue at deterministic points of its
/// delivery loop. Per-sender-per-port FIFO survives: one sender's pushes
/// into one queue happen in send order (a `Mutex<Vec>` is
/// order-preserving), and the receiving shard enqueues a drained batch in
/// arrival order into its per-port FIFO mailboxes.
///
/// There is deliberately no kernel-wide pending counter: a shared atomic
/// bumped on every push is a cache line every sending shard contends on.
/// [`InboxSet::pending`] sums the per-inbox mirrors instead — an
/// O(shards) read on the coordinator's (cold, per-round) path, bought
/// with zero shared-counter traffic on the (hot, per-message) send path.
pub(crate) struct InboxSet {
    inboxes: Box<[Inbox]>,
}

impl InboxSet {
    pub fn new(num_shards: usize) -> InboxSet {
        InboxSet {
            inboxes: (0..num_shards)
                .map(|_| Inbox {
                    len: AtomicUsize::new(0),
                    queue: Mutex::new(Vec::new()),
                })
                .collect(),
        }
    }

    /// Cross-shard messages pushed but not yet pulled, kernel-wide.
    pub fn pending(&self) -> usize {
        self.inboxes
            .iter()
            .map(|inbox| inbox.len.load(Ordering::Acquire))
            .sum()
    }

    /// Pending inbound messages for one shard.
    pub fn len(&self, shard: usize) -> usize {
        self.inboxes[shard].len.load(Ordering::Acquire)
    }

    /// Pushes one message onto `dest`'s inbound queue. Returns `false`
    /// (and enqueues nothing) when the queue already holds `limit`
    /// messages — the §8 backstop bounding in-flight cross-shard memory,
    /// the role the per-round outbox bound used to play. The check is
    /// advisory under concurrent senders (a racing push may overshoot by
    /// a few messages); the destination's own queue bounds are enforced
    /// exactly, by [`crate::shard::KernelShard::enqueue_checked`], when
    /// the batch is drained.
    pub fn push(&self, dest: usize, qm: QueuedMessage, limit: usize) -> bool {
        let inbox = &self.inboxes[dest];
        if inbox.len.load(Ordering::Acquire) >= limit {
            return false;
        }
        let mut queue = inbox.queue.lock().expect("inbox lock");
        queue.push(qm);
        inbox.len.store(queue.len(), Ordering::Release);
        true
    }

    /// Swap-drains every message queued for `shard`, in arrival order,
    /// into `buf` (which must arrive empty). The whole batch moves with
    /// one lock acquisition and one atomic store, however many messages
    /// it holds; the no-mail fast path is one atomic load, no lock.
    ///
    /// Allocation reuse: the queue keeps `buf`'s old backing storage and
    /// the caller gets the queue's, so the two buffers ping-pong between
    /// sender and receiver. Once both have grown to the workload's
    /// high-water batch size, steady state allocates nothing — the
    /// property `inbox_take_reuses_allocations` pins.
    pub fn take_into(&self, shard: usize, buf: &mut Vec<QueuedMessage>) -> usize {
        debug_assert!(buf.is_empty(), "drain buffer must arrive empty");
        let inbox = &self.inboxes[shard];
        if inbox.len.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let mut queue = inbox.queue.lock().expect("inbox lock");
        std::mem::swap(&mut *queue, buf);
        inbox.len.store(0, Ordering::Release);
        buf.len()
    }

    /// Spare capacity currently parked in `shard`'s queue (the swap
    /// partner of the receiving shard's drain buffer; observability for
    /// the no-realloc pin).
    #[cfg(test)]
    pub fn queue_capacity(&self, shard: usize) -> usize {
        self.inboxes[shard]
            .queue
            .lock()
            .expect("inbox lock")
            .capacity()
    }

    /// Visits every queued message without draining (god-mode accounting:
    /// `queue_len`, `queued_from`, `KmemReport`).
    pub fn for_each_queued<F: FnMut(&QueuedMessage)>(&self, shard: usize, mut f: F) {
        for qm in self.inboxes[shard].queue.lock().expect("inbox lock").iter() {
            f(qm);
        }
    }

    /// Structural bookkeeping bytes (queue headers and spare capacity;
    /// the queued messages themselves are billed as queue bytes).
    pub fn bookkeeping_bytes(&self) -> usize {
        self.inboxes
            .iter()
            .map(|inbox| {
                std::mem::size_of::<Inbox>()
                    + inbox.queue.lock().expect("inbox lock").capacity()
                        * std::mem::size_of::<QueuedMessage>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_and_fallback() {
        let r = Router::new(4);
        let p = Handle::from_raw(0x123);
        // Unknown: deterministic hash fallback.
        assert_eq!(r.shard_of(p), (0x123 % 4) as u16);
        r.register_port(p, 3);
        assert_eq!(r.shard_of(p), 3);
    }

    #[test]
    fn single_shard_skips_directory() {
        let r = Router::new(1);
        let p = Handle::from_raw(0x999);
        r.register_port(p, 0);
        assert_eq!(r.shard_of(p), 0);
        assert!(r.ports.read().unwrap().is_empty());
    }

    #[test]
    fn unregister_forgets_ports() {
        let r = Router::new(4);
        let p = Handle::from_raw(0x40);
        r.register_port(p, 2);
        assert_eq!(r.shard_of(p), 2);
        r.unregister_port(p);
        // Back to the hash fallback, and the map holds nothing.
        assert_eq!(r.shard_of(p), 0);
        assert!(r.ports.read().unwrap().is_empty());
    }

    fn test_qm(tag: u64) -> QueuedMessage {
        use crate::value::Value;
        use asbestos_labels::Label;
        use std::sync::Arc;
        QueuedMessage {
            port: Handle::from_raw(9),
            body: Value::U64(tag),
            es: Arc::new(Label::bottom()),
            ds: Label::top(),
            dr: Label::bottom(),
            v: Label::top(),
            from: None,
        }
    }

    #[test]
    fn inbox_push_take_pending_and_limit() {
        let set = InboxSet::new(2);
        assert_eq!(set.pending(), 0);
        assert!(set.push(1, test_qm(1), 8));
        assert!(set.push(1, test_qm(2), 8));
        assert_eq!((set.pending(), set.len(1), set.len(0)), (2, 2, 0));
        assert!(!set.push(1, test_qm(3), 2), "inbox at its limit rejects");
        let mut batch = Vec::new();
        assert_eq!(set.take_into(1, &mut batch), 2);
        let tags: Vec<u64> = batch.iter().map(|m| m.body.as_u64().unwrap()).collect();
        assert_eq!(tags, vec![1, 2], "arrival order preserved");
        assert_eq!(set.pending(), 0);
        batch.clear();
        assert_eq!(set.take_into(1, &mut batch), 0, "fast path on empty inbox");
        assert!(set.bookkeeping_bytes() > 0);
    }

    #[test]
    fn inbox_take_reuses_allocations() {
        // Warm up: grow both swap partners to the batch high-water mark.
        let set = InboxSet::new(1);
        let mut buf = Vec::new();
        for _ in 0..3 {
            for tag in 0..16 {
                assert!(set.push(0, test_qm(tag), usize::MAX));
            }
            set.take_into(0, &mut buf);
            buf.clear();
        }
        // Steady state: the no-realloc pin. Capacities may only ping-pong
        // between the inbox queue and the drain buffer — a fresh
        // allocation on any drain is the regression this test exists to
        // catch.
        let mut caps = [buf.capacity(), set.queue_capacity(0)];
        caps.sort_unstable();
        for _ in 0..8 {
            for tag in 0..16 {
                assert!(set.push(0, test_qm(tag), usize::MAX));
            }
            assert_eq!(set.take_into(0, &mut buf), 16);
            buf.clear();
            let mut now = [buf.capacity(), set.queue_capacity(0)];
            now.sort_unstable();
            assert_eq!(
                now, caps,
                "steady-state drains must reuse the warmed buffers"
            );
            caps = now;
        }
    }

    #[test]
    fn env_roundtrip() {
        let r = Router::new(2);
        assert_eq!(r.env_get("x"), None);
        r.env_set("x", Value::U64(9));
        assert_eq!(r.env_get("x"), Some(Value::U64(9)));
    }
}
