//! System-call errors.
//!
//! Asbestos deliberately reports very little through `send` (§4): label
//! failures at delivery time are silent, because a failure/success signal
//! modulated by label changes would be a storage channel. The errors here
//! are only those a real kernel could report without leaking information —
//! they depend exclusively on the *caller's own* state and arguments.

use std::fmt;

/// An error returned by a system call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SysError {
    /// The calling process lacks receive rights for the port it tried to
    /// manipulate (`set_port_label`, `dissociate_port`).
    NotPortOwner,
    /// A label argument requires `⋆` privilege the caller does not hold
    /// (Figure 4 requirements 2 and 3 — these depend only on the caller's
    /// own send label, so reporting them leaks nothing).
    PrivilegeViolation,
    /// The operation is only valid inside an event process
    /// (`ep_clean`, `ep_exit`).
    NotEventProcess,
    /// The operation is not valid inside an event process (e.g. spawning).
    EventProcessForbidden,
    /// A malformed argument (unaligned memory range, zero-length region).
    InvalidArgument,
    /// The simulator's configured resource limit was exceeded
    /// (§8: "Asbestos does not yet deal gracefully with certain forms of
    /// resource exhaustion" — we at least make it explicit).
    ResourceExhausted,
    /// The caller exhausted its own send-credit window *and* its deferral
    /// quota for this port this activation; it should back off and retry
    /// on a later activation. Only raised with backpressure armed, and —
    /// crucially for the covert-channel argument — computed purely from
    /// the caller's own send history, never from destination queue
    /// occupancy (see [`crate::backpressure`]).
    WouldBlock,
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SysError::NotPortOwner => "caller lacks receive rights for port",
            SysError::PrivilegeViolation => "label argument requires ⋆ privilege",
            SysError::NotEventProcess => "operation requires event-process context",
            SysError::EventProcessForbidden => "operation forbidden in event-process context",
            SysError::InvalidArgument => "invalid argument",
            SysError::ResourceExhausted => "resource limit exceeded",
            SysError::WouldBlock => "send credits exhausted; back off and retry",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SysError {}

/// Result alias for system calls.
pub type SysResult<T> = Result<T, SysError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SysError::NotPortOwner
            .to_string()
            .contains("receive rights"));
        assert!(SysError::PrivilegeViolation
            .to_string()
            .contains("privilege"));
    }
}
