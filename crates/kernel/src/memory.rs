//! Simulated physical and virtual memory.
//!
//! Event processes need real copy-on-write semantics for Figure 6's memory
//! measurements, so the simulator models 4 KiB pages explicitly. A process
//! owns a base page table; each event process keeps only a delta map of the
//! pages it has modified, borrowing the base table for everything else —
//! the optimization §6.2 describes ("event processes do not keep their own
//! page tables ... changing it in exactly those places that differ").

use std::collections::BTreeMap;

use crate::error::{SysError, SysResult};

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifies a physical frame in the [`FramePool`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FrameId(u32);

/// A virtual page number (address divided by [`PAGE_SIZE`]).
pub type Vpn = u64;

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    refcount: u32,
}

/// The pool of simulated physical frames, shared by all address spaces.
#[derive(Default)]
pub struct FramePool {
    frames: Vec<Option<Frame>>,
    free: Vec<FrameId>,
    in_use: usize,
}

impl FramePool {
    /// Creates an empty pool.
    pub fn new() -> FramePool {
        FramePool::default()
    }

    /// Number of frames currently allocated.
    pub fn frames_in_use(&self) -> usize {
        self.in_use
    }

    /// Allocates a zeroed frame with refcount 1.
    pub fn alloc_zeroed(&mut self) -> FrameId {
        self.alloc(Box::new([0u8; PAGE_SIZE]))
    }

    /// Allocates a frame holding a copy of `data`, refcount 1.
    pub fn alloc_copy_of(&mut self, src: FrameId) -> FrameId {
        let data = self.frame(src).data.clone();
        self.alloc(data)
    }

    fn alloc(&mut self, data: Box<[u8; PAGE_SIZE]>) -> FrameId {
        self.in_use += 1;
        let frame = Frame { data, refcount: 1 };
        if let Some(id) = self.free.pop() {
            self.frames[id.0 as usize] = Some(frame);
            id
        } else {
            self.frames.push(Some(frame));
            FrameId((self.frames.len() - 1) as u32)
        }
    }

    /// Increments a frame's refcount (a new page-table reference).
    pub fn retain(&mut self, id: FrameId) {
        self.frame_mut(id).refcount += 1;
    }

    /// Drops one reference; frees the frame when the count reaches zero.
    pub fn release(&mut self, id: FrameId) {
        let f = self.frame_mut(id);
        f.refcount -= 1;
        if f.refcount == 0 {
            self.frames[id.0 as usize] = None;
            self.free.push(id);
            self.in_use -= 1;
        }
    }

    /// Current refcount (test observability).
    pub fn refcount(&self, id: FrameId) -> u32 {
        self.frame(id).refcount
    }

    /// Reads bytes from a frame.
    pub fn read(&self, id: FrameId, offset: usize, out: &mut [u8]) {
        out.copy_from_slice(&self.frame(id).data[offset..offset + out.len()]);
    }

    /// Writes bytes into a frame. Caller must hold the only reference.
    pub fn write(&mut self, id: FrameId, offset: usize, data: &[u8]) {
        debug_assert_eq!(
            self.frame(id).refcount,
            1,
            "writes require an exclusively owned frame (COW must copy first)"
        );
        self.frame_mut(id).data[offset..offset + data.len()].copy_from_slice(data);
    }

    fn frame(&self, id: FrameId) -> &Frame {
        self.frames[id.0 as usize]
            .as_ref()
            .expect("frame id refers to a live frame")
    }

    fn frame_mut(&mut self, id: FrameId) -> &mut Frame {
        self.frames[id.0 as usize]
            .as_mut()
            .expect("frame id refers to a live frame")
    }
}

/// A base process page table: virtual page number → frame.
#[derive(Default)]
pub struct PageTable {
    pages: BTreeMap<Vpn, FrameId>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Looks up the frame mapped at `vpn`.
    pub fn get(&self, vpn: Vpn) -> Option<FrameId> {
        self.pages.get(&vpn).copied()
    }

    /// Maps `vpn` to `frame`, returning any previous mapping.
    pub fn map(&mut self, vpn: Vpn, frame: FrameId) -> Option<FrameId> {
        self.pages.insert(vpn, frame)
    }

    /// Removes the mapping at `vpn`.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<FrameId> {
        self.pages.remove(&vpn)
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Iterates `(vpn, frame)` mappings.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, FrameId)> + '_ {
        self.pages.iter().map(|(&v, &f)| (v, f))
    }
}

/// The modified-pages delta kept by a dormant or running event process.
///
/// §6.2: "The memory state of each dormant event process includes just a
/// list of modified pages and the modified pages themselves."
#[derive(Default)]
pub struct PageDelta {
    pages: BTreeMap<Vpn, FrameId>,
}

impl PageDelta {
    /// Creates an empty delta.
    pub fn new() -> PageDelta {
        PageDelta::default()
    }

    /// The private frame for `vpn`, if this event process modified it.
    pub fn get(&self, vpn: Vpn) -> Option<FrameId> {
        self.pages.get(&vpn).copied()
    }

    /// Records a private frame for `vpn`.
    pub fn map(&mut self, vpn: Vpn, frame: FrameId) -> Option<FrameId> {
        self.pages.insert(vpn, frame)
    }

    /// Number of private pages (the quantity Figure 6 measures).
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Removes and returns all private frames whose page lies in
    /// `[start_vpn, end_vpn)`; used by `ep_clean`.
    pub fn drain_range(&mut self, start_vpn: Vpn, end_vpn: Vpn) -> Vec<FrameId> {
        let vpns: Vec<Vpn> = self
            .pages
            .range(start_vpn..end_vpn)
            .map(|(&v, _)| v)
            .collect();
        vpns.into_iter()
            .map(|v| self.pages.remove(&v).expect("vpn collected from the map"))
            .collect()
    }

    /// Removes and returns all private frames; used by `ep_exit`.
    pub fn drain_all(&mut self) -> Vec<FrameId> {
        let out: Vec<FrameId> = self.pages.values().copied().collect();
        self.pages.clear();
        out
    }
}

/// Splits a byte range into per-page segments: `(vpn, offset, len)`.
///
/// Returns an error for zero-length ranges or ranges that overflow.
pub fn page_segments(addr: u64, len: usize) -> SysResult<Vec<(Vpn, usize, usize)>> {
    if len == 0 {
        return Err(SysError::InvalidArgument);
    }
    let end = addr
        .checked_add(len as u64)
        .ok_or(SysError::InvalidArgument)?;
    let mut out = Vec::new();
    let mut cur = addr;
    while cur < end {
        let vpn = cur / PAGE_SIZE as u64;
        let offset = (cur % PAGE_SIZE as u64) as usize;
        let take = (PAGE_SIZE - offset).min((end - cur) as usize);
        out.push((vpn, offset, take));
        cur += take as u64;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_alloc_release() {
        let mut pool = FramePool::new();
        let a = pool.alloc_zeroed();
        let b = pool.alloc_zeroed();
        assert_eq!(pool.frames_in_use(), 2);
        pool.release(a);
        assert_eq!(pool.frames_in_use(), 1);
        // Freed slots are reused.
        let c = pool.alloc_zeroed();
        assert_eq!(c, a);
        assert_eq!(pool.frames_in_use(), 2);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.frames_in_use(), 0);
    }

    #[test]
    fn refcount_sharing() {
        let mut pool = FramePool::new();
        let f = pool.alloc_zeroed();
        pool.retain(f);
        assert_eq!(pool.refcount(f), 2);
        pool.release(f);
        assert_eq!(pool.frames_in_use(), 1);
        pool.release(f);
        assert_eq!(pool.frames_in_use(), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut pool = FramePool::new();
        let f = pool.alloc_zeroed();
        pool.write(f, 100, b"hello");
        let mut buf = [0u8; 5];
        pool.read(f, 100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn copy_of_is_independent() {
        let mut pool = FramePool::new();
        let f = pool.alloc_zeroed();
        pool.write(f, 0, b"abc");
        let g = pool.alloc_copy_of(f);
        pool.write(g, 0, b"xyz");
        let mut a = [0u8; 3];
        let mut b = [0u8; 3];
        pool.read(f, 0, &mut a);
        pool.read(g, 0, &mut b);
        assert_eq!(&a, b"abc");
        assert_eq!(&b, b"xyz");
    }

    #[test]
    fn page_segment_math() {
        // Within one page.
        assert_eq!(page_segments(10, 20).unwrap(), vec![(0, 10, 20)]);
        // Crossing a boundary.
        assert_eq!(
            page_segments(4090, 10).unwrap(),
            vec![(0, 4090, 6), (1, 0, 4)]
        );
        // Exactly page aligned, multiple pages.
        assert_eq!(
            page_segments(8192, 8192).unwrap(),
            vec![(2, 0, 4096), (3, 0, 4096)]
        );
        assert_eq!(page_segments(0, 0), Err(SysError::InvalidArgument));
        assert_eq!(page_segments(u64::MAX, 2), Err(SysError::InvalidArgument));
    }

    #[test]
    fn delta_drain_range() {
        let mut pool = FramePool::new();
        let mut d = PageDelta::new();
        for vpn in 0..10 {
            d.map(vpn, pool.alloc_zeroed());
        }
        let drained = d.drain_range(3, 6);
        assert_eq!(drained.len(), 3);
        assert_eq!(d.len(), 7);
        assert!(d.get(3).is_none());
        assert!(d.get(6).is_some());
    }
}
