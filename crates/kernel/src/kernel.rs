//! The kernel coordinator: shard construction, placement, god-mode
//! surface, and the pooled round scheduler.
//!
//! Since PR 2 the kernel is a set of [`KernelShard`]s — each a complete,
//! isolated delivery engine (see [`crate::shard`]) — plus the shared
//! [`Router`] maps and this coordinator. The coordinator owns placement
//! (which shard a spawned process lands on), drives the round schedule,
//! and merges per-shard statistics, clocks, and memory reports into the
//! whole-kernel views the paper figures read.
//!
//! **Round schedule.** Since PR 3 cross-shard messages travel through
//! per-shard inbound channels (see [`crate::router::InboxSet`]): a
//! cross-shard send is pushed into the destination's channel the moment
//! it resolves, mid-drain, and every shard pulls its own channel whenever
//! its mailboxes empty — *sub-round routing*, which spares cross-shard
//! chains one full round of latency per hop. `run()` repeats one phase
//! until quiescence: every shard with pending messages drains to local
//! idle ([`KernelShard::drain_round`]), re-pulling its inbound channel as
//! it goes. How the drains execute depends on the worker budget
//! ([`Kernel::set_worker_threads`]; default: the host's available
//! parallelism, capped at the shard count):
//!
//! * **Parallel** (workers > 1): drains run on a persistent pool of
//!   parked worker threads ([`crate::pool::ShardPool`]), created lazily
//!   on the first round with two or more busy shards and reused across
//!   rounds *and* across `run()` calls — no thread churn, one condvar
//!   handshake per round. Single-busy-shard rounds drain inline on the
//!   coordinator without waking the pool. Messages forwarded to a shard
//!   that already finished its round wait for the next round barrier.
//! * **Sequential** (workers = 1, e.g. a single-core host): the
//!   coordinator sweeps the shards in shard order, each draining to
//!   local idle, until the whole kernel is quiescent — no barriers at
//!   all, and the schedule is fully deterministic.
//!
//! **Determinism contract.** A kernel with `shards = 1` never routes,
//! never spawns a thread, and executes the identical code path the
//! pre-sharding engine did — `tests/shard_determinism.rs` pins that
//! configuration bit-for-bit, so all paper figures (fig6–fig9) are
//! unaffected. Multi-shard runs guarantee, at any worker count:
//! per-sender-per-port FIFO delivery, Figure 4 evaluation on the
//! destination shard against destination state, and
//! scheduling-independent delivery/drop multisets for independent
//! traffic chains (`kernel/tests/sharding.rs` pins this as a property).
//! The *interleaving* across unrelated senders is deterministic when
//! workers = 1; with parallel workers it depends on thread timing, as it
//! would on real parallel hardware. The shared global environment keeps
//! the same carve-out as before; see `router.rs`.

use std::sync::Arc;

use asbestos_labels::{Handle, Label};

use crate::cycles::{Category, CostModel, CycleClock, CycleSnapshot};
use crate::delivery::DeliveryOutcome;
use crate::event_process::EventProcess;
use crate::handle_table::HandleTable;
use crate::handle_table::PortOwner;
use crate::ids::{EpId, ProcessId, MAX_SHARDS};
use crate::memory::PAGE_SIZE;
use crate::message::QueuedMessage;
use crate::pool::ShardPool;
use crate::process::{Body, EpService, Process, Service};
use crate::router::{InboxSet, PullPoint, Router};
use crate::shard::KernelShard;
use crate::stats::Stats;
use crate::tuner::{Action, ShardSample, ShardSignals, Signals, TunePolicy, TunerState};
use crate::value::Value;

/// Default bound on queued messages per shard (the resource-exhaustion
/// backstop §8 mentions; drops past this limit are silent, like label
/// drops).
pub const DEFAULT_QUEUE_LIMIT: usize = 1 << 20;

/// Default worker budget: `ASBESTOS_WORKERS` when set, else the host's
/// available parallelism. A single-core host (or `ASBESTOS_WORKERS` of
/// 0 or 1 — both mean "no worker threads") gets the sequential sweep
/// scheduler, which is also the fully deterministic configuration.
fn default_worker_target() -> usize {
    crate::knobs::count(crate::knobs::WORKERS_ENV)
        .map(|n| n.max(1))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Folds a boot epoch into the handle-cipher seed (SplitMix64 finalizer).
/// Epoch 0 — the only epoch a non-durable deployment ever sees — leaves
/// the seed untouched, so every pre-reboot golden trace is unchanged.
fn mix_epoch(seed: u64, epoch: u64) -> u64 {
    if epoch == 0 {
        return seed;
    }
    let mut z = epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    seed ^ (z ^ (z >> 31))
}

/// A point-in-time memory accounting report (the Figure 6 measurement).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KmemReport {
    /// Process structures plus their labels.
    pub process_bytes: usize,
    /// Event-process structures plus their labels.
    pub ep_bytes: usize,
    /// Vnodes plus port labels.
    pub handle_bytes: usize,
    /// Queued, undelivered messages.
    pub queue_bytes: usize,
    /// The delivery-decision cache: keys plus retained effect labels.
    pub delivery_cache_bytes: usize,
    /// User memory: allocated 4 KiB frames (base tables and EP deltas).
    pub user_frame_bytes: usize,
    /// Scheduler bookkeeping: the worker pool's handles and shared state
    /// plus the cross-shard inbound channels' headers and spare capacity.
    /// Always zero on a single-shard kernel.
    pub pool_bytes: usize,
    /// Self-tuning bookkeeping: the control loop's per-shard counter
    /// samples. Zero until the tuner arms (and therefore always zero on
    /// single-shard or sequential kernels).
    pub tuner_bytes: usize,
}

impl KmemReport {
    /// Total allocated bytes, kernel plus user.
    pub fn total_bytes(&self) -> usize {
        self.process_bytes
            + self.ep_bytes
            + self.handle_bytes
            + self.queue_bytes
            + self.delivery_cache_bytes
            + self.user_frame_bytes
            + self.pool_bytes
            + self.tuner_bytes
    }

    /// Total memory in 4 KiB pages, rounded up (Figure 6's unit).
    pub fn total_pages(&self) -> usize {
        self.total_bytes().div_ceil(PAGE_SIZE)
    }

    /// Adds another report's counts into this one (shard merging).
    pub(crate) fn absorb(&mut self, other: &KmemReport) {
        self.process_bytes += other.process_bytes;
        self.ep_bytes += other.ep_bytes;
        self.handle_bytes += other.handle_bytes;
        self.queue_bytes += other.queue_bytes;
        self.delivery_cache_bytes += other.delivery_cache_bytes;
        self.user_frame_bytes += other.user_frame_bytes;
        self.pool_bytes += other.pool_bytes;
        self.tuner_bytes += other.tuner_bytes;
    }
}

/// The Asbestos kernel simulator.
///
/// A `Kernel` owns every process, event process, port, queued message, and
/// simulated page, partitioned across one or more [`KernelShard`]s, plus
/// the virtual cycle clocks. It is deterministic: the same spawn order,
/// injections, seed, and shard count produce the same schedule, cycle
/// counts, and memory report.
///
/// Drive it by [`Kernel::spawn`]ing services, [`Kernel::inject`]ing
/// external events, and calling [`Kernel::run`].
pub struct Kernel {
    shards: Vec<KernelShard>,
    router: Router,
    /// The cross-shard inbound channels (shared with every shard).
    xshard: Arc<InboxSet>,
    /// The persistent worker pool; `None` until the first round that
    /// wants parallel workers, then reused until the kernel drops.
    pool: Option<ShardPool>,
    /// Worker-thread budget for multi-shard rounds (capped at the shard
    /// count when a round is scheduled).
    worker_target: usize,
    /// Scheduler rounds executed (merged into [`Stats::rounds`]).
    rounds: u64,
    /// Wakeups accumulated by pools retired via
    /// [`Kernel::set_worker_threads`], keeping the merged counter
    /// monotone across pool rebuilds.
    retired_wakeups: u64,
    /// Round-robin cursor for default spawn placement.
    next_spawn_shard: usize,
    /// Round-robin cursor for the sequential `step()` debug scheduler.
    step_cursor: usize,
    /// The boot epoch this kernel was assembled under (§5.1: handle
    /// values are unique *since boot*; the epoch keys the handle cipher
    /// so a rebooted deployment can never re-mint a dead boot's
    /// handles). 0 for ordinary, non-durable kernels.
    boot_epoch: u64,
    /// The self-tuning control loop (policy + windowing bookkeeping);
    /// inert unless this kernel schedules nondeterministically (see
    /// [`Kernel::tuning_active`]).
    tuner: TunerState,
}

impl Kernel {
    /// Creates a single-shard kernel with the default cost model; `seed`
    /// keys the handle cipher. This is the paper-figure configuration.
    pub fn new(seed: u64) -> Kernel {
        Kernel::with_cost_model_sharded(seed, CostModel::default(), 1)
    }

    /// Creates a single-shard kernel with an explicit cost model.
    pub fn with_cost_model(seed: u64, cost: CostModel) -> Kernel {
        Kernel::with_cost_model_sharded(seed, cost, 1)
    }

    /// Creates a kernel with `shards` parallel delivery engines.
    pub fn new_sharded(seed: u64, shards: usize) -> Kernel {
        Kernel::with_cost_model_sharded(seed, CostModel::default(), shards)
    }

    /// Creates a sharded kernel with an explicit cost model.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= shards <= MAX_SHARDS`.
    pub fn with_cost_model_sharded(seed: u64, cost: CostModel, shards: usize) -> Kernel {
        Kernel::with_boot_epoch(seed, cost, shards, 0)
    }

    /// Creates a kernel for boot epoch `epoch` of a durable deployment
    /// (see [`Kernel::boot_epoch`]). The epoch is folded into the handle
    /// cipher's key, so handles minted this boot are disjoint from every
    /// other boot's — §5.1's "unique since boot" across actual reboots.
    /// Epoch 0 is bit-for-bit the ordinary constructor.
    pub fn with_boot_epoch(seed: u64, cost: CostModel, shards: usize, epoch: u64) -> Kernel {
        Kernel::with_cluster_slot(seed, cost, shards, epoch, 0, 1)
    }

    /// Creates the kernel for cluster slot `slot` of a `slots`-kernel
    /// federation (see `crates/cluster`). Shard `i` of slot `k` mints
    /// handles from cipher lane `k*shards + i` of `slots*shards`, so
    /// handle values are unique across the *whole* federation — the
    /// property that lets a serialized handle cross the wire and stay
    /// meaningful (§5.1's uniqueness, cluster-wide). Slot 0 of 1 is
    /// bit-for-bit the ordinary constructor.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= shards <= MAX_SHARDS` and `slot < slots`.
    pub fn with_cluster_slot(
        seed: u64,
        cost: CostModel,
        shards: usize,
        epoch: u64,
        slot: usize,
        slots: usize,
    ) -> Kernel {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        assert!(slot < slots, "cluster slot must be in 0..{slots}");
        let handle_seed = mix_epoch(seed, epoch);
        let xshard = Arc::new(InboxSet::new(shards));
        Kernel {
            shards: (0..shards)
                .map(|i| {
                    KernelShard::new(
                        handle_seed,
                        i as u16,
                        (slot * shards + i) as u64,
                        (slots * shards) as u64,
                        cost.clone(),
                        Arc::clone(&xshard),
                    )
                })
                .collect(),
            router: Router::new(shards),
            xshard,
            pool: None,
            worker_target: default_worker_target(),
            rounds: 0,
            retired_wakeups: 0,
            next_spawn_shard: 0,
            step_cursor: 0,
            boot_epoch: epoch,
            tuner: TunerState::new(),
        }
    }

    /// Number of kernel shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The boot epoch this kernel runs as (0 unless built by a durable
    /// deployment's reboot path).
    pub fn boot_epoch(&self) -> u64 {
        self.boot_epoch
    }

    /// Sets the worker-thread budget for multi-shard rounds (capped at
    /// the shard count when a round runs). `1` forces the sequential
    /// sweep scheduler — fully deterministic interleaving, no threads.
    /// The default is the host's available parallelism, overridable with
    /// the `ASBESTOS_WORKERS` environment variable. Changing the budget
    /// retires an existing pool (joining its workers); the next parallel
    /// round builds a fresh one.
    pub fn set_worker_threads(&mut self, workers: usize) {
        assert!(workers >= 1, "worker budget must be at least 1");
        self.worker_target = workers;
        if self
            .pool
            .as_ref()
            .is_some_and(|pool| pool.workers() != self.effective_workers())
        {
            if let Some(pool) = self.pool.take() {
                self.retired_wakeups += pool.wakeups();
            }
        }
    }

    /// The worker-thread budget currently in effect.
    pub fn worker_threads(&self) -> usize {
        self.worker_target
    }

    /// Times a parked pool worker has woken for a round (0 until a
    /// parallel round has run). Back-to-back `run()` calls keep growing
    /// this without spawning a thread — the pool-reuse observable, also
    /// merged into [`Stats::worker_wakeups`]. Monotone even across a
    /// [`Kernel::set_worker_threads`] pool rebuild.
    pub fn pool_wakeups(&self) -> u64 {
        self.retired_wakeups + self.pool.as_ref().map_or(0, ShardPool::wakeups)
    }

    /// Worker count a parallel round would use right now.
    fn effective_workers(&self) -> usize {
        self.worker_target.min(self.shards.len())
    }

    /// Read-only access to one shard (god-mode observability).
    pub fn shard(&self, shard: usize) -> &KernelShard {
        &self.shards[shard]
    }

    /// The shard currently hosting `port`, per the router directory.
    /// Steals move ports between shards; tests use this to pin where a
    /// migration landed.
    pub fn port_shard(&self, port: Handle) -> usize {
        self.router.shard_of(port) as usize
    }

    // ------------------------------------------------------------------
    // Spawning.
    // ------------------------------------------------------------------

    /// Spawns an ordinary service process with default labels and empty
    /// environment, then runs its `on_start` hook. Placement is
    /// round-robin across shards; use [`Kernel::spawn_on`] to pin.
    pub fn spawn(
        &mut self,
        name: &str,
        category: Category,
        service: Box<dyn Service>,
    ) -> ProcessId {
        let shard = self.pick_shard();
        self.spawn_on(shard, name, category, service)
    }

    /// Spawns an ordinary service process on a specific shard.
    pub fn spawn_on(
        &mut self,
        shard: usize,
        name: &str,
        category: Category,
        service: Box<dyn Service>,
    ) -> ProcessId {
        self.shards[shard].spawn_body(&self.router, name, category, Body::Plain(service), None)
    }

    /// Spawns an event-process service (§6): after `on_base_start` returns,
    /// every message to a base-owned port forks a fresh event process.
    /// Placement is round-robin; use [`Kernel::spawn_ep_service_on`] to pin.
    pub fn spawn_ep_service(
        &mut self,
        name: &str,
        category: Category,
        service: Box<dyn EpService>,
    ) -> ProcessId {
        let shard = self.pick_shard();
        self.spawn_ep_service_on(shard, name, category, service)
    }

    /// Spawns an event-process service on a specific shard.
    pub fn spawn_ep_service_on(
        &mut self,
        shard: usize,
        name: &str,
        category: Category,
        service: Box<dyn EpService>,
    ) -> ProcessId {
        self.shards[shard].spawn_body(&self.router, name, category, Body::Event(service), None)
    }

    fn pick_shard(&mut self) -> usize {
        let shard = self.next_spawn_shard;
        self.next_spawn_shard = (shard + 1) % self.shards.len();
        shard
    }

    // ------------------------------------------------------------------
    // External world (god-mode).
    // ------------------------------------------------------------------

    /// Injects a message from outside the label system (device interrupts,
    /// test drivers). Injected messages carry `E_S = {⋆}` and therefore pass
    /// every label check — they model hardware, not processes — and, like
    /// hardware, they bypass the queue bounds.
    pub fn inject(&mut self, port: Handle, body: Value) {
        let dest = self.router.shard_of(port) as usize;
        let shard = &mut self.shards[dest];
        shard.stats.injected += 1;
        shard.mailboxes.push(QueuedMessage {
            port,
            body,
            es: Arc::new(Label::bottom()),
            ds: Label::top(),
            dr: Label::bottom(),
            v: Label::top(),
            from: None,
        });
        shard.note_queue_depth();
    }

    // ------------------------------------------------------------------
    // Federation (the gateway's surface; see `crates/cluster`).
    // ------------------------------------------------------------------

    /// Records that `port` lives on remote kernel `kernel`. Sends that
    /// resolve neither locally nor in the shard directory and match this
    /// map park in the egress queue instead of hash-routing — the
    /// gateway drains them with [`Kernel::take_remote_egress`]. Ignored
    /// (with a debug assertion) for ports this kernel owns: the local
    /// vnode table is always authoritative.
    pub fn register_remote_port(&mut self, port: Handle, kernel: u16) {
        debug_assert!(
            !self.is_local_port(port),
            "a local port cannot be remote-registered"
        );
        if self.is_local_port(port) {
            return;
        }
        self.router.register_remote_port(port, kernel);
    }

    /// Forgets a remote port binding.
    pub fn unregister_remote_port(&mut self, port: Handle) {
        self.router.unregister_remote_port(port);
    }

    /// Drains every message parked for another kernel, in send order.
    /// The sender-side Figure 4 checks already ran; the destination
    /// kernel applies the delivery-time check when these are injected
    /// there ([`Kernel::inject_remote`]).
    pub fn take_remote_egress(&mut self) -> Vec<crate::message::RemoteSend> {
        self.router.take_egress()
    }

    /// Ingests one message forwarded from another kernel: it joins the
    /// destination shard's queues under exactly the rules a local
    /// cross-shard arrival faces — destination-side queue bounds (or
    /// backpressure parking when armed), `Stats::sent` accounting, and
    /// the delivery-time Figure 4 check against this kernel's state when
    /// it is popped. An unknown port hash-routes and drops `NoSuchPort`,
    /// as everywhere else.
    pub fn inject_remote(&mut self, rs: crate::message::RemoteSend) {
        let dest = if self.is_local_port(rs.port) {
            // The directory only tracks multi-shard kernels; resolve by
            // scanning the vnode tables so single-shard federations work
            // identically.
            self.shards
                .iter()
                .position(|s| s.handles.get(rs.port).is_some())
                .expect("is_local_port found a shard") as u16
        } else {
            self.router.shard_of(rs.port)
        };
        self.shards[dest as usize].enqueue_inbound(QueuedMessage {
            port: rs.port,
            body: rs.body,
            es: rs.es,
            ds: rs.ds,
            dr: rs.dr,
            v: rs.v,
            from: None,
        });
    }

    /// Whether any shard of this kernel owns a vnode for `port`.
    pub fn is_local_port(&self, port: Handle) -> bool {
        self.shards.iter().any(|s| s.handles.get(port).is_some())
    }

    /// Snapshot of the whole global environment, in key order (the
    /// gateway diffs this against its mirror to replicate §4 bootstrap
    /// state across kernels).
    pub fn global_env_snapshot(&self) -> Vec<(String, Value)> {
        self.router.env_snapshot()
    }

    /// Sets a global environment entry (the §4 bootstrapping namespace,
    /// written by init/launcher-level code).
    pub fn set_global_env(&mut self, key: &str, value: Value) {
        self.router.env_set(key, value);
    }

    /// Reads a global environment entry.
    pub fn global_env(&self, key: &str) -> Option<Value> {
        self.router.env_get(key)
    }

    /// Reads a global environment entry that names a port or handle —
    /// the common shape for service discovery (netd lanes, OKWS ports).
    pub fn global_env_handle(&self, key: &str) -> Option<Handle> {
        self.router.env_get(key).and_then(|v| v.as_handle())
    }

    /// Sets the per-shard message-queue bound. Sends past the bound drop
    /// silently, the same way label failures do (§4, §8). On a
    /// single-shard kernel this is the whole-kernel bound it always was.
    pub fn set_queue_limit(&mut self, limit: usize) {
        for shard in &mut self.shards {
            shard.queue_limit = limit;
        }
    }

    /// Sets the per-port message-queue bound. A port whose mailbox holds
    /// this many pending messages silently drops further sends
    /// ([`crate::DropReason::PortQueueFull`]), so one hot port cannot
    /// consume a shard's whole queue budget and starve its neighbors.
    pub fn set_port_queue_limit(&mut self, limit: usize) {
        for shard in &mut self.shards {
            shard.port_queue_limit = limit;
        }
    }

    /// Arms (or disarms) overload control: credit-based send windows,
    /// the retry queue, and `WouldBlock` refusals (see
    /// [`crate::backpressure`]). Off by default — the disarmed kernel is
    /// bit-identical to the pre-overload-control one, which is what the
    /// determinism goldens pin.
    pub fn set_backpressure(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.bp.enabled = on;
        }
    }

    /// Whether overload control is armed.
    pub fn backpressure_enabled(&self) -> bool {
        self.shards[0].bp.enabled
    }

    /// Sets every shard's shed threshold: the mailbox depth at which
    /// [`crate::Sys::overloaded`] starts reporting true to
    /// deployment-side shedders. `usize::MAX` (the default) means never.
    /// Under the adaptive runtime the tuner's shed loop moves this per
    /// shard ([`crate::Action::SetShedThreshold`]).
    pub fn set_shed_threshold(&mut self, threshold: usize) {
        for shard in &mut self.shards {
            shard.shed_threshold = threshold;
        }
    }

    /// Sets the delivery-decision cache bound, in cached decisions per
    /// shard. Capacity 0 disables caching entirely (every delivery
    /// evaluates Figure 4 from scratch — the ablation baseline). New
    /// kernels default to `ASBESTOS_CACHE_CAP` when that is set, else
    /// [`crate::DEFAULT_DELIVERY_CACHE_CAP`].
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        for shard in &mut self.shards {
            shard.delivery_cache.set_capacity(capacity);
        }
    }

    /// Alias of [`Kernel::set_cache_capacity`] (the original name).
    pub fn set_delivery_cache_capacity(&mut self, capacity: usize) {
        self.set_cache_capacity(capacity);
    }

    /// Number of currently cached delivery decisions, over all shards.
    pub fn delivery_cache_len(&self) -> usize {
        self.shards.iter().map(|s| s.delivery_cache.len()).sum()
    }

    /// Assigns process labels out of band (god-mode).
    ///
    /// §5.2 introduces its examples with labels "assigned out of band";
    /// tests and fixtures use this for the same purpose. Simulated services
    /// can never do this — they go through the Figure 4 rules.
    pub fn set_process_labels(&mut self, pid: ProcessId, send: Option<Label>, recv: Option<Label>) {
        let p = &mut self.shards[pid.shard()].processes[pid.index()];
        if let Some(s) = send {
            p.send_label = Arc::new(s);
        }
        if let Some(r) = recv {
            p.recv_label = Arc::new(r);
        }
    }

    /// Clean shutdown: runs every live plain service's
    /// [`Service::on_teardown`] hook, shard by shard. Call after
    /// [`Kernel::run`] has drained the system and before dropping the
    /// kernel; durable services (ok-dbproxy) flush their write-ahead
    /// logs here. A crash is modeled by *not* calling this — the next
    /// boot then recovers the committed prefix only.
    pub fn teardown(&mut self) {
        let Kernel { shards, router, .. } = self;
        for shard in shards {
            shard.teardown(router);
        }
    }

    /// Forcibly terminates a process (god-mode; used for failure injection).
    pub fn kill_process(&mut self, pid: ProcessId) {
        let shard = &mut self.shards[pid.shard()];
        if shard.processes[pid.index()].alive {
            shard.processes[pid.index()].alive = false;
            shard.processes[pid.index()].body = None;
            shard.cleanup_process(&self.router, pid);
        }
    }

    // ------------------------------------------------------------------
    // The self-tuning control loop (signals → policy → actuator; see
    // `tuner.rs` for the policy layer).
    // ------------------------------------------------------------------

    /// Whether the control loop runs between rounds right now. Always
    /// requires more than one shard. By default (`ASBESTOS_TUNE` not
    /// off, no programmatic override) it additionally requires parallel
    /// pool workers (`effective_workers > 1`): sequential and
    /// single-shard kernels are the deterministic configurations the
    /// golden-trace suites pin, so ambient tuning never touches them.
    /// An explicit [`Kernel::set_tuning_enabled`]`(true)` arms the loop
    /// even under the sequential sweep — the caller is deliberately
    /// trading scheduling determinism for tuning (benches do this so
    /// per-shard `busy_nanos` stays a clean, non-overlapping measure
    /// while the tuner runs).
    pub fn tuning_active(&self) -> bool {
        self.shards.len() > 1
            && match self.tuner.override_enabled {
                Some(on) => on,
                None => self.effective_workers() > 1 && self.tuner.env_enabled,
            }
    }

    /// Forces the control loop on or off, overriding both `ASBESTOS_TUNE`
    /// and the parallel-workers gate (the multi-shard gate still
    /// applies). Benches pin tuning per run with this.
    pub fn set_tuning_enabled(&mut self, on: bool) {
        self.tuner.override_enabled = Some(on);
    }

    /// Installs a tuning policy (thresholds are data, not code — see
    /// [`TunePolicy`]). The default is [`crate::DefaultPolicy`].
    pub fn set_tune_policy(&mut self, policy: Box<dyn TunePolicy>) {
        self.tuner.policy = policy;
    }

    /// Tuning actions actually applied so far (cache resizes + steals).
    /// The determinism guard pins this at 0 for sequential runs.
    pub fn tuner_actions(&self) -> u64 {
        self.tuner.actions_applied
    }

    /// One control-loop iteration: snapshot an observation window, let
    /// the policy observe and adjust, apply the actions. Runs between
    /// drain rounds, when the coordinator holds `&mut` over every shard
    /// — no locking, and no handler can be mid-delivery.
    fn tune(&mut self) {
        if !self.tuning_active() {
            return;
        }
        let n = self.shards.len();
        if self.tuner.last.len() != n {
            // First window: arm the load tracking and baseline the
            // counters; deltas start accumulating from here.
            self.tuner.last = (0..n).map(|i| Self::sample(&self.shards[i])).collect();
            for shard in &mut self.shards {
                shard.mailboxes.set_track_load(true);
                shard.mailboxes.take_port_arrivals();
            }
            return;
        }
        let mut signals = Signals {
            shards: Vec::with_capacity(n),
        };
        for i in 0..n {
            let arrivals = self.shards[i].mailboxes.take_port_arrivals();
            let shard = &self.shards[i];
            let cur = Self::sample(shard);
            let prev = self.tuner.last[i];
            self.tuner.last[i] = cur;
            // Hottest steal-eligible destination ports first; ties break
            // on the handle value so the ordering is stable.
            let mut hot_ports: Vec<(Handle, u64)> = arrivals
                .into_iter()
                .filter(|&(port, _)| Self::steal_eligible(shard, port).is_some())
                .collect();
            hot_ports.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            hot_ports.truncate(4);
            signals.shards.push(ShardSignals {
                busy_nanos: cur.busy_nanos - prev.busy_nanos,
                delivered: cur.delivered - prev.delivered,
                cache_hits: cur.cache_hits - prev.cache_hits,
                cache_misses: cur.cache_misses - prev.cache_misses,
                cache_evictions: cur.cache_evictions - prev.cache_evictions,
                cache_len: shard.delivery_cache.len(),
                cache_capacity: shard.delivery_cache.capacity(),
                queue_depth_hwm: shard.stats.queue_depth_hwm,
                port_queue_drops: cur.port_queue_drops - prev.port_queue_drops,
                hot_ports,
                shed_threshold: shard.shed_threshold,
            });
        }
        self.tuner.policy.observe(&signals);
        let actions = self.tuner.policy.adjust(&signals);
        for action in actions {
            match action {
                Action::SetCacheCapacity { shard, capacity } => {
                    if shard < n && self.shards[shard].delivery_cache.capacity() != capacity {
                        self.shards[shard].delivery_cache.set_capacity(capacity);
                        self.shards[shard].stats.cache_resizes += 1;
                        self.tuner.actions_applied += 1;
                    }
                }
                Action::StealPort { port, to_shard } => {
                    if self.migrate_port_owner(port, to_shard).is_some() {
                        self.tuner.actions_applied += 1;
                    }
                }
                Action::SetShedThreshold { shard, threshold } => {
                    if shard < n && self.shards[shard].shed_threshold != threshold {
                        self.shards[shard].shed_threshold = threshold;
                        self.tuner.actions_applied += 1;
                    }
                }
            }
        }
    }

    fn sample(shard: &KernelShard) -> ShardSample {
        let (cache_hits, cache_misses, cache_evictions) = shard.delivery_cache.counters();
        ShardSample {
            busy_nanos: shard.busy_nanos,
            delivered: shard.stats.delivered,
            cache_hits,
            cache_misses,
            cache_evictions,
            port_queue_drops: shard.stats.dropped_port_queue_full,
        }
    }

    /// Whether `port`'s owner can migrate off `shard` right now: a live
    /// plain-bodied process with no live event processes (an EP's delta
    /// chain is pinned to its base's shard) and not mid-handler — always
    /// true between rounds.
    fn steal_eligible(shard: &KernelShard, port: Handle) -> Option<ProcessId> {
        match shard.handles.port(port)?.owner {
            Some(PortOwner::Process(pid)) => {
                let p = &shard.processes[pid.index()];
                (p.alive && p.eps.is_empty() && p.body.is_some()).then_some(pid)
            }
            _ => None,
        }
    }

    /// The work-steal actuator: migrates `port`'s owning process — its
    /// labels, memory, every port it owns, and each port's *whole*
    /// pending queue — onto `to_shard`, re-registering its ports in the
    /// Router directory. Returns the process's new id, or `None` when
    /// the port has no currently-eligible owner. Also a public god-mode
    /// surface so tests can drive explicit steal schedules and pin the
    /// FIFO/multiset invariants deterministically.
    ///
    /// Must only be called between rounds (or outside `run()`), which is
    /// the only time the coordinator can hold `&mut self` anyway.
    pub fn migrate_port_owner(&mut self, port: Handle, to_shard: usize) -> Option<ProcessId> {
        let n = self.shards.len();
        if n <= 1 || to_shard >= n {
            return None;
        }
        let src = self.router.shard_of(port) as usize;
        if src == to_shard {
            return None;
        }
        let pid = Self::steal_eligible(&self.shards[src], port)?;
        // Flush the in-flight cross-shard channels first so every
        // message already routed to the moving ports sits in the
        // source's mailboxes and migrates inside its whole-queue move —
        // nothing in flight can dangle toward a shard that no longer
        // owns the port.
        self.route_parked(PullPoint::Barrier);
        let export = self.shards[src].export_process(pid);
        Some(self.shards[to_shard].adopt_process(&self.router, export))
    }

    // ------------------------------------------------------------------
    // Scheduling.
    // ------------------------------------------------------------------

    /// Attempts one message delivery. Returns `false` when no message is
    /// pending (the system is idle).
    ///
    /// This is the sequential debug scheduler: on a multi-shard kernel it
    /// round-robins one delivery at a time across shards and routes after
    /// every step. [`Kernel::run`] is the parallel round scheduler. On a
    /// single-shard kernel the two are identical.
    pub fn step(&mut self) -> bool {
        self.step_outcome() != DeliveryOutcome::Idle
    }

    /// Attempts one message delivery and reports what happened.
    pub fn step_outcome(&mut self) -> DeliveryOutcome {
        let n = self.shards.len();
        if n == 1 {
            // The monolithic engine's step, with no routing checks at
            // all: a single-shard kernel never touches the channels.
            let outcome = self.shards[0].step_outcome(&self.router);
            if outcome == DeliveryOutcome::Idle && self.shards[0].flush_retries(&self.router) > 0 {
                // Idle mailboxes can hide parked retries (backpressure);
                // re-admitting them found more work.
                return self.shards[0].step_outcome(&self.router);
            }
            return outcome;
        }
        loop {
            // Route first: cross-shard sends (including coordinator-phase
            // ones, e.g. from a handler inside `spawn`'s on_start) sit in
            // the destination's inbound channel until it drains them.
            self.route_parked(PullPoint::Barrier);
            for i in 0..n {
                let idx = (self.step_cursor + i) % n;
                if self.shards[idx].mailboxes.len() > 0 {
                    let outcome = self.shards[idx].step_outcome(&self.router);
                    self.step_cursor = (idx + 1) % n;
                    return outcome;
                }
            }
            // Every mailbox is empty; only an empty in-flight set too
            // means the kernel is truly idle. (A pull above can come up
            // empty of *deliverable* messages when queue bounds drop the
            // whole batch, so re-check rather than assume.) Parked
            // retries count as work: drained mailboxes mean there is
            // capacity to re-admit into.
            if self.xshard.pending() == 0 {
                let Kernel { shards, router, .. } = self;
                let flushed: usize = shards.iter_mut().map(|s| s.flush_retries(router)).sum();
                if flushed == 0 {
                    return DeliveryOutcome::Idle;
                }
            }
        }
    }

    /// Runs until every shard's queue drains, with a safety bound; returns
    /// the number of delivery attempts.
    ///
    /// # Panics
    ///
    /// Panics after `limit` steps — two services ping-ponging messages
    /// forever is a bug in simulated code, not a state to spin in. (On a
    /// multi-shard kernel the bound is enforced per shard per round, so a
    /// run can perform slightly more than `limit` total deliveries before
    /// a single runaway shard trips it.)
    pub fn run_limited(&mut self, limit: u64) -> u64 {
        if self.shards.len() == 1 {
            // The monolithic engine's loop, bit for bit (the host-time
            // accumulation is invisible to the simulation; with
            // backpressure disarmed the flush below is a constant-time
            // no-op).
            let start = std::time::Instant::now();
            let mut steps = 0;
            loop {
                while self.shards[0].step_outcome(&self.router) != DeliveryOutcome::Idle {
                    steps += 1;
                    assert!(
                        steps < limit,
                        "kernel did not go idle after {limit} deliveries: livelock in simulated services?"
                    );
                }
                // Idle mailboxes can hide parked retries; a drained
                // system always has capacity for them, so flushing here
                // terminates.
                if self.shards[0].flush_retries(&self.router) == 0 {
                    break;
                }
            }
            self.shards[0].busy_nanos += start.elapsed().as_nanos() as u64;
            return steps;
        }
        let workers = self.effective_workers();
        // Route anything parked across the `run()` boundary
        // (coordinator-phase sends, e.g. from a handler inside `spawn`'s
        // on_start): those messages genuinely waited out a barrier.
        self.route_parked(PullPoint::Barrier);
        let mut steps = 0u64;
        loop {
            let budget = limit.saturating_sub(steps);
            let (round_steps, hit_budget) = if workers <= 1 {
                // Sequential sweep: shards drain to local idle in shard
                // order, pulling their inbound channels as they go; a
                // sweep is one "round". No barriers, no threads, fully
                // deterministic. (Messages a shard forwards *backwards*
                // in sweep order are picked up on the next sweep.)
                let mut round_steps = 0;
                let mut hit = false;
                for shard in &mut self.shards {
                    if shard.mailboxes.len() > 0
                        || self.xshard.len(shard.shard_id()) > 0
                        || shard.retry_len() > 0
                    {
                        let (n, h) = shard.drain_round(&self.router, budget, PullPoint::Subround);
                        round_steps += n;
                        hit |= h;
                    }
                }
                (round_steps, hit)
            } else {
                // Parallel round on the persistent pool: route what's
                // parked, then hand every busy shard to a worker.
                self.route_parked(PullPoint::Barrier);
                let active: Vec<usize> = (0..self.shards.len())
                    .filter(|&i| {
                        self.shards[i].mailboxes.len() > 0 || self.shards[i].retry_len() > 0
                    })
                    .collect();
                if active.is_empty() {
                    (0, false)
                } else if active.len() == 1 {
                    // One busy shard: drain inline rather than waking the
                    // whole pool for it (a pure cross-shard chain never
                    // even builds the pool this way).
                    self.shards[active[0]].drain_round(&self.router, budget, PullPoint::Subround)
                } else {
                    let pool = self.pool.get_or_insert_with(|| ShardPool::new(workers));
                    pool.run_round(&mut self.shards, &self.router, &active, budget)
                }
            };
            steps += round_steps;
            assert!(
                !hit_budget,
                "kernel did not go idle after {limit} deliveries: livelock in simulated services?"
            );
            if round_steps > 0 {
                self.rounds += 1;
                // Between rounds the coordinator owns everything: one
                // observation window per round, applied before the next
                // round is scheduled.
                self.tune();
            }
            let quiescent = self.xshard.pending() == 0
                && self
                    .shards
                    .iter()
                    .all(|s| s.mailboxes.len() == 0 && s.retry_len() == 0);
            if quiescent {
                return steps;
            }
        }
    }

    /// Runs until idle with a generous default bound.
    pub fn run(&mut self) -> u64 {
        self.run_limited(100_000_000)
    }

    /// Pulls every shard's inbound channel into its mailboxes (with
    /// destination-side queue bounds). The nothing-in-flight case —
    /// every step of a cross-shard-free workload — costs O(shards)
    /// relaxed atomic loads and no locks; keeping the check per-inbox
    /// (rather than one global counter) is what keeps the *send* path
    /// free of a shared contended atomic.
    fn route_parked(&mut self, point: PullPoint) {
        if self.xshard.pending() > 0 {
            for shard in &mut self.shards {
                shard.pull_inbound(point);
            }
        }
    }

    // ------------------------------------------------------------------
    // God-mode observability (whole-kernel views over the shards).
    // ------------------------------------------------------------------

    /// Kernel statistics, merged across shards, plus the coordinator's
    /// own counters (rounds executed, pool worker wakeups).
    pub fn stats(&self) -> Stats {
        let mut total = Stats::default();
        for shard in &self.shards {
            total.absorb(&shard.stats);
        }
        total.rounds += self.rounds;
        total.worker_wakeups += self.pool_wakeups();
        total
    }

    /// The virtual clock, merged across shards (per-category totals sum;
    /// `now` is total cycles consumed everywhere).
    pub fn clock(&self) -> CycleClock {
        let mut total = CycleClock::new();
        for shard in &self.shards {
            total.absorb(&shard.clock);
        }
        total
    }

    /// Snapshot of the merged clock for interval measurements.
    pub fn cycle_snapshot(&self) -> CycleSnapshot {
        self.clock().snapshot()
    }

    /// Current virtual time in cycles (total cycles across shards — the
    /// work metric). For the *elapsed-time* view of a parallel kernel use
    /// [`Kernel::elapsed_cycles`].
    pub fn now(&self) -> u64 {
        self.shards.iter().map(|s| s.clock.now()).sum()
    }

    /// Modeled elapsed time in cycles: the busiest shard's clock. Shards
    /// are parallel cores, so the slowest one bounds the simulated wall
    /// clock; timestamps and latency measurements must use this, not
    /// [`Kernel::now`]'s summed total. Identical to `now()` on a
    /// single-shard kernel.
    pub fn elapsed_cycles(&self) -> u64 {
        self.shards.iter().map(|s| s.clock.now()).max().unwrap_or(0)
    }

    /// Every shard's virtual clock, in shard order. The maximum is
    /// [`Kernel::elapsed_cycles`]; the spread between the busiest and the
    /// mean is the load-imbalance signal the latency harness records per
    /// scenario row (a skewed workload shows up here before it shows up
    /// in tail latency).
    pub fn per_shard_elapsed_cycles(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.clock.now()).collect()
    }

    /// Every shard's mailbox-depth high-water mark, in shard order — the
    /// deepest any port queue got on that shard since boot. The queueing
    /// counterpart of [`Kernel::per_shard_elapsed_cycles`]: tail latency
    /// under open-loop load is queueing delay, and this is where it
    /// accumulates.
    pub fn per_shard_queue_depth_hwm(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.stats.queue_depth_hwm)
            .collect()
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.shards[0].cost
    }

    /// Read-only access to a process.
    pub fn process(&self, pid: ProcessId) -> &Process {
        &self.shards[pid.shard()].processes[pid.index()]
    }

    /// Read-only access to an event process.
    pub fn event_process(&self, eid: EpId) -> &EventProcess {
        &self.shards[eid.shard()].eps[eid.index()]
    }

    /// All live event-process ids for a process.
    pub fn live_eps(&self, pid: ProcessId) -> Vec<EpId> {
        self.shards[pid.shard()].processes[pid.index()].eps.clone()
    }

    /// Total event processes ever created.
    pub fn ep_count(&self) -> usize {
        self.shards.iter().map(|s| s.eps.len()).sum()
    }

    /// Number of processes ever spawned.
    pub fn process_count(&self) -> usize {
        self.shards.iter().map(|s| s.processes.len()).sum()
    }

    /// Finds a process by debug name (god-mode test convenience).
    pub fn find_process(&self, name: &str) -> Option<ProcessId> {
        for shard in &self.shards {
            if let Some(i) = shard.processes.iter().position(|p| p.name == name) {
                return Some(ProcessId::new(shard.id, i));
            }
        }
        None
    }

    /// The handle table (ports, vnodes) of shard 0 — the whole table on a
    /// single-shard kernel. Multi-shard callers should go through
    /// [`Kernel::shard`] for per-shard tables or
    /// [`Kernel::handles_allocated`] for the global count.
    pub fn handle_table(&self) -> &HandleTable {
        &self.shards[0].handles
    }

    /// Total handles ever allocated, across all shards.
    pub fn handles_allocated(&self) -> u64 {
        self.shards.iter().map(|s| s.handles.allocated()).sum()
    }

    /// Pending (sent but undelivered) messages across all shards:
    /// mailboxes, the in-flight cross-shard channels, and the
    /// backpressure retry queues.
    pub fn queue_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.mailboxes.len() + s.retry_len())
            .sum::<usize>()
            + self.xshard.pending()
    }

    /// Pending messages sent by a given process (god-mode; used by tests to
    /// verify that compromised services actually attempted exfiltration).
    pub fn queued_from(&self, pid: ProcessId) -> usize {
        let mut count = self
            .shards
            .iter()
            .flat_map(|s| s.mailboxes.iter())
            .filter(|m| m.from.is_some_and(|c| c.pid == pid))
            .count();
        for shard in 0..self.shards.len() {
            self.xshard.for_each_queued(shard, |qm| {
                if qm.from.is_some_and(|c| c.pid == pid) {
                    count += 1;
                }
            });
        }
        count
    }

    /// Downcasts a process's service body for test inspection.
    pub fn service_as<T: 'static>(&self, pid: ProcessId) -> Option<&T> {
        match self.shards[pid.shard()].processes[pid.index()]
            .body
            .as_ref()?
        {
            Body::Plain(s) => s.as_any()?.downcast_ref::<T>(),
            Body::Event(s) => s.as_any()?.downcast_ref::<T>(),
        }
    }

    /// Memory accounting across all kernel structures and user frames
    /// (Figure 6's measurement), merged across shards, plus scheduler
    /// bookkeeping (the worker pool and the cross-shard channels — zero
    /// on a single-shard kernel, which allocates neither).
    pub fn kmem_report(&self) -> KmemReport {
        let mut total = KmemReport::default();
        for shard in &self.shards {
            total.absorb(&shard.kmem_report());
        }
        if self.shards.len() > 1 {
            total.pool_bytes = self.xshard.bookkeeping_bytes()
                + self.pool.as_ref().map_or(0, ShardPool::bookkeeping_bytes);
            total.tuner_bytes = self.tuner.bytes();
        }
        total
    }
}
