//! The kernel coordinator: shard construction, placement, god-mode
//! surface, and the barrier-synchronized round scheduler.
//!
//! Since PR 2 the kernel is a set of [`KernelShard`]s — each a complete,
//! isolated delivery engine (see [`crate::shard`]) — plus the shared
//! [`Router`] maps and this coordinator. The coordinator owns placement
//! (which shard a spawned process lands on), drives the round schedule,
//! and merges per-shard statistics, clocks, and memory reports into the
//! whole-kernel views the paper figures read.
//!
//! **Round schedule.** `run()` repeats two phases until quiescence:
//!
//! 1. *Drain* — every shard with pending messages drains its mailboxes to
//!    idle, exactly like the monolithic engine did, running handlers and
//!    processing their same-shard sends in the same pass. With more than
//!    one active shard the drains run on parallel `std::thread::scope`
//!    threads. Shards share no *delivery* state, so per-shard traces are
//!    independent of thread scheduling and runs are reproducible — with
//!    one carve-out: handlers that read a shared [`Router`] map (the
//!    global environment, via `Sys::env` fallthrough) mid-round race
//!    against same-round writes from other shards. Workloads that follow
//!    the §4 bootstrap convention (publish during spawn, read later)
//!    never hit this; see `router.rs` for the full contract.
//! 2. *Route* — the coordinator moves every outbox message into its
//!    destination shard's mailboxes, in shard order and send order, then
//!    starts the next round. Queue bounds are applied here, against the
//!    destination shard, by the same code the local send path uses.
//!
//! A kernel built with `shards = 1` never routes, never spawns a thread,
//! and executes the identical code path the pre-sharding engine did —
//! `tests/shard_determinism.rs` pins that configuration bit-for-bit, so
//! all paper figures (fig6–fig9) are unaffected by sharding.

use std::sync::Arc;

use asbestos_labels::{Handle, Label};

use crate::cycles::{Category, CostModel, CycleClock, CycleSnapshot};
use crate::delivery::DeliveryOutcome;
use crate::event_process::EventProcess;
use crate::handle_table::HandleTable;
use crate::ids::{EpId, ProcessId, MAX_SHARDS};
use crate::memory::PAGE_SIZE;
use crate::message::QueuedMessage;
use crate::process::{Body, EpService, Process, Service};
use crate::router::Router;
use crate::shard::KernelShard;
use crate::stats::Stats;
use crate::value::Value;

/// Default bound on queued messages per shard (the resource-exhaustion
/// backstop §8 mentions; drops past this limit are silent, like label
/// drops).
pub const DEFAULT_QUEUE_LIMIT: usize = 1 << 20;

/// A point-in-time memory accounting report (the Figure 6 measurement).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KmemReport {
    /// Process structures plus their labels.
    pub process_bytes: usize,
    /// Event-process structures plus their labels.
    pub ep_bytes: usize,
    /// Vnodes plus port labels.
    pub handle_bytes: usize,
    /// Queued, undelivered messages.
    pub queue_bytes: usize,
    /// The delivery-decision cache: keys plus retained effect labels.
    pub delivery_cache_bytes: usize,
    /// User memory: allocated 4 KiB frames (base tables and EP deltas).
    pub user_frame_bytes: usize,
}

impl KmemReport {
    /// Total allocated bytes, kernel plus user.
    pub fn total_bytes(&self) -> usize {
        self.process_bytes
            + self.ep_bytes
            + self.handle_bytes
            + self.queue_bytes
            + self.delivery_cache_bytes
            + self.user_frame_bytes
    }

    /// Total memory in 4 KiB pages, rounded up (Figure 6's unit).
    pub fn total_pages(&self) -> usize {
        self.total_bytes().div_ceil(PAGE_SIZE)
    }

    /// Adds another report's counts into this one (shard merging).
    pub(crate) fn absorb(&mut self, other: &KmemReport) {
        self.process_bytes += other.process_bytes;
        self.ep_bytes += other.ep_bytes;
        self.handle_bytes += other.handle_bytes;
        self.queue_bytes += other.queue_bytes;
        self.delivery_cache_bytes += other.delivery_cache_bytes;
        self.user_frame_bytes += other.user_frame_bytes;
    }
}

/// The Asbestos kernel simulator.
///
/// A `Kernel` owns every process, event process, port, queued message, and
/// simulated page, partitioned across one or more [`KernelShard`]s, plus
/// the virtual cycle clocks. It is deterministic: the same spawn order,
/// injections, seed, and shard count produce the same schedule, cycle
/// counts, and memory report.
///
/// Drive it by [`Kernel::spawn`]ing services, [`Kernel::inject`]ing
/// external events, and calling [`Kernel::run`].
pub struct Kernel {
    shards: Vec<KernelShard>,
    router: Router,
    /// Round-robin cursor for default spawn placement.
    next_spawn_shard: usize,
    /// Round-robin cursor for the sequential `step()` debug scheduler.
    step_cursor: usize,
}

impl Kernel {
    /// Creates a single-shard kernel with the default cost model; `seed`
    /// keys the handle cipher. This is the paper-figure configuration.
    pub fn new(seed: u64) -> Kernel {
        Kernel::with_cost_model_sharded(seed, CostModel::default(), 1)
    }

    /// Creates a single-shard kernel with an explicit cost model.
    pub fn with_cost_model(seed: u64, cost: CostModel) -> Kernel {
        Kernel::with_cost_model_sharded(seed, cost, 1)
    }

    /// Creates a kernel with `shards` parallel delivery engines.
    pub fn new_sharded(seed: u64, shards: usize) -> Kernel {
        Kernel::with_cost_model_sharded(seed, CostModel::default(), shards)
    }

    /// Creates a sharded kernel with an explicit cost model.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= shards <= MAX_SHARDS`.
    pub fn with_cost_model_sharded(seed: u64, cost: CostModel, shards: usize) -> Kernel {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        Kernel {
            shards: (0..shards)
                .map(|i| KernelShard::new(seed, i as u16, shards, cost.clone()))
                .collect(),
            router: Router::new(shards),
            next_spawn_shard: 0,
            step_cursor: 0,
        }
    }

    /// Number of kernel shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read-only access to one shard (god-mode observability).
    pub fn shard(&self, shard: usize) -> &KernelShard {
        &self.shards[shard]
    }

    // ------------------------------------------------------------------
    // Spawning.
    // ------------------------------------------------------------------

    /// Spawns an ordinary service process with default labels and empty
    /// environment, then runs its `on_start` hook. Placement is
    /// round-robin across shards; use [`Kernel::spawn_on`] to pin.
    pub fn spawn(
        &mut self,
        name: &str,
        category: Category,
        service: Box<dyn Service>,
    ) -> ProcessId {
        let shard = self.pick_shard();
        self.spawn_on(shard, name, category, service)
    }

    /// Spawns an ordinary service process on a specific shard.
    pub fn spawn_on(
        &mut self,
        shard: usize,
        name: &str,
        category: Category,
        service: Box<dyn Service>,
    ) -> ProcessId {
        self.shards[shard].spawn_body(&self.router, name, category, Body::Plain(service), None)
    }

    /// Spawns an event-process service (§6): after `on_base_start` returns,
    /// every message to a base-owned port forks a fresh event process.
    /// Placement is round-robin; use [`Kernel::spawn_ep_service_on`] to pin.
    pub fn spawn_ep_service(
        &mut self,
        name: &str,
        category: Category,
        service: Box<dyn EpService>,
    ) -> ProcessId {
        let shard = self.pick_shard();
        self.spawn_ep_service_on(shard, name, category, service)
    }

    /// Spawns an event-process service on a specific shard.
    pub fn spawn_ep_service_on(
        &mut self,
        shard: usize,
        name: &str,
        category: Category,
        service: Box<dyn EpService>,
    ) -> ProcessId {
        self.shards[shard].spawn_body(&self.router, name, category, Body::Event(service), None)
    }

    fn pick_shard(&mut self) -> usize {
        let shard = self.next_spawn_shard;
        self.next_spawn_shard = (shard + 1) % self.shards.len();
        shard
    }

    // ------------------------------------------------------------------
    // External world (god-mode).
    // ------------------------------------------------------------------

    /// Injects a message from outside the label system (device interrupts,
    /// test drivers). Injected messages carry `E_S = {⋆}` and therefore pass
    /// every label check — they model hardware, not processes — and, like
    /// hardware, they bypass the queue bounds.
    pub fn inject(&mut self, port: Handle, body: Value) {
        let dest = self.router.shard_of(port) as usize;
        let shard = &mut self.shards[dest];
        shard.stats.injected += 1;
        shard.mailboxes.push(QueuedMessage {
            port,
            body,
            es: Arc::new(Label::bottom()),
            ds: Label::top(),
            dr: Label::bottom(),
            v: Label::top(),
            from: None,
        });
    }

    /// Sets a global environment entry (the §4 bootstrapping namespace,
    /// written by init/launcher-level code).
    pub fn set_global_env(&mut self, key: &str, value: Value) {
        self.router.env_set(key, value);
    }

    /// Reads a global environment entry.
    pub fn global_env(&self, key: &str) -> Option<Value> {
        self.router.env_get(key)
    }

    /// Sets the per-shard message-queue bound. Sends past the bound drop
    /// silently, the same way label failures do (§4, §8). On a
    /// single-shard kernel this is the whole-kernel bound it always was.
    pub fn set_queue_limit(&mut self, limit: usize) {
        for shard in &mut self.shards {
            shard.queue_limit = limit;
        }
    }

    /// Sets the per-port message-queue bound. A port whose mailbox holds
    /// this many pending messages silently drops further sends
    /// ([`crate::DropReason::PortQueueFull`]), so one hot port cannot
    /// consume a shard's whole queue budget and starve its neighbors.
    pub fn set_port_queue_limit(&mut self, limit: usize) {
        for shard in &mut self.shards {
            shard.port_queue_limit = limit;
        }
    }

    /// Sets the delivery-decision cache bound, in cached decisions per
    /// shard. Capacity 0 disables caching entirely (every delivery
    /// evaluates Figure 4 from scratch — the ablation baseline).
    pub fn set_delivery_cache_capacity(&mut self, capacity: usize) {
        for shard in &mut self.shards {
            shard.delivery_cache.set_capacity(capacity);
        }
    }

    /// Number of currently cached delivery decisions, over all shards.
    pub fn delivery_cache_len(&self) -> usize {
        self.shards.iter().map(|s| s.delivery_cache.len()).sum()
    }

    /// Assigns process labels out of band (god-mode).
    ///
    /// §5.2 introduces its examples with labels "assigned out of band";
    /// tests and fixtures use this for the same purpose. Simulated services
    /// can never do this — they go through the Figure 4 rules.
    pub fn set_process_labels(&mut self, pid: ProcessId, send: Option<Label>, recv: Option<Label>) {
        let p = &mut self.shards[pid.shard()].processes[pid.index()];
        if let Some(s) = send {
            p.send_label = Arc::new(s);
        }
        if let Some(r) = recv {
            p.recv_label = Arc::new(r);
        }
    }

    /// Forcibly terminates a process (god-mode; used for failure injection).
    pub fn kill_process(&mut self, pid: ProcessId) {
        let shard = &mut self.shards[pid.shard()];
        if shard.processes[pid.index()].alive {
            shard.processes[pid.index()].alive = false;
            shard.processes[pid.index()].body = None;
            shard.cleanup_process(&self.router, pid);
        }
    }

    // ------------------------------------------------------------------
    // Scheduling.
    // ------------------------------------------------------------------

    /// Attempts one message delivery. Returns `false` when no message is
    /// pending (the system is idle).
    ///
    /// This is the sequential debug scheduler: on a multi-shard kernel it
    /// round-robins one delivery at a time across shards and routes after
    /// every step. [`Kernel::run`] is the parallel round scheduler. On a
    /// single-shard kernel the two are identical.
    pub fn step(&mut self) -> bool {
        self.step_outcome() != DeliveryOutcome::Idle
    }

    /// Attempts one message delivery and reports what happened.
    pub fn step_outcome(&mut self) -> DeliveryOutcome {
        loop {
            let n = self.shards.len();
            for i in 0..n {
                let idx = (self.step_cursor + i) % n;
                if self.shards[idx].mailboxes.len() > 0 {
                    let outcome = self.shards[idx].step_outcome(&self.router);
                    self.step_cursor = (idx + 1) % n;
                    self.flush_outboxes();
                    return outcome;
                }
            }
            // Every mailbox is empty, but coordinator-phase sends (a
            // handler running inside `spawn`'s on_start, say) may have
            // parked messages in an outbox. Route them and look again;
            // only a fruitless flush means the kernel is truly idle.
            if self.flush_outboxes() == 0 {
                return DeliveryOutcome::Idle;
            }
        }
    }

    /// Runs until every shard's queue drains, with a safety bound; returns
    /// the number of delivery attempts.
    ///
    /// # Panics
    ///
    /// Panics after `limit` steps — two services ping-ponging messages
    /// forever is a bug in simulated code, not a state to spin in. (On a
    /// multi-shard kernel the bound is enforced per shard per round, so a
    /// run can perform slightly more than `limit` total deliveries before
    /// a single runaway shard trips it.)
    pub fn run_limited(&mut self, limit: u64) -> u64 {
        if self.shards.len() == 1 {
            // The monolithic engine's loop, bit for bit.
            let mut steps = 0;
            while self.shards[0].step_outcome(&self.router) != DeliveryOutcome::Idle {
                steps += 1;
                assert!(
                    steps < limit,
                    "kernel did not go idle after {limit} deliveries: livelock in simulated services?"
                );
            }
            return steps;
        }
        let mut steps = 0u64;
        loop {
            let budget = limit.saturating_sub(steps);
            let router = &self.router;
            let active: Vec<&mut KernelShard> = self
                .shards
                .iter_mut()
                .filter(|s| s.mailboxes.len() > 0)
                .collect();
            let results: Vec<(u64, bool)> = if active.len() <= 1 {
                // One busy shard: drain inline, no thread overhead.
                active
                    .into_iter()
                    .map(|shard| shard.drain(router, budget))
                    .collect()
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = active
                        .into_iter()
                        .map(|shard| scope.spawn(move || shard.drain(router, budget)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(result) => result,
                            Err(panic) => std::panic::resume_unwind(panic),
                        })
                        .collect()
                })
            };
            for (n, hit_budget) in results {
                steps += n;
                assert!(
                    !hit_budget,
                    "kernel did not go idle after {limit} deliveries: livelock in simulated services?"
                );
            }
            if self.flush_outboxes() == 0 {
                return steps;
            }
        }
    }

    /// Runs until idle with a generous default bound.
    pub fn run(&mut self) -> u64 {
        self.run_limited(100_000_000)
    }

    /// Routes every outbox message into its destination shard's mailboxes
    /// (the barrier half of a round). Deterministic: source shards are
    /// drained in shard order, each in send order, and the destination
    /// shard applies its queue bounds exactly as it would to a local send.
    fn flush_outboxes(&mut self) -> u64 {
        let mut moved = 0;
        for src in 0..self.shards.len() {
            if self.shards[src].outbox.is_empty() {
                continue;
            }
            let outbox = std::mem::take(&mut self.shards[src].outbox);
            for (dest, qm) in outbox {
                moved += 1;
                self.shards[dest as usize].enqueue_checked(qm);
            }
        }
        moved
    }

    // ------------------------------------------------------------------
    // God-mode observability (whole-kernel views over the shards).
    // ------------------------------------------------------------------

    /// Kernel statistics, merged across shards.
    pub fn stats(&self) -> Stats {
        let mut total = Stats::default();
        for shard in &self.shards {
            total.absorb(&shard.stats);
        }
        total
    }

    /// The virtual clock, merged across shards (per-category totals sum;
    /// `now` is total cycles consumed everywhere).
    pub fn clock(&self) -> CycleClock {
        let mut total = CycleClock::new();
        for shard in &self.shards {
            total.absorb(&shard.clock);
        }
        total
    }

    /// Snapshot of the merged clock for interval measurements.
    pub fn cycle_snapshot(&self) -> CycleSnapshot {
        self.clock().snapshot()
    }

    /// Current virtual time in cycles (total cycles across shards — the
    /// work metric). For the *elapsed-time* view of a parallel kernel use
    /// [`Kernel::elapsed_cycles`].
    pub fn now(&self) -> u64 {
        self.shards.iter().map(|s| s.clock.now()).sum()
    }

    /// Modeled elapsed time in cycles: the busiest shard's clock. Shards
    /// are parallel cores, so the slowest one bounds the simulated wall
    /// clock; timestamps and latency measurements must use this, not
    /// [`Kernel::now`]'s summed total. Identical to `now()` on a
    /// single-shard kernel.
    pub fn elapsed_cycles(&self) -> u64 {
        self.shards.iter().map(|s| s.clock.now()).max().unwrap_or(0)
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.shards[0].cost
    }

    /// Read-only access to a process.
    pub fn process(&self, pid: ProcessId) -> &Process {
        &self.shards[pid.shard()].processes[pid.index()]
    }

    /// Read-only access to an event process.
    pub fn event_process(&self, eid: EpId) -> &EventProcess {
        &self.shards[eid.shard()].eps[eid.index()]
    }

    /// All live event-process ids for a process.
    pub fn live_eps(&self, pid: ProcessId) -> Vec<EpId> {
        self.shards[pid.shard()].processes[pid.index()].eps.clone()
    }

    /// Total event processes ever created.
    pub fn ep_count(&self) -> usize {
        self.shards.iter().map(|s| s.eps.len()).sum()
    }

    /// Number of processes ever spawned.
    pub fn process_count(&self) -> usize {
        self.shards.iter().map(|s| s.processes.len()).sum()
    }

    /// Finds a process by debug name (god-mode test convenience).
    pub fn find_process(&self, name: &str) -> Option<ProcessId> {
        for shard in &self.shards {
            if let Some(i) = shard.processes.iter().position(|p| p.name == name) {
                return Some(ProcessId::new(shard.id, i));
            }
        }
        None
    }

    /// The handle table (ports, vnodes) of shard 0 — the whole table on a
    /// single-shard kernel. Multi-shard callers should go through
    /// [`Kernel::shard`] for per-shard tables or
    /// [`Kernel::handles_allocated`] for the global count.
    pub fn handle_table(&self) -> &HandleTable {
        &self.shards[0].handles
    }

    /// Total handles ever allocated, across all shards.
    pub fn handles_allocated(&self) -> u64 {
        self.shards.iter().map(|s| s.handles.allocated()).sum()
    }

    /// Pending (sent but undelivered) messages across all shards.
    pub fn queue_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.mailboxes.len() + s.outbox.len())
            .sum()
    }

    /// Pending messages sent by a given process (god-mode; used by tests to
    /// verify that compromised services actually attempted exfiltration).
    pub fn queued_from(&self, pid: ProcessId) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.mailboxes.iter().chain(s.outbox.iter().map(|(_, qm)| qm)))
            .filter(|m| m.from.is_some_and(|c| c.pid == pid))
            .count()
    }

    /// Downcasts a process's service body for test inspection.
    pub fn service_as<T: 'static>(&self, pid: ProcessId) -> Option<&T> {
        match self.shards[pid.shard()].processes[pid.index()]
            .body
            .as_ref()?
        {
            Body::Plain(s) => s.as_any()?.downcast_ref::<T>(),
            Body::Event(s) => s.as_any()?.downcast_ref::<T>(),
        }
    }

    /// Memory accounting across all kernel structures and user frames
    /// (Figure 6's measurement), merged across shards.
    pub fn kmem_report(&self) -> KmemReport {
        let mut total = KmemReport::default();
        for shard in &self.shards {
            total.absorb(&shard.kmem_report());
        }
        total
    }
}
